"""Figure 12 — response time vs candidate count on the SP2 model.

Paper: 16-processor SP2, 100K tx, support 0.1%..0.025%, disk-resident
data; CD re-scans the database once per hash-tree partition.  Asserted
shape: CD's penalty over IDD/HD grows with the candidate count, and the
multi-scan mechanism engages along the sweep.
"""

from benchmarks._util import run_and_report
from repro.experiments.figure12 import run_figure12


def test_figure12_memory_pressure(benchmark):
    result = run_and_report(benchmark, run_figure12, "figure12")

    first, last = result.x_values[0], result.x_values[-1]

    # IDD and HD beat CD once the candidate set outgrows one processor.
    assert result.get("CD", last) > result.get("IDD", last)
    assert result.get("CD", last) > result.get("HD", last)

    # The CD penalty widens along the sweep (paper: 8% -> 25%).
    assert result.ratio("CD", "IDD", last) > result.ratio("CD", "IDD", first)

    # The mechanism: CD is forced into multiple database scans.
    assert result.extras[("CD", first, "max_scans")] == 1
    assert result.extras[("CD", last, "max_scans")] > 1
    assert result.extras[("IDD", last, "max_scans")] == 1
