"""Million-transaction scale bench under an enforced memory cap.

The laptop-RAM story, measured end to end and landed in
``BENCH_scale.json`` at the repo root:

1. **Generate to disk** — a full-size Quest database
   (:data:`NUM_TRANSACTIONS` transactions) is streamed straight into a
   packed store file with :func:`repro.data.quest.generate_to_file`.
   The generating subprocess runs under a hard
   :func:`repro.memprof.set_memory_limit` cap (``RLIMIT_DATA``), and
   full-size runs additionally assert its peak RSS stayed *below the
   size of the file it wrote* — the database was never materialized in
   RAM.
2. **Mine under the cap** — a second subprocess attaches the store
   read-only (:class:`~repro.core.mmapdb.MmapPackedDB`), applies the
   same cap, and mines it with the native CD pool on the mmap plane:
   SON two-phase counting (``two_phase=True``) bounds candidate
   memory, a constrained ``block_budget`` streams every counting pass
   block by block, and the workers inherit the coordinator's rlimit.
   The run records wall seconds, transactions/second, and the pooled
   peak RSS (the per-worker samples folded into
   :attr:`~repro.parallel.native.PassOverhead.peak_rss_bytes`).

Both subprocesses either finish inside the cap or die with
``MemoryError`` — the cap is enforced by the kernel, not sampled — so
a green run *is* the claim "this workload fits the budget".

Keys: ``scale.generate.{wall_s,tx_per_s,peak_rss_bytes}``,
``scale.mine.{wall_s,tx_per_s,peak_rss_bytes,pool_peak_rss_bytes,
num_frequent}`` and ``scale.store_bytes``.  The nightly workflow gates
``scale.*.tx_per_s`` (lower is worse) and ``scale.*.wall_s`` (higher
is worse) against the committed baseline via ``check_regression.py``.

Set ``REPRO_BENCH_TINY=1`` (CI's rlimit smoke leg) for a 100k-transaction
run under a 256 MiB cap — same code path, seconds-scale.
"""

import json
import os
import subprocess
import sys

import pytest

from benchmarks._util import REPO_ROOT, record_bench_medians

BENCH_SCALE_JSON = REPO_ROOT / "BENCH_scale.json"

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

if TINY:
    NUM_TRANSACTIONS = 100_000
    CAP_BYTES = 256 * 1024 * 1024
    MIN_SUPPORT = 0.02
    BLOCK_BUDGET = 500_000
else:
    NUM_TRANSACTIONS = 1_000_000
    CAP_BYTES = 512 * 1024 * 1024
    MIN_SUPPORT = 0.01
    BLOCK_BUDGET = 4_000_000

NUM_WORKERS = 2

# Generation subprocess: cap first, then stream the Quest database to
# the store file.  Prints one JSON line with the measurements.
_GENERATE_SCRIPT = """
import json, sys, time
from repro.data.corpus import t15_i6
from repro.data.quest import generate_to_file
from repro.memprof import peak_rss_bytes, set_memory_limit

cap, num_transactions, store = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
set_memory_limit(cap)
config = t15_i6(num_transactions, seed=11)
start = time.perf_counter()
path = generate_to_file(config, store)
wall = time.perf_counter() - start
print(json.dumps({
    "wall_s": wall,
    "tx_per_s": num_transactions / wall,
    "peak_rss_bytes": peak_rss_bytes(),
    "store_bytes": path.stat().st_size,
}))
"""

# Mining subprocess: cap first (the pool's workers inherit it), attach
# the store read-only, SON two-phase + block streaming on the mmap
# plane.  Prints one JSON line with the measurements.
_MINE_SCRIPT = """
import json, sys, time
from repro.core.mmapdb import MmapPackedDB
from repro.memprof import peak_rss_bytes, set_memory_limit
from repro.parallel.native import NativeCountDistribution

cap, store = int(sys.argv[1]), sys.argv[2]
support, workers = float(sys.argv[3]), int(sys.argv[4])
block_budget = int(sys.argv[5])
set_memory_limit(cap)
with MmapPackedDB.attach(store) as db:
    num_transactions = len(db)
    miner = NativeCountDistribution(
        support, workers, kernel="fast-np", data_plane="mmap",
        two_phase=True, block_budget=block_budget, max_k=3,
    )
    start = time.perf_counter()
    result = miner.mine(db)
    wall = time.perf_counter() - start
pool_peak = max(
    (o.peak_rss_bytes for o in miner.last_pass_overheads), default=0
)
print(json.dumps({
    "wall_s": wall,
    "tx_per_s": num_transactions / wall,
    "peak_rss_bytes": peak_rss_bytes(),
    "pool_peak_rss_bytes": pool_peak,
    "num_frequent": len(result.frequent),
    "num_transactions": num_transactions,
}))
"""


def _run_capped(script: str, *args: str) -> dict:
    """Run one measurement subprocess and parse its JSON result line.

    The subprocess applies its own ``set_memory_limit`` before any real
    allocation, so the cap covers the whole measured phase and is
    inherited by any worker processes it spawns.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, *args],
        capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, (
        f"capped subprocess failed (exit {proc.returncode}) — a "
        f"MemoryError here means the workload no longer fits the "
        f"{args[0]} byte cap:\n{proc.stderr[-2000:]}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    return tmp_path_factory.mktemp("scale") / "quest.packed"


@pytest.fixture(scope="module")
def generated(store_path):
    """Generate the store once under the cap; yield its measurements."""
    return _run_capped(
        _GENERATE_SCRIPT,
        str(CAP_BYTES), str(NUM_TRANSACTIONS), str(store_path),
    )


def test_generate_to_disk_under_cap(generated, store_path):
    """Streamed generation: constant RAM, full-size store on disk."""
    assert store_path.exists()
    assert generated["store_bytes"] == store_path.stat().st_size
    medians = {
        "scale.generate.wall_s": generated["wall_s"],
        "scale.generate.tx_per_s": generated["tx_per_s"],
        "scale.generate.peak_rss_bytes": float(
            generated["peak_rss_bytes"]
        ),
        "scale.store_bytes": float(generated["store_bytes"]),
    }
    record_bench_medians(medians, path=BENCH_SCALE_JSON)
    print(
        f"\ngenerate: {NUM_TRANSACTIONS} transactions in "
        f"{generated['wall_s']:.1f}s "
        f"({generated['tx_per_s']:.0f} tx/s); store "
        f"{generated['store_bytes'] / 1e6:.1f} MB, generator peak RSS "
        f"{generated['peak_rss_bytes'] / 1e6:.1f} MB, cap "
        f"{CAP_BYTES / 1e6:.0f} MB"
    )
    if not TINY:
        # The no-materialization claim: the process that wrote the
        # store file never held as much memory as the file it wrote.
        assert generated["peak_rss_bytes"] < generated["store_bytes"], (
            f"generator peak RSS {generated['peak_rss_bytes']} >= "
            f"store size {generated['store_bytes']}: generation is "
            "materializing the database it is supposed to stream"
        )


def test_mine_attached_store_under_cap(generated, store_path):
    """Two-phase mmap mining of the generated store inside the cap."""
    mined = _run_capped(
        _MINE_SCRIPT,
        str(CAP_BYTES), str(store_path), str(MIN_SUPPORT),
        str(NUM_WORKERS), str(BLOCK_BUDGET),
    )
    assert mined["num_transactions"] == NUM_TRANSACTIONS
    assert mined["num_frequent"] > 0
    # The observability contract: worker peak-RSS samples made it back
    # through the reply frames into the pass overheads.
    assert mined["pool_peak_rss_bytes"] > 0
    medians = {
        "scale.mine.wall_s": mined["wall_s"],
        "scale.mine.tx_per_s": mined["tx_per_s"],
        "scale.mine.peak_rss_bytes": float(mined["peak_rss_bytes"]),
        "scale.mine.pool_peak_rss_bytes": float(
            mined["pool_peak_rss_bytes"]
        ),
        "scale.mine.num_frequent": float(mined["num_frequent"]),
    }
    record_bench_medians(medians, path=BENCH_SCALE_JSON)
    print(
        f"\nmine: {NUM_TRANSACTIONS} transactions in "
        f"{mined['wall_s']:.1f}s ({mined['tx_per_s']:.0f} tx/s), "
        f"{mined['num_frequent']} frequent item-sets; coordinator peak "
        f"RSS {mined['peak_rss_bytes'] / 1e6:.1f} MB, pool peak "
        f"{mined['pool_peak_rss_bytes'] / 1e6:.1f} MB, cap "
        f"{CAP_BYTES / 1e6:.0f} MB "
        f"({NUM_WORKERS} workers, two-phase, block budget "
        f"{BLOCK_BUDGET})"
    )
