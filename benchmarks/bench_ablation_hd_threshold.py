"""Ablation — HD's switch threshold m.

Equation 8 predicts an open interval of beneficial G values; sweeping m
from 1 (IDD) to effectively-infinite (CD) should show an interior
optimum or at worst a tie with the better extreme.
"""

from benchmarks._util import run_and_report
from repro.experiments.ablations import run_ablation_hd_threshold


def test_ablation_hd_threshold(benchmark):
    result = run_and_report(
        benchmark, run_ablation_hd_threshold, "ablation_hd_threshold"
    )
    times = {m: result.get("HD", m) for m in result.x_values}
    interior = min(t for m, t in times.items() if 1 < m < 10**9)
    assert interior <= max(times[1], times[10**9])
