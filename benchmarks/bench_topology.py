"""Section III-B — DD's interconnect sensitivity.

Runs DD with the machine contention set from each topology's bisection
bound; IDD's neighbor-only pipeline is the topology-insensitive
baseline.  The paper's argument: DD's page scattering costs
"significantly more than O(N)" on sparse networks.
"""

from benchmarks._util import run_and_report
from repro.experiments.topology import run_topology


def test_topology_sensitivity(benchmark):
    result = run_and_report(benchmark, run_topology, "topology")

    dd = [result.get("DD", rank) for rank in result.x_values]
    # DD improves monotonically as the network gets denser...
    assert dd == sorted(dd, reverse=True)
    # ...the ring is measurably worse than fully-connected...
    assert dd[0] > dd[-1] * 1.2
    # ...and IDD beats DD regardless of topology.
    for rank in result.x_values:
        assert result.get("IDD", rank) < result.get("DD", rank)
