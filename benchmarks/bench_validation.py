"""Section IV — cost-model vs simulation cross-validation.

Runs one pass of CD / DD / IDD / HD on the simulated machine and
evaluates Equations 4-7 on the same workload parameters; the model must
rank the algorithms as measured (the use the paper puts it to).
"""

from benchmarks._util import RESULTS_DIR
from repro.analysis.validation import validate_pass_model
from repro.data.corpus import t15_i6
from repro.data.quest import generate


def test_model_ranks_algorithms(benchmark):
    db = generate(t15_i6(1600, seed=13, num_items=1000))

    report = benchmark.pedantic(
        lambda: validate_pass_model(db, 0.008, k=3, num_processors=16),
        rounds=1,
        iterations=1,
    )
    table = report.to_table()
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "validation.txt").write_text(table + "\n", encoding="utf-8")

    assert report.agreement_pairs() == 1.0
    assert report.measured_order()[-1] == "DD"
