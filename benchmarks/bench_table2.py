"""Table II — HD's dynamic processor-grid schedule.

Paper: P = 64, m = 50K: configurations 8x8, 64x1, 4x16, 2x32, 2x32,
1x64 across passes 2..7, with every later pass at 1x64.  Asserted
shape: G tracks ceil(M/m) rounded to a divisor of P, peaks with the
candidate count, and collapses to G = 1 (pure CD) for the small late
passes.
"""

from benchmarks._util import run_and_report
from repro.experiments.table2 import run_table2
from repro.parallel.hybrid import choose_grid


def test_table2_grid_schedule(benchmark):
    result = run_and_report(
        benchmark, run_table2, "table2", y_format="{:10.0f}"
    )

    ks = result.x_values
    # Every configuration tiles the 64-processor machine.
    for k in ks:
        assert result.get("G", k) * result.get("P/G", k) == 64

    # The configuration is exactly the paper's selection rule.
    for k in ks:
        expected = choose_grid(int(result.get("candidates", k)), 2000, 64)
        assert result.get("G", k) == expected

    # G peaks at the candidate peak...
    peak_pass = max(ks, key=lambda k: result.get("candidates", k))
    assert result.get("G", peak_pass) == max(result.get("G", k) for k in ks)

    # ...and the tail of the run degenerates to CD.
    assert result.get("G", ks[-1]) == 1
