"""Ablation — parallelizing apriori_gen (extension beyond the paper).

Every published formulation regenerates candidates on all processors;
this bench quantifies what splitting the join buys as P grows.
"""

from benchmarks._util import run_and_report
from repro.experiments.ablations import run_ablation_candgen


def test_ablation_candgen(benchmark):
    result = run_and_report(
        benchmark, run_ablation_candgen, "ablation_candgen",
        y_format="{:10.5f}",
    )
    for p in result.x_values:
        assert result.get("parallel", p) < result.get("redundant", p)
    # The saving grows with the processor count.
    first, last = result.x_values[0], result.x_values[-1]
    assert (
        result.get("redundant", last) / result.get("parallel", last)
        > result.get("redundant", first) / result.get("parallel", first)
    )
