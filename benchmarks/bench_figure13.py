"""Figure 13 — speedup of CD / IDD / HD (pass-3 time only).

Paper: N = 1.3M, M = 0.7M, P = 4..64 on the T3E; HD on 8x2 / 8x4 / 8x8
grids.  Asserted shape: HD's speedup dominates and keeps growing; CD
saturates early (tree build + reduction); IDD flattens at high P (load
imbalance).
"""

from benchmarks._util import run_and_report
from repro.experiments.figure13 import run_figure13


def test_figure13_speedup(benchmark):
    result = run_and_report(
        benchmark, run_figure13, "figure13", y_format="{:10.2f}"
    )

    # HD's speedup grows monotonically across the sweep.
    hd = [result.get("HD", p) for p in (4, 8, 16, 32, 64)]
    assert hd == sorted(hd)

    # HD wins at scale and the margin grows.
    assert result.get("HD", 64) > result.get("CD", 64)
    assert result.get("HD", 64) > result.get("IDD", 64)
    assert result.get("HD", 64) - result.get("CD", 64) > (
        result.get("HD", 4) - result.get("CD", 4)
    )

    # CD saturates: going 32 -> 64 processors buys little.
    assert result.get("CD", 64) < result.get("CD", 32) * 1.3

    # IDD flattens relative to HD at high processor counts.
    assert result.get("IDD", 64) < result.get("HD", 64)
