"""Shared plumbing for the benchmark harness.

Every bench runs one experiment exactly once under pytest-benchmark
(the experiments are deterministic simulations — repeated rounds would
measure Python overhead, not the system), prints the reproduced
table/figure, and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the exact output.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_core.json"


def record_bench_medians(
    medians: Dict[str, float], path: Path = BENCH_JSON
) -> Dict[str, float]:
    """Merge ``name -> median seconds`` entries into a bench JSON file.

    ``path`` defaults to ``BENCH_core.json`` at the repo root (the core
    kernel benches); ``bench_native.py`` passes ``BENCH_native.json``.
    The file accumulates across bench runs, so a partial run (e.g.
    ``-k kernel``) refreshes only its own keys.  Returns the full
    mapping as written.
    """
    data: Dict[str, float] = {}
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data.update(medians)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return data


def run_and_report(benchmark, runner, name: str, y_format: str = "{:10.4f}", **params):
    """Run one experiment under the benchmark fixture and archive its table.

    Args:
        benchmark: the pytest-benchmark fixture.
        runner: experiment function returning an ExperimentResult.
        name: file stem for the archived table.
        y_format: numeric cell format for the rendered table.
        **params: forwarded to the runner.

    Returns:
        The ExperimentResult, so the bench can assert its shape.
    """
    result = benchmark.pedantic(
        lambda: runner(**params), rounds=1, iterations=1
    )
    table = result.to_table(y_format)
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")
    return result
