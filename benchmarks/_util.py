"""Shared plumbing for the benchmark harness.

Every bench runs one experiment exactly once under pytest-benchmark
(the experiments are deterministic simulations — repeated rounds would
measure Python overhead, not the system), prints the reproduced
table/figure, and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the exact output.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def run_and_report(benchmark, runner, name: str, y_format: str = "{:10.4f}", **params):
    """Run one experiment under the benchmark fixture and archive its table.

    Args:
        benchmark: the pytest-benchmark fixture.
        runner: experiment function returning an ExperimentResult.
        name: file stem for the archived table.
        y_format: numeric cell format for the rendered table.
        **params: forwarded to the runner.

    Returns:
        The ExperimentResult, so the bench can assert its shape.
    """
    result = benchmark.pedantic(
        lambda: runner(**params), rounds=1, iterations=1
    )
    table = result.to_table(y_format)
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")
    return result
