"""Figure 11 — average distinct leaf-node visits per transaction.

Paper: 50K tx/processor, 0.2% support, P = 1..32.  Asserted shape: IDD's
visits fall roughly as 1/P (the bitmap divides the probe fan-out); DD's
fall far more slowly (only the tree shrinks), which is the measured
form of V(C, L/P) > V(C, L)/P.
"""

from benchmarks._util import run_and_report
from repro.experiments.figure11 import run_figure11


def test_figure11_leaf_visits(benchmark):
    result = run_and_report(
        benchmark, run_figure11, "figure11", y_format="{:10.2f}"
    )

    # Both curves decrease in P.
    for algorithm in ("DD", "IDD"):
        series = [result.get(algorithm, p) for p in (1, 2, 4, 8, 16, 32)]
        assert series == sorted(series, reverse=True)

    # IDD drops by roughly the processor count end to end...
    idd_drop = result.get("IDD", 1) / result.get("IDD", 32)
    assert idd_drop > 10

    # ...while DD saturates far above that.
    dd_drop = result.get("DD", 1) / result.get("DD", 32)
    assert dd_drop < idd_drop / 3

    # At every P > 1 IDD visits strictly fewer leaves than DD.
    for p in (2, 4, 8, 16, 32):
        assert result.get("IDD", p) < result.get("DD", p)
