"""Rule-serving bench: QPS + tail latency under concurrent client load.

Measures the always-on daemon (:mod:`repro.serve`) end to end — real
TCP sockets, real threads, the same line-JSON protocol production
clients speak — and lands the numbers in ``BENCH_serve.json``:

* ``serve.cold.{qps,p50_ms,p99_ms}`` — the first query wave against a
  freshly built model (cold caches, first-touch index walks).
* ``serve.warm.{qps,p50_ms,p99_ms}`` — steady state after a warmup
  wave, the number that answers "what traffic does one daemon take?".
* ``serve.swap.{qps,p50_ms,p99_ms}`` — a query wave racing a live
  background re-mine and its atomic generation swap; the bench asserts
  the swap landed (generation advanced) with **zero** failed queries.
* ``serve.model.num_rules`` — model size context for the latencies.

The nightly workflow gates ``serve.*.qps`` with ``--worse lower`` and
``serve.*.p99_ms`` with the default ``--worse higher`` via
``check_regression.py``.  Set ``REPRO_BENCH_TINY=1`` (the PR-time smoke
leg) for a seconds-scale run over a smaller database and fewer
requests — same code path, not gate-worthy numbers.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Dict, List, Tuple

from benchmarks._util import REPO_ROOT, record_bench_medians

from repro.core.apriori import Apriori
from repro.data.corpus import t15_i6, t5_i2
from repro.data.quest import generate
from repro.serve import CallableSource, RuleClient, RuleServer

BENCH_SERVE_JSON = REPO_ROOT / "BENCH_serve.json"

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

if TINY:
    CONFIG = t5_i2(400, seed=9)
    MIN_SUPPORT = 0.02
    CLIENTS = 2
    REQUESTS_PER_CLIENT = 150
else:
    CONFIG = t15_i6(4000, seed=9, num_items=300)
    MIN_SUPPORT = 0.01
    CLIENTS = 4
    REQUESTS_PER_CLIENT = 1500

MIN_CONFIDENCE = 0.3


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _client_load(
    host: str,
    port: int,
    baskets: List[Tuple[int, ...]],
    requests: int,
    stop: threading.Event = None,
) -> Tuple[List[float], float]:
    """Run one wave of concurrent clients; return (latencies, wall)."""
    latencies: List[List[float]] = [[] for _ in range(CLIENTS)]
    errors: List[str] = []

    def worker(slot: int) -> None:
        rng = random.Random(1000 + slot)
        try:
            with RuleClient(host, port, timeout=30.0) as client:
                for _ in range(requests):
                    if stop is not None and stop.is_set():
                        break
                    basket = rng.choice(baskets)
                    start = time.perf_counter()
                    client.query(list(basket), top=10)
                    latencies[slot].append(time.perf_counter() - start)
        except Exception as exc:  # noqa: BLE001 — surfaced via assert
            errors.append(f"client {slot}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(slot,))
        for slot in range(CLIENTS)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    assert not errors, f"client failures under load: {errors}"
    flat = [sample for bucket in latencies for sample in bucket]
    assert flat, "load wave produced no samples"
    return flat, wall


def _wave_medians(prefix: str, latencies: List[float], wall: float) -> Dict[str, float]:
    return {
        f"{prefix}.qps": len(latencies) / wall,
        f"{prefix}.p50_ms": _percentile(latencies, 0.50) * 1e3,
        f"{prefix}.p99_ms": _percentile(latencies, 0.99) * 1e3,
    }


def test_serve_load_and_swap():
    db = generate(CONFIG)
    source = CallableSource(lambda: Apriori(MIN_SUPPORT).mine(db), "bench")
    # Query mix: prefixes of real transactions — baskets that actually
    # hit the index, like a recommender fed live carts would see.
    baskets = [
        tuple(transaction[:3])
        for transaction in db
        if len(transaction) >= 2
    ]
    medians: Dict[str, float] = {}
    with RuleServer(source, min_confidence=MIN_CONFIDENCE, port=0) as server:
        host, port = server.address
        num_rules = server.index.num_rules
        assert num_rules > 0, (
            "bench model mined no rules — the latencies would measure "
            "empty-index walks, not serving"
        )
        medians["serve.model.num_rules"] = float(num_rules)

        # Cold: the very first wave against the just-built model.
        cold_latencies, cold_wall = _client_load(
            host, port, baskets, max(20, REQUESTS_PER_CLIENT // 10)
        )
        medians.update(_wave_medians("serve.cold", cold_latencies, cold_wall))

        # Warm: steady state after the cold wave warmed every path.
        warm_latencies, warm_wall = _client_load(
            host, port, baskets, REQUESTS_PER_CLIENT
        )
        medians.update(_wave_medians("serve.warm", warm_latencies, warm_wall))

        # Swap: a full wave racing a live background re-mine.
        generation_before = server.index.generation
        stop = threading.Event()
        swap_box: Dict[str, object] = {}

        def swapper() -> None:
            with RuleClient(host, port, timeout=60.0) as control:
                swap_box["reply"] = control.remine(wait=True)
            stop.set()

        swap_thread = threading.Thread(target=swapper)
        swap_thread.start()
        swap_latencies, swap_wall = _client_load(
            host, port, baskets, REQUESTS_PER_CLIENT
        )
        swap_thread.join(timeout=120.0)
        assert not swap_thread.is_alive(), "re-mine never completed"
        reply = swap_box["reply"]
        assert reply["status"] == "ok", reply
        assert reply["generation"] == generation_before + 1, (
            "the background re-mine must advance the generation counter"
        )
        assert reply["remine_failures"] == 0, reply
        medians.update(_wave_medians("serve.swap", swap_latencies, swap_wall))

        with RuleClient(host, port, timeout=30.0) as control:
            stats = control.stats()
        # The swap contract under load: not one query failed, ever.
        assert stats.failed_queries == 0, (
            f"{stats.failed_queries} queries failed across the load "
            "waves — the atomic swap dropped traffic"
        )
        assert stats.generation == generation_before + 1

    record_bench_medians(medians, path=BENCH_SERVE_JSON)
    print(
        f"\nserve bench ({'tiny' if TINY else 'full'}): "
        f"{num_rules} rules, {CLIENTS} clients"
    )
    for phase in ("cold", "warm", "swap"):
        print(
            f"  {phase:>4}: {medians[f'serve.{phase}.qps']:8.0f} qps, "
            f"p50 {medians[f'serve.{phase}.p50_ms']:7.3f} ms, "
            f"p99 {medians[f'serve.{phase}.p99_ms']:7.3f} ms"
        )
