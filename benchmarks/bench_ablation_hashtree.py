"""Ablation — hash tree geometry (branching factor x leaf capacity).

Section IV notes "the desired value of S can be obtained by adjusting
the branching factor"; this bench quantifies the traversal-vs-checking
trade-off across geometries, with identical mining output.
"""

from benchmarks._util import run_and_report
from repro.experiments.ablations import run_ablation_hashtree


def test_ablation_hashtree(benchmark):
    result = run_and_report(
        benchmark, run_ablation_hashtree, "ablation_hashtree",
        y_format="{:10.3f}",
    )
    # Wider hash tables cut leaf-checking work at every leaf capacity...
    for capacity in (4, 16, 64):
        series = [result.get(f"checks@S={capacity}", b) for b in (4, 16, 64, 256)]
        assert series == sorted(series, reverse=True)
