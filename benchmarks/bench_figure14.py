"""Figure 14 — runtime vs transaction count (pass-3 time only).

Paper: P = 64, M = 0.7M, N = 1.3M..26.1M on the T3E.  Asserted shape:
CD and HD grow near-linearly with N (HD below CD); IDD sits above both
with a widening absolute gap driven by load imbalance.
"""

from benchmarks._util import run_and_report
from repro.experiments.figure14 import run_figure14


def test_figure14_transactions_sweep(benchmark):
    result = run_and_report(benchmark, run_figure14, "figure14")

    xs = result.x_values
    first, last = xs[0], xs[-1]

    # Everything grows with N.
    for algorithm in ("CD", "IDD", "HD"):
        series = [result.get(algorithm, n) for n in xs]
        assert series == sorted(series)

    # HD scales like CD but stays below it.
    for n in xs:
        assert result.get("HD", n) < result.get("CD", n)

    # IDD is the worst of the three at scale and its absolute gap to HD
    # widens with N.
    assert result.get("IDD", last) > result.get("CD", last)
    assert (
        result.get("IDD", last) - result.get("HD", last)
        > result.get("IDD", first) - result.get("HD", first)
    )
