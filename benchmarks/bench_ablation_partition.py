"""Ablation — IDD candidate partitioning strategy.

Compares the paper's bin-packing against the naive contiguous ranges
Section III-C warns about, and against second-item refinement.
"""

from benchmarks._util import run_and_report
from repro.experiments.ablations import run_ablation_partition


def test_ablation_partition(benchmark):
    result = run_and_report(
        benchmark, run_ablation_partition, "ablation_partition"
    )
    # Bin packing beats contiguous ranges at every processor count.
    for p in (8, 16, 32):
        assert result.get("bin_pack", p) < result.get("contiguous", p)
    # The gap is driven by idle time (load imbalance).
    assert result.extras[("contiguous", 32, "idle")] > result.extras[
        ("bin_pack", 32, "idle")
    ]
