"""Section IV — the V(i, j) model (Equations 1-2) against simulation.

Validates the paper's expected-distinct-leaf-visit formula by Monte
Carlo and regenerates the asymptotic claims used throughout the
analysis: V -> i for large trees, and DD's checking redundancy
V(C, L/P) / (V(C, L)/P) approaching P.
"""

from benchmarks._util import RESULTS_DIR
from repro.analysis.leafvisits import (
    dd_checking_ratio,
    expected_leaf_visits,
    monte_carlo_leaf_visits,
)


def test_leaf_visit_model(benchmark):
    probes = 455  # C(15, 3), the paper's pass-3 fan-out
    leaves = [64, 256, 1024, 4096, 16384]

    def evaluate():
        closed = [expected_leaf_visits(probes, j) for j in leaves]
        simulated = [
            monte_carlo_leaf_visits(probes, j, trials=800, seed=j)
            for j in leaves
        ]
        return closed, simulated

    closed, simulated = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    lines = ["V(455, j): closed form vs Monte Carlo"]
    lines.append(f"{'leaves':>8s} | {'closed':>10s} | {'simulated':>10s}")
    for j, c, s in zip(leaves, closed, simulated):
        lines.append(f"{j:>8d} | {c:10.2f} | {s:10.2f}")
        assert abs(c - s) / c < 0.05

    # Equation 2: the large-tree limit is the probe count itself.
    assert expected_leaf_visits(probes, 10**12) / probes > 0.999

    # DD redundancy grows toward P as the tree grows (Section IV).
    ratios = [dd_checking_ratio(probes, 10**7, p) for p in (2, 4, 8, 16)]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 15.5
    lines.append(
        "DD checking redundancy at L=1e7: "
        + ", ".join(f"P={p}: {r:.2f}" for p, r in zip((2, 4, 8, 16), ratios))
    )

    table = "\n".join(lines)
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "model.txt").write_text(table + "\n", encoding="utf-8")
