"""Ablation — IDD's root-level bitmap filter on/off.

Isolates the "intelligent" pruning from the communication improvements:
without the bitmap, every transaction fans out all items at every
processor's hash-tree root, as in DD.
"""

from benchmarks._util import run_and_report
from repro.experiments.ablations import run_ablation_bitmap


def test_ablation_bitmap(benchmark):
    result = run_and_report(benchmark, run_ablation_bitmap, "ablation_bitmap")
    for p in (4, 8, 16):
        assert result.get("bitmap", p) < result.get("no_bitmap", p)
    # The filter matters more as the per-processor candidate share shrinks.
    assert (
        result.get("no_bitmap", 16) / result.get("bitmap", 16)
        > result.get("no_bitmap", 4) / result.get("bitmap", 4)
    )
