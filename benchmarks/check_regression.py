"""Fail when a bench JSON regresses against a committed baseline.

The nightly workflow runs the full-size native bench, then compares the
fresh ``BENCH_native.json`` against the committed one::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json

By default the comparison covers the shared-plane per-pass coordinator
overhead (``native.shared.*.coord_pass_s``) — the zero-copy data
plane's headline metric — and fails (exit 1) when any key grows more
than 25% over the baseline.  ``--prefix`` / ``--suffix`` retarget the
key selection, ``--keys-glob`` replaces it with a single
:mod:`fnmatch` pattern (e.g. ``'native.*.speedup_vs_serial'`` covers
the tree-family, IDD and vertical speedups in one invocation), and
``--threshold`` adjusts the allowed drift, so other benches can reuse
the checker.

``--worse`` names the bad direction for the selected keys: ``higher``
(the default — timings, where growth is a regression) or ``lower``
(speedups and ratios, where shrinkage is; the nightly workflow gates
``native.*.speedup_vs_serial`` this way).  Values that moved
in the *good* direction never fail: improvements are recorded by
committing the fresh JSON, not by this gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional

DEFAULT_PREFIX = "native.shared."
DEFAULT_SUFFIX = ".coord_pass_s"
DEFAULT_THRESHOLD = 0.25


def _load(path: Path) -> Dict[str, float]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{path} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"{path} must hold a JSON object of medians")
    return data


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    prefix: str = DEFAULT_PREFIX,
    suffix: str = DEFAULT_SUFFIX,
    threshold: float = DEFAULT_THRESHOLD,
    worse: str = "higher",
    keys_glob: Optional[str] = None,
) -> List[str]:
    """Return human-readable regression messages (empty = pass).

    ``worse`` is the direction that fails: ``"higher"`` for timings
    (values in seconds, printed as ms), ``"lower"`` for speedups and
    ratios (dimensionless, printed raw).  ``keys_glob``, when given,
    selects keys with one :func:`fnmatch.fnmatchcase` pattern and
    overrides ``prefix`` / ``suffix``.  A key present in the baseline
    but missing from the current run is a failure too — a silently
    dropped measurement must not read as green.
    """
    if worse not in ("higher", "lower"):
        raise ValueError(f"worse must be 'higher' or 'lower', got {worse!r}")
    if keys_glob is not None:
        keys = sorted(k for k in baseline if fnmatchcase(k, keys_glob))
        selection = keys_glob
    else:
        keys = sorted(
            k for k in baseline if k.startswith(prefix) and k.endswith(suffix)
        )
        selection = f"{prefix}*{suffix}"
    if not keys:
        return [
            f"baseline has no keys matching {selection} — "
            "nothing to check"
        ]
    problems: List[str] = []
    for key in keys:
        base = baseline[key]
        if key not in current:
            problems.append(f"{key}: missing from current run")
            continue
        value = current[key]
        drift = (value - base) / base if base > 0 else 0.0
        if worse == "higher":
            limit = base * (1.0 + threshold)
            failed = value > limit
            shown_base, shown_value = f"{base * 1e3:.2f}ms", f"{value * 1e3:.2f}ms"
            direction = "exceeds"
        else:
            limit = base * (1.0 - threshold)
            failed = value < limit
            shown_base, shown_value = f"{base:.3f}", f"{value:.3f}"
            direction = "falls below"
        status = "FAIL" if failed else "ok"
        print(
            f"  {status:>4}  {key}: baseline {shown_base} -> "
            f"current {shown_value} ({drift:+.1%}, worse={worse}, "
            f"limit {threshold:.0%})"
        )
        if failed:
            problems.append(
                f"{key}: {value:.6f} {direction} baseline {base:.6f} "
                f"by {abs(drift):.1%} (threshold {threshold:.0%}, "
                f"worse={worse})"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare a bench JSON against a committed baseline."
    )
    parser.add_argument("baseline", type=Path, help="committed bench JSON")
    parser.add_argument("current", type=Path, help="freshly produced JSON")
    parser.add_argument(
        "--prefix", default=DEFAULT_PREFIX,
        help=f"key prefix to check (default {DEFAULT_PREFIX!r})",
    )
    parser.add_argument(
        "--suffix", default=DEFAULT_SUFFIX,
        help=f"key suffix to check (default {DEFAULT_SUFFIX!r})",
    )
    parser.add_argument(
        "--keys-glob", default=None, metavar="PATTERN",
        help=(
            "fnmatch pattern selecting keys (overrides --prefix/--suffix), "
            "e.g. 'native.*.speedup_vs_serial'"
        ),
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed fractional drift from baseline (default 0.25)",
    )
    parser.add_argument(
        "--worse", choices=("higher", "lower"), default="higher",
        help=(
            "which direction fails: 'higher' for timings (default), "
            "'lower' for speedups/ratios"
        ),
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")
    problems = compare(
        _load(args.baseline),
        _load(args.current),
        prefix=args.prefix,
        suffix=args.suffix,
        threshold=args.threshold,
        worse=args.worse,
        keys_glob=args.keys_glob,
    )
    if problems:
        print("\nregressions detected:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
