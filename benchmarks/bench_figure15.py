"""Figure 15 — runtime vs candidate count (pass-3 time only).

Paper: P = 64, N = 1.3M, M = 0.7M..8.0M on the T3E, memory holding
exactly the smallest M.  Asserted shape: CD grows ~O(M) (multi-scan
beyond memory); IDD starts above CD and overtakes it as M grows; HD
tracks the winner everywhere and collapses onto IDD once its grid
reaches G = P.
"""

import pytest

from benchmarks._util import run_and_report
from repro.experiments.figure15 import run_figure15


def test_figure15_candidates_sweep(benchmark):
    result = run_and_report(benchmark, run_figure15, "figure15")

    xs = result.x_values
    first, last = xs[0], xs[-1]

    # CD's cost grows steeply with M while IDD's grows ~M/P.
    assert result.get("CD", last) > 10 * result.get("CD", first)
    assert result.ratio("CD", "IDD", last) > result.ratio("CD", "IDD", first)

    # The crossover: CD wins the smallest M, IDD wins the largest.
    assert result.get("IDD", first) > result.get("CD", first)
    assert result.get("IDD", last) < result.get("CD", last)

    # CD partitions its tree beyond the memory capacity.
    assert result.extras[("CD", first, "scans")] == 1
    assert result.extras[("CD", last, "scans")] > 10

    # HD walks its grid toward IDD and matches it exactly at G = P.
    rows = [result.extras[("HD", x, "grid_rows")] for x in xs]
    assert rows == sorted(rows)
    assert rows[-1] == 64
    assert result.get("HD", last) == pytest.approx(
        result.get("IDD", last), rel=1e-9
    )

    # HD never loses badly to the better of CD and IDD.
    for x in xs:
        best = min(result.get("CD", x), result.get("IDD", x))
        assert result.get("HD", x) <= best * 1.2
