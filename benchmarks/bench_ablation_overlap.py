"""Ablation — asynchronous communication/computation overlap.

Section III-D: IDD's pipeline depends on overlap support; on a machine
without it, the shift cost serializes with the subset computation.
"""

from benchmarks._util import run_and_report
from repro.experiments.ablations import run_ablation_overlap


def test_ablation_overlap(benchmark):
    result = run_and_report(
        benchmark, run_ablation_overlap, "ablation_overlap"
    )
    for p in (4, 8, 16):
        assert result.get("async", p) <= result.get("blocking", p)
