"""Figure 10 — scaleup of CD / DD / DD+comm / IDD / HD on the T3E model.

Paper: 50K tx/processor, 0.1% support, P = 4..128, DD capped near 32.
Reproduced at 150 tx/processor, 0.8% support.  Asserted shape: DD worst
and diverging; DD+comm between DD and IDD; CD near-flat; IDD rising with
P and crossing CD at the high end; HD flat and at least matching CD.
"""

from benchmarks._util import run_and_report
from repro.experiments.figure10 import run_figure10


def test_figure10_scaleup(benchmark):
    result = run_and_report(benchmark, run_figure10, "figure10")

    # DD diverges and is the worst algorithm wherever it runs.
    assert result.get("DD", 32) > result.get("DD", 4)
    assert result.get("DD", 32) > result.get("CD", 32)
    assert result.get("DD", 32) > result.get("IDD", 32)

    # The communication fix alone recovers part of the gap.
    assert result.get("DD", 32) > result.get("DD+comm", 32) > result.get("IDD", 32)

    # CD scales (stays within 2x of its smallest configuration).
    assert result.get("CD", 128) < 2.0 * result.get("CD", 4)

    # IDD's load imbalance catches up with it at high processor counts.
    assert result.get("IDD", 128) > result.get("IDD", 4)
    assert result.get("IDD", 128) > result.get("HD", 128)

    # HD is flat and beats CD, with the margin at 128 processors.
    assert result.get("HD", 128) < result.get("CD", 128)
