"""Data-plane benchmark for the native pool: pickle vs shared memory.

Mines the same Quest workload on both data planes at 1, 2, and 4
workers and records, per configuration, the median wall-clock of a full
mine and the median **per-pass coordinator overhead** — the time the
coordinator spends broadcasting candidates and reducing count vectors
(:class:`~repro.parallel.native.PassOverhead`), as opposed to waiting
on worker compute.  That overhead is exactly what the zero-copy plane
exists to remove: on the pickle plane the coordinator re-serializes the
candidate list once per worker per pass and unpickles every count
vector; on the shared plane it writes one binary candidate frame and
reads count vectors straight out of shared int64 slots.

Medians land in ``BENCH_native.json`` at the repo root; the headline
contract (asserted here, cited in the README) is that the shared plane
cuts coordinator overhead by at least 2x at 4 workers.

Set ``REPRO_BENCH_TINY=1`` (CI's bench smoke step) to run a
seconds-scale workload that exercises the full measurement path without
asserting the ratio — tiny runs are dominated by fixed per-segment
costs, not per-candidate serialization, so the contract is only
meaningful at full size.
"""

import os
import statistics
import time

import pytest

from benchmarks._util import REPO_ROOT, record_bench_medians
from repro.data.corpus import t15_i6
from repro.data.quest import generate
from repro.parallel.native import DATA_PLANES, NativeCountDistribution
from repro.parallel.native_idd import NativeIntelligentDistribution

BENCH_NATIVE_JSON = REPO_ROOT / "BENCH_native.json"

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

# Full mode: ~125k candidates across passes 2-3, where per-candidate
# serialization dominates the coordinator's pass loop.  Tiny mode: the
# same passes on a small db, for CI smoke under pytest-timeout.
if TINY:
    NUM_TRANSACTIONS, NUM_ITEMS, MIN_SUPPORT, ROUNDS = 120, 80, 0.05, 1
else:
    NUM_TRANSACTIONS, NUM_ITEMS, MIN_SUPPORT, ROUNDS = 1500, 600, 0.005, 3

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def db():
    return generate(
        t15_i6(NUM_TRANSACTIONS, seed=7, num_items=NUM_ITEMS)
    )


def _measure(db, data_plane: str, num_workers: int):
    """Median (wall_s, coordinator_s per pass) over ROUNDS mines."""
    walls, coords = [], []
    frequent = None
    for _ in range(ROUNDS):
        miner = NativeCountDistribution(
            MIN_SUPPORT, num_workers, data_plane=data_plane, max_k=3
        )
        start = time.perf_counter()
        result = miner.mine(db)
        walls.append(time.perf_counter() - start)
        overheads = miner.last_pass_overheads
        coords.append(
            sum(o.coordinator_s for o in overheads) / max(1, len(overheads))
        )
        if frequent is None:
            frequent = result.frequent
        else:
            assert result.frequent == frequent  # determinism across rounds
    return statistics.median(walls), statistics.median(coords), frequent


def test_data_plane_comparison(db):
    """Pickle vs shared plane at 1/2/4 workers -> BENCH_native.json."""
    medians = {}
    baseline_frequent = None
    for num_workers in WORKER_COUNTS:
        for plane in DATA_PLANES:
            wall, coord, frequent = _measure(db, plane, num_workers)
            medians[f"native.{plane}.w{num_workers}.wall_s"] = wall
            medians[f"native.{plane}.w{num_workers}.coord_pass_s"] = coord
            if baseline_frequent is None:
                baseline_frequent = frequent
            else:
                # Identical results across planes and worker counts.
                assert frequent == baseline_frequent
        ratio = (
            medians[f"native.pickle.w{num_workers}.coord_pass_s"]
            / medians[f"native.shared.w{num_workers}.coord_pass_s"]
        )
        medians[f"native.w{num_workers}.coord_ratio"] = ratio
        print(
            f"\n{num_workers} worker(s): "
            f"wall pickle {medians[f'native.pickle.w{num_workers}.wall_s']:.3f}s"
            f" / shared {medians[f'native.shared.w{num_workers}.wall_s']:.3f}s"
            f"; coordinator/pass pickle "
            f"{medians[f'native.pickle.w{num_workers}.coord_pass_s'] * 1e3:.1f}ms"
            f" / shared "
            f"{medians[f'native.shared.w{num_workers}.coord_pass_s'] * 1e3:.1f}ms"
            f" ({ratio:.2f}x)"
        )

    record_bench_medians(medians, path=BENCH_NATIVE_JSON)

    if not TINY:
        ratio_4 = medians["native.w4.coord_ratio"]
        assert ratio_4 >= 2.0, (
            f"shared plane only cut coordinator overhead {ratio_4:.2f}x "
            "at 4 workers (need >= 2x)"
        )


def test_cd_vs_idd_partitioning(db):
    """CD vs IDD on the real pool: candidate memory and bitmap pruning.

    The paper's case for IDD is that partitioning the candidates makes
    each node's hash tree shrink with P while CD replicates the whole
    tree everywhere.  This section measures exactly that on the native
    pool: per worker-count, the largest candidate bin any worker built
    (``max_bin_candidates``, CD's equals the full candidate set) and the
    root-bitmap prune rate the partitioning buys, plus the usual
    wall-clock medians.  Keys land next to the data-plane section in
    ``BENCH_native.json``.
    """
    medians = {}
    baseline_frequent = None
    for num_workers in WORKER_COUNTS:
        walls = []
        frequent = None
        for _ in range(ROUNDS):
            miner = NativeIntelligentDistribution(
                MIN_SUPPORT, num_workers, max_k=3
            )
            start = time.perf_counter()
            result = miner.mine(db)
            walls.append(time.perf_counter() - start)
            if frequent is None:
                frequent = result.frequent
            else:
                assert result.frequent == frequent
        # Shard sizes and prune rates are deterministic — take them from
        # the last round's pass-2 record (the largest candidate set).
        (pass2,) = [o for o in miner.last_pass_overheads if o.k == 2]
        medians[f"native.idd.w{num_workers}.wall_s"] = statistics.median(
            walls
        )
        medians[f"native.idd.w{num_workers}.max_bin_candidates"] = float(
            pass2.max_bin_candidates
        )
        medians[f"native.idd.w{num_workers}.prune_rate"] = pass2.prune_rate
        medians[
            f"native.cd.w{num_workers}.max_bin_candidates"
        ] = float(pass2.num_candidates)
        if baseline_frequent is None:
            baseline_frequent = frequent
        else:
            assert frequent == baseline_frequent
        print(
            f"\nIDD {num_workers} worker(s): "
            f"wall {medians[f'native.idd.w{num_workers}.wall_s']:.3f}s; "
            f"largest bin {pass2.max_bin_candidates}/"
            f"{pass2.num_candidates} candidates; "
            f"prune rate {pass2.prune_rate:.2f}"
        )

    record_bench_medians(medians, path=BENCH_NATIVE_JSON)

    if not TINY:
        # The paper's memory argument, asserted: the largest shard at 4
        # workers is at most half the replicated CD tree (bin packing
        # makes it ~1/4; 2x leaves slack for skewed first items), and
        # the bitmap prunes most root descents.
        shrink = (
            medians["native.cd.w4.max_bin_candidates"]
            / medians["native.idd.w4.max_bin_candidates"]
        )
        assert shrink >= 2.0, (
            f"IDD's largest bin only {shrink:.2f}x smaller than CD's "
            "replicated candidate set at 4 workers (need >= 2x)"
        )
        assert medians["native.idd.w4.prune_rate"] >= 0.5
