"""Native-pool benchmarks: data planes, partitioning, and kernels.

Three sections, all mining the same grown Quest workload and landing
medians in ``BENCH_native.json`` at the repo root:

* **Data planes** (``test_data_plane_comparison``) — pickle vs shared
  memory at 1/2/4 workers under the tree family's vectorized
  ``fast-np`` kernel, run through the warm-pool context manager (spawn
  cost paid once; on the shared plane warm re-mines also reuse the
  read-only candidate-plane segments, so ``cand_build_s`` /
  ``cand_attach_s`` collapse).  Records the cold wall, the warm median
  wall, the median **per-pass coordinator overhead** (broadcasting
  candidates + reducing count vectors,
  :class:`~repro.parallel.native.PassOverhead`), and the wall-clock
  speedup against the serial fast-kernel baseline measured in the same
  run.  Two contracts are asserted here (and gated nightly via
  ``check_regression.py --worse lower``): the shared plane cuts
  coordinator overhead by at least 2x at 4 workers, and the tree
  family beats serial outright —
  ``native.shared.w4.speedup_vs_serial > 1.0`` — because the fast-np
  kernel removes the per-transaction interpreter loop and the shared
  candidate plane removes the per-worker, per-pass candidate rebuild.
* **CD vs IDD** (``test_cd_vs_idd_partitioning``) — the paper's memory
  argument on the real pool: the largest candidate bin any worker
  built (compared against the full candidate set CD replicates), the
  root-bitmap prune rate, wall-clock, and speedup.  Measured through
  the same warm-pool + fast-np shared-candidate-plane pattern as the
  CD sections (the worker masks the one decoded plane counter per
  shard instead of rebuilding a sub-tree every pass), and gated
  ``native.idd.w4.speedup_vs_serial > 1.0`` — the formulation that
  bounds candidate memory must also beat serial, not trade it away.
* **CD vs vertical** (``test_vertical_kernel_speedup``) — the
  TID-bitmap kernel on the shared plane, warm-pool pattern as above.
  Gate: ``native.vertical.w4.speedup_vs_serial > 1.0``.
* **Out-of-core mmap plane** (``test_mmap_out_of_core``) — the same
  warm-pool measurement through a disk-backed packed store
  (``data_plane="mmap"``) with a constrained ``block_budget``, so every
  counting pass streams the store block by block the way a
  larger-than-RAM database would.  Records
  ``native.mmap.w{N}.{wall_s,cold_wall_s,coord_pass_s,
  speedup_vs_serial}`` and gates
  ``native.mmap.w4.speedup_vs_serial > 1.0``: paying the page cache
  instead of ``/dev/shm`` must not surrender the win over serial.

Every ``…speedup_vs_serial`` key divides the serial fast-kernel median
wall by the configuration's median wall: above 1.0 means faster than
serial, higher is better.

Set ``REPRO_BENCH_TINY=1`` (CI's bench smoke step) to run a
seconds-scale workload that exercises the full measurement path without
asserting ratios — tiny runs are dominated by fixed per-segment costs,
so the contracts are only meaningful at full size.
"""

import os
import statistics
import time

import pytest

from benchmarks._util import REPO_ROOT, record_bench_medians
from repro.core.apriori import Apriori
from repro.data.corpus import t15_i6
from repro.data.quest import generate
from repro.parallel.native import DATA_PLANES, NativeCountDistribution
from repro.parallel.native_idd import NativeIntelligentDistribution

BENCH_NATIVE_JSON = REPO_ROOT / "BENCH_native.json"

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

# Full mode: 8000 transactions and ~40k pass-2 candidates, large
# enough that per-candidate serialization dominates the coordinator's
# pass loop and per-transaction counting dominates the workers' — the
# regime both the shared plane and the vertical kernel exist for.
# Tiny mode: the same passes on a small db, for CI smoke under
# pytest-timeout.
if TINY:
    NUM_TRANSACTIONS, NUM_ITEMS, MIN_SUPPORT, ROUNDS = 120, 80, 0.05, 1
else:
    NUM_TRANSACTIONS, NUM_ITEMS, MIN_SUPPORT, ROUNDS = 8000, 600, 0.005, 3

WORKER_COUNTS = (1, 2, 4)

# Out-of-core streaming unit for the mmap section: small enough that
# full mode splits a counting pass into many blocks (the ~120k-item
# store becomes ~8 blocks), so the bench actually exercises the
# stream-through-blocks loop rather than one whole-store call.
BLOCK_BUDGET = 256 if TINY else 16384


@pytest.fixture(scope="module")
def db():
    return generate(
        t15_i6(NUM_TRANSACTIONS, seed=7, num_items=NUM_ITEMS)
    )


@pytest.fixture(scope="module")
def serial_baseline(db):
    """Median serial wall per kernel, measured in the same run.

    The fast-kernel median is the denominator of every
    ``speedup_vs_serial`` key; recording the serial vertical wall next
    to it shows how much of the native-vertical win is the kernel
    itself.  Returns ``(fast_median_wall_s, frequent)``.
    """
    medians = {}
    frequent = None
    for kernel in ("fast", "fast-np", "vertical"):
        walls = []
        for _ in range(ROUNDS):
            start = time.perf_counter()
            result = Apriori(MIN_SUPPORT, max_k=3, kernel=kernel).mine(db)
            walls.append(time.perf_counter() - start)
        medians[f"serial.{kernel}.wall_s"] = statistics.median(walls)
        if frequent is None:
            frequent = result.frequent
        else:
            assert result.frequent == frequent  # kernels bit-identical
    record_bench_medians(medians, path=BENCH_NATIVE_JSON)
    print(
        f"\nserial baseline: fast {medians['serial.fast.wall_s']:.3f}s / "
        f"fast-np {medians['serial.fast-np.wall_s']:.3f}s / "
        f"vertical {medians['serial.vertical.wall_s']:.3f}s"
    )
    return medians["serial.fast.wall_s"], frequent


def _measure(db, data_plane: str, num_workers: int, **miner_kwargs):
    """Warm-pool medians for one plane/worker-count configuration.

    One cold mine (spawn + packing + first candidate-plane publish),
    then ROUNDS warm re-mines reusing the pool — and, on the shared
    plane, the candidate-plane segments.  Returns ``(wall_s,
    coord_pass_s, cold_wall_s, cand_attach_s, frequent)`` where the
    first two are warm medians and ``cand_attach_s`` is the slowest
    warm attach (should be ~0: every segment is already decoded).
    Extra keyword arguments (``store_dir``, ``block_budget``, …) pass
    through to the miner.
    """
    walls, coords, attaches = [], [], []
    with NativeCountDistribution(
        MIN_SUPPORT, num_workers, data_plane=data_plane,
        kernel="fast-np", max_k=3, **miner_kwargs,
    ) as miner:
        start = time.perf_counter()
        result = miner.mine(db)
        cold_wall = time.perf_counter() - start
        frequent = result.frequent
        for _ in range(ROUNDS):
            start = time.perf_counter()
            result = miner.mine(db)
            walls.append(time.perf_counter() - start)
            assert miner.last_pool_reused
            assert result.frequent == frequent  # determinism across rounds
            overheads = miner.last_pass_overheads
            coords.append(
                sum(o.coordinator_s for o in overheads)
                / max(1, len(overheads))
            )
            attaches.append(
                max(o.cand_attach_s for o in overheads)
            )
    return (
        statistics.median(walls), statistics.median(coords), cold_wall,
        statistics.median(attaches), frequent,
    )


def test_data_plane_comparison(db, serial_baseline):
    """Pickle vs shared plane at 1/2/4 workers -> BENCH_native.json."""
    serial_wall, serial_frequent = serial_baseline
    medians = {}
    for num_workers in WORKER_COUNTS:
        for plane in DATA_PLANES:
            wall, coord, cold_wall, attach, frequent = _measure(
                db, plane, num_workers
            )
            medians[f"native.{plane}.w{num_workers}.wall_s"] = wall
            medians[f"native.{plane}.w{num_workers}.cold_wall_s"] = cold_wall
            medians[f"native.{plane}.w{num_workers}.coord_pass_s"] = coord
            medians[
                f"native.{plane}.w{num_workers}.speedup_vs_serial"
            ] = serial_wall / wall
            # Identical results across planes and worker counts.
            assert frequent == serial_frequent
            # Warm re-mines reuse the already-attached candidate plane.
            if not TINY:
                assert attach < 0.05
        # Pickle-plane coordinator overhead divided by shared-plane:
        # above 1.0 means the shared plane is cheaper, higher is better.
        ratio = (
            medians[f"native.pickle.w{num_workers}.coord_pass_s"]
            / medians[f"native.shared.w{num_workers}.coord_pass_s"]
        )
        medians[
            f"native.w{num_workers}.coord_pickle_over_shared"
        ] = ratio
        print(
            f"\n{num_workers} worker(s): "
            f"wall pickle {medians[f'native.pickle.w{num_workers}.wall_s']:.3f}s"
            f" / shared {medians[f'native.shared.w{num_workers}.wall_s']:.3f}s"
            f"; coordinator/pass pickle "
            f"{medians[f'native.pickle.w{num_workers}.coord_pass_s'] * 1e3:.1f}ms"
            f" / shared "
            f"{medians[f'native.shared.w{num_workers}.coord_pass_s'] * 1e3:.1f}ms"
            f" ({ratio:.2f}x)"
        )

    record_bench_medians(medians, path=BENCH_NATIVE_JSON)

    if not TINY:
        ratio_4 = medians["native.w4.coord_pickle_over_shared"]
        assert ratio_4 >= 2.0, (
            f"shared plane only cut coordinator overhead {ratio_4:.2f}x "
            "at 4 workers (need >= 2x)"
        )
        speedup = medians["native.shared.w4.speedup_vs_serial"]
        assert speedup > 1.0, (
            f"fast-np native pool at 4 workers is {speedup:.2f}x the "
            "serial fast kernel (need > 1.0x: the vectorized kernel + "
            "shared candidate plane must beat serial outright, not "
            "just scale)"
        )


def test_cd_vs_idd_partitioning(db, serial_baseline):
    """CD vs IDD on the real pool: candidate memory and bitmap pruning.

    The paper's case for IDD is that partitioning the candidates makes
    each node's hash tree shrink with P while CD replicates the whole
    tree everywhere.  This section measures exactly that on the native
    pool: per worker-count, the largest candidate bin any worker built
    (``max_bin_candidates``, CD's equals the full candidate set) and the
    root-bitmap prune rate the partitioning buys, plus the usual
    wall-clock medians.  Keys land next to the data-plane section in
    ``BENCH_native.json``.
    """
    serial_wall, serial_frequent = serial_baseline
    medians = {}
    full_candidates = 0
    for num_workers in WORKER_COUNTS:
        # Warm-pool pattern, exactly like the CD sections: spawn once,
        # measure warm re-mines on the fast-np shared candidate plane
        # (the worker-side `_count_shard_plane` path — one decoded
        # plane counter + a first-item row mask per shard instead of a
        # per-pass shard rebuild).  The old cold-miner-per-round
        # measurement repaid spawn + packing every round, which is why
        # the `native.idd.w*` speedups sat at 0.57-0.63.
        walls = []
        with NativeIntelligentDistribution(
            MIN_SUPPORT, num_workers, kernel="fast-np", max_k=3
        ) as miner:
            start = time.perf_counter()
            result = miner.mine(db)
            cold_wall = time.perf_counter() - start
            frequent = result.frequent
            for _ in range(ROUNDS):
                start = time.perf_counter()
                result = miner.mine(db)
                walls.append(time.perf_counter() - start)
                assert miner.last_pool_reused
                assert result.frequent == frequent
            # Shard sizes and prune rates are deterministic — take them
            # from the last round's pass-2 record (the largest candidate
            # set).  ``pass2.num_candidates`` is the full set a CD
            # worker would replicate; CD never bin-packs, so no
            # ``native.cd.*`` bin key is recorded — the IDD bins are
            # compared against it directly.
            (pass2,) = [o for o in miner.last_pass_overheads if o.k == 2]
        full_candidates = pass2.num_candidates
        wall = statistics.median(walls)
        medians[f"native.idd.w{num_workers}.wall_s"] = wall
        medians[f"native.idd.w{num_workers}.cold_wall_s"] = cold_wall
        medians[
            f"native.idd.w{num_workers}.speedup_vs_serial"
        ] = serial_wall / wall
        medians[f"native.idd.w{num_workers}.max_bin_candidates"] = float(
            pass2.max_bin_candidates
        )
        medians[f"native.idd.w{num_workers}.prune_rate"] = pass2.prune_rate
        assert frequent == serial_frequent
        print(
            f"\nIDD {num_workers} worker(s): "
            f"cold {cold_wall:.3f}s, warm {wall:.3f}s "
            f"({serial_wall / wall:.2f}x vs serial fast); "
            f"largest bin {pass2.max_bin_candidates}/"
            f"{pass2.num_candidates} candidates; "
            f"prune rate {pass2.prune_rate:.2f}"
        )

    record_bench_medians(medians, path=BENCH_NATIVE_JSON)

    if not TINY:
        # The paper's memory argument, asserted: the largest shard at 4
        # workers is at most half the replicated CD tree (bin packing
        # makes it ~1/4; 2x leaves slack for skewed first items), and
        # the bitmap prunes most root descents.
        shrink = (
            full_candidates
            / medians["native.idd.w4.max_bin_candidates"]
        )
        assert shrink >= 2.0, (
            f"IDD's largest bin only {shrink:.2f}x smaller than the "
            "full candidate set CD replicates at 4 workers (need >= 2x)"
        )
        assert medians["native.idd.w4.prune_rate"] >= 0.5
        speedup = medians["native.idd.w4.speedup_vs_serial"]
        assert speedup > 1.0, (
            f"fast-np IDD pool at 4 workers is {speedup:.2f}x the "
            "serial fast kernel (need > 1.0x: with the warm pool and "
            "the shared candidate plane the partitioned formulation "
            "must beat serial too, not just bound memory)"
        )


def test_vertical_kernel_speedup(db, serial_baseline):
    """CD vs vertical on the shared plane -> the wall-clock gate.

    Each worker count runs inside the warm-pool context manager: the
    first (cold) mine pays spawn + packing + the one-time bitmap build
    and is recorded separately; the ROUNDS warm mines that follow reuse
    the pool and the per-worker bitmap caches, which is the steady
    state a repeatedly-queried miner actually runs in.  The gate is the
    acceptance criterion of the vertical kernel: at 4 workers the warm
    median must beat the serial fast-kernel wall measured this same
    run.
    """
    serial_wall, serial_frequent = serial_baseline
    medians = {}
    for num_workers in WORKER_COUNTS:
        with NativeCountDistribution(
            MIN_SUPPORT, num_workers, kernel="vertical", max_k=3
        ) as miner:
            start = time.perf_counter()
            result = miner.mine(db)
            cold_wall = time.perf_counter() - start
            assert result.frequent == serial_frequent
            walls = []
            for _ in range(ROUNDS):
                start = time.perf_counter()
                result = miner.mine(db)
                walls.append(time.perf_counter() - start)
                assert miner.last_pool_reused
                assert result.frequent == serial_frequent
            build = max(
                o.bitmap_build_s for o in miner.last_pass_overheads
            )
        wall = statistics.median(walls)
        medians[f"native.vertical.w{num_workers}.wall_s"] = wall
        medians[f"native.vertical.w{num_workers}.cold_wall_s"] = cold_wall
        medians[
            f"native.vertical.w{num_workers}.speedup_vs_serial"
        ] = serial_wall / wall
        print(
            f"\nvertical {num_workers} worker(s): "
            f"cold {cold_wall:.3f}s, warm {wall:.3f}s "
            f"({serial_wall / wall:.2f}x vs serial fast; warm bitmap "
            f"build {build * 1e3:.2f}ms/pass)"
        )
        # Warm passes fetch bitmaps from the per-worker cache instead
        # of rebuilding them — the build column must collapse.
        if not TINY:
            assert build < 0.05

    record_bench_medians(medians, path=BENCH_NATIVE_JSON)

    if not TINY:
        speedup = medians["native.vertical.w4.speedup_vs_serial"]
        assert speedup > 1.0, (
            f"vertical native pool at 4 workers is {speedup:.2f}x the "
            "serial fast kernel (need > 1.0x: the whole point of the "
            "TID-bitmap kernel is to win wall-clock, not just scale)"
        )


def test_mmap_out_of_core(db, serial_baseline, tmp_path):
    """Disk-backed plane under a block budget -> the out-of-core gate.

    Workers map one packed store *file* instead of a ``/dev/shm``
    segment, and the constrained :data:`BLOCK_BUDGET` forces every
    counting pass to stream the store block by block — the exact shape
    of a database larger than RAM.  The warm-pool measurement mirrors
    the data-plane section so the ``native.mmap.*`` keys are directly
    comparable to ``native.shared.*``; the nightly gate is
    ``native.mmap.w4.speedup_vs_serial > 1.0``.
    """
    serial_wall, serial_frequent = serial_baseline
    store = tmp_path / "store"
    store.mkdir()
    medians = {}
    for num_workers in WORKER_COUNTS:
        wall, coord, cold_wall, _attach, frequent = _measure(
            db, "mmap", num_workers,
            store_dir=str(store), block_budget=BLOCK_BUDGET,
        )
        medians[f"native.mmap.w{num_workers}.wall_s"] = wall
        medians[f"native.mmap.w{num_workers}.cold_wall_s"] = cold_wall
        medians[f"native.mmap.w{num_workers}.coord_pass_s"] = coord
        medians[
            f"native.mmap.w{num_workers}.speedup_vs_serial"
        ] = serial_wall / wall
        # Same answer through the page cache as through RAM.
        assert frequent == serial_frequent
        # Clean shutdown unlinked the packed store file.
        assert list(store.glob("*.packed")) == []
        print(
            f"\nmmap {num_workers} worker(s): cold {cold_wall:.3f}s, "
            f"warm {wall:.3f}s ({serial_wall / wall:.2f}x vs serial "
            f"fast; coordinator/pass {coord * 1e3:.1f}ms; "
            f"block budget {BLOCK_BUDGET})"
        )

    record_bench_medians(medians, path=BENCH_NATIVE_JSON)

    if not TINY:
        speedup = medians["native.mmap.w4.speedup_vs_serial"]
        assert speedup > 1.0, (
            f"mmap native pool at 4 workers is {speedup:.2f}x the "
            "serial fast kernel (need > 1.0x: streaming the store "
            "from disk must not surrender the parallel win)"
        )
