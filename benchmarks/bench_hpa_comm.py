"""Section III-E — HPA's communication volume vs IDD's.

The paper argues HPA's per-transaction O((I choose k)) potential-
candidate routing dwarfs IDD's O(I) transaction shipping for k > 2.
"""

from benchmarks._util import run_and_report
from repro.experiments.hpa_comm import run_hpa_comm


def test_hpa_communication_volume(benchmark):
    result = run_and_report(
        benchmark, run_hpa_comm, "hpa_comm", y_format="{:10.3f}"
    )

    # IDD's volume is the same at every pass.
    idd = {result.get("IDD", k) for k in result.x_values}
    assert len(idd) == 1

    # HPA's volume grows combinatorially in k.
    hpa = [result.get("HPA", k) for k in result.x_values]
    assert all(b > 2 * a for a, b in zip(hpa, hpa[1:]))

    # By pass 3 HPA is already far more expensive than IDD.
    assert result.get("HPA", 3) > 10 * result.get("IDD", 3)
