"""Core microbenchmarks (real repeated-round timings) and Table I.

These measure the substrate itself — hash-tree construction, the subset
operation (on both counting kernels), apriori_gen, and a full serial
mining run — and pin the paper's Table I worked example.  The kernel
comparison bench also writes its medians to ``BENCH_core.json`` at the
repo root.
"""

import statistics
import time

import pytest

from benchmarks._util import record_bench_medians
from repro.core.apriori import Apriori
from repro.core.candidates import generate_candidates
from repro.core.hashtree import HashTree
from repro.core.kernels import make_counter
from repro.core.rules import rules_from_result
from repro.data.corpus import supermarket, t15_i6
from repro.data.quest import generate


@pytest.fixture(scope="module")
def db():
    return generate(t15_i6(800, seed=31, num_items=1000))


@pytest.fixture(scope="module")
def pass2_candidates(db):
    result = Apriori(0.02, max_k=1).mine(db)
    return generate_candidates(sorted(result.frequent))


def test_table1_supermarket(benchmark):
    """Table I / Section II worked example, mined end to end."""

    def mine():
        market = supermarket()
        result = Apriori(min_support=0.4).mine(market)
        rules = rules_from_result(result, min_confidence=0.6)
        return result, rules

    result, rules = benchmark(mine)
    # sigma(Diaper, Milk) = 3; sigma(Diaper, Milk, Beer) = 2;
    # {Diaper, Milk} => {Beer} at support 40%, confidence 66%.
    assert result.frequent[(3, 4)] == 3
    assert result.frequent[(0, 3, 4)] == 2
    target = next(
        r for r in rules if r.antecedent == (3, 4) and r.consequent == (0,)
    )
    assert target.support == pytest.approx(0.4)
    assert target.confidence == pytest.approx(2 / 3)


def test_hashtree_build(benchmark, pass2_candidates):
    def build():
        tree = HashTree(2)
        tree.insert_all(pass2_candidates)
        return tree

    tree = benchmark(build)
    assert len(tree) == len(pass2_candidates)


def test_hashtree_subset_operation(benchmark, db, pass2_candidates):
    tree = HashTree(2)
    tree.insert_all(pass2_candidates)
    transactions = db.transactions[:100]

    def count():
        tree.count_database(transactions)

    benchmark(count)
    assert tree.stats.transactions_processed >= len(transactions)


def test_fast_kernel_subset_operation(benchmark, db, pass2_candidates):
    """Same workload as the reference subset-operation bench, fast kernel."""
    counter = make_counter(2, pass2_candidates, kernel="fast")
    transactions = db.transactions[:100]

    def count():
        counter.count_database(transactions)

    benchmark(count)
    assert sum(counter.counts().values()) > 0


def test_kernel_comparison_subset_operation(db, pass2_candidates):
    """Reference vs fast kernel on the pass-2 subset-operation workload.

    Times both kernels head to head, records the medians (plus the
    speedup) to ``BENCH_core.json``, and enforces the two contracts the
    fast kernel ships under: >= 2x faster here, byte-identical counts.
    """
    transactions = db.transactions[:100]
    rounds = 5

    def median_seconds(counter):
        samples = []
        for _ in range(rounds):
            counter.reset_counts()
            start = time.perf_counter()
            counter.count_database(transactions)
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    reference = make_counter(2, pass2_candidates, kernel="reference")
    fast = make_counter(2, pass2_candidates, kernel="fast")
    reference_median = median_seconds(reference)
    fast_median = median_seconds(fast)
    speedup = reference_median / fast_median

    record_bench_medians(
        {
            "subset_pass2.reference": reference_median,
            "subset_pass2.fast": fast_median,
            "subset_pass2.speedup": speedup,
        }
    )
    print(
        f"\nsubset operation (pass 2, |C2|={len(pass2_candidates)}): "
        f"reference {reference_median * 1e3:.2f} ms, "
        f"fast {fast_median * 1e3:.2f} ms, {speedup:.2f}x"
    )

    assert reference.counts() == fast.counts()
    assert speedup >= 2.0, (
        f"fast kernel only {speedup:.2f}x over reference (need >= 2x)"
    )


def test_apriori_gen(benchmark, db):
    result = Apriori(0.02, max_k=2).mine(db)
    frequent_2 = sorted(result.itemsets_of_size(2))

    candidates = benchmark(generate_candidates, frequent_2)
    assert all(len(c) == 3 for c in candidates)


def test_serial_apriori_full_run(benchmark, db):
    result = benchmark.pedantic(
        lambda: Apriori(0.01).mine(db), rounds=1, iterations=1
    )
    assert result.frequent
