"""Section III-C — IDD's candidate-count vs computation-time imbalance.

Paper: "1.3% load imbalance in the number of candidate sets ...
translated into 5.4% load imbalance in the actual computation time"
(P=4), and 2.3% -> 9.4% at P=8.  Asserted shape: both imbalances grow
with P and the time imbalance exceeds the candidate imbalance —
candidate counts are a good but imperfect work proxy.
"""

from benchmarks._util import run_and_report
from repro.experiments.imbalance import run_imbalance


def test_imbalance_correlation(benchmark):
    result = run_and_report(
        benchmark, run_imbalance, "imbalance", y_format="{:10.4%}"
    )

    processors = result.x_values
    # Time imbalance dominates candidate imbalance at every P.
    for p in processors:
        assert result.get("compute_time", p) >= result.get("candidates", p)

    # Both imbalances worsen toward the largest configuration.
    assert result.get("candidates", processors[-1]) > result.get(
        "candidates", processors[0]
    )
    assert result.get("compute_time", processors[-1]) > result.get(
        "compute_time", processors[0]
    )
