#!/usr/bin/env python
"""Quickstart: mine the paper's Table I supermarket example.

Runs serial Apriori on the five supermarket transactions from the
paper's worked example (Section II), prints the frequent item-sets with
their supports, and derives association rules — including the paper's
{Diaper, Milk} => {Beer} rule with support 40% and confidence 66%.

Run:  python examples/quickstart.py
"""

from repro import Apriori, generate_rules
from repro.data import SUPERMARKET_NAMES, supermarket


def names(itemset):
    return "{" + ", ".join(SUPERMARKET_NAMES[i] for i in itemset) + "}"


def main() -> None:
    db = supermarket()
    print(f"Transactions ({len(db)}):")
    for tid, transaction in enumerate(db, start=1):
        print(f"  {tid}: {names(transaction)}")

    result = Apriori(min_support=0.4).mine(db)
    print(f"\nFrequent item-sets at 40% minimum support "
          f"(count >= {result.min_count}):")
    for itemset, count in sorted(
        result.frequent.items(), key=lambda kv: (len(kv[0]), kv[0])
    ):
        support = count / len(db)
        print(f"  {names(itemset):35s} count={count}  support={support:.0%}")

    rules = generate_rules(result.frequent, len(db), min_confidence=0.6)
    print(f"\nRules at 60% minimum confidence ({len(rules)}):")
    for rule in rules:
        print(
            f"  {names(rule.antecedent):24s} => {names(rule.consequent):12s}"
            f" support={rule.support:.0%}  confidence={rule.confidence:.0%}"
        )

    # The paper's example rule must be among them.
    target = next(
        r for r in rules if r.antecedent == (3, 4) and r.consequent == (0,)
    )
    print(
        f"\nPaper's example: {names(target.antecedent)} => "
        f"{names(target.consequent)} has support "
        f"{target.support:.0%} and confidence {target.confidence:.0%} "
        "(Section II says 40% and 66%)."
    )


if __name__ == "__main__":
    main()
