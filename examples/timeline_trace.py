#!/usr/bin/env python
"""Visualize where each algorithm's time goes with a timeline trace.

Attaches a :class:`repro.cluster.TimelineTrace` to one run of each
formulation and renders per-processor Gantt charts.  The structural
differences the paper argues in prose become visible directly:

* CD — wide tree-build bands on every processor (the un-parallelized
  step) and a reduction tail;
* DD — communication stripes between every processing round, plus
  blocking waits;
* IDD — dense subset work with idle gaps on under-loaded processors
  (the bin-packing residual);
* HD — per-pass shape switching as the grid changes.

Run:  python examples/timeline_trace.py
"""

from repro.cluster import TimelineTrace
from repro.data import generate, t15_i6
from repro.parallel import make_miner

NUM_PROCESSORS = 4
MIN_SUPPORT = 0.02


def main() -> None:
    db = generate(t15_i6(400, seed=19, num_items=1000))
    print(
        f"Workload: {len(db)} transactions, {MIN_SUPPORT:.0%} support, "
        f"P={NUM_PROCESSORS} (simulated Cray T3E)\n"
    )
    reference = None
    for algorithm in ("CD", "DD", "IDD", "HD"):
        trace = TimelineTrace()
        kwargs = {"switch_threshold": 5000} if algorithm == "HD" else {}
        miner = make_miner(
            algorithm, MIN_SUPPORT, NUM_PROCESSORS, trace=trace, **kwargs
        )
        result = miner.mine(db)
        if reference is None:
            reference = result.frequent
        assert result.frequent == reference

        print(f"=== {algorithm} "
              f"(response time {result.total_time:.4f}s simulated) ===")
        print(trace.render_gantt(NUM_PROCESSORS, width=68))
        busy = ", ".join(
            f"P{pid}: {trace.busy_fraction(pid):.0%}"
            for pid in range(NUM_PROCESSORS)
        )
        print(f"busy fractions: {busy}\n")


if __name__ == "__main__":
    main()
