#!/usr/bin/env python
"""Memory pressure: CD's multiple database scans vs HD's aggregate memory.

The paper's Figures 12 and 15 story: when the candidate hash tree
outgrows one processor's memory, CD must partition the tree and re-scan
the (disk-resident) database once per partition, while IDD and HD
spread the candidates across the aggregate cluster memory and keep a
single scan.  This example runs the same low-support workload on a
simulated IBM SP2 with a bounded per-processor tree capacity and
charged disk I/O, and shows where CD's time goes.

Run:  python examples/memory_pressure.py
"""

from repro.cluster.machine import IBM_SP2
from repro.data import generate, t15_i6
from repro.parallel import mine_parallel

NUM_PROCESSORS = 8
MIN_SUPPORT = 0.006
MEMORY_CANDIDATES = 20_000  # hash-tree capacity per processor


def main() -> None:
    db = generate(t15_i6(1500, seed=12, num_items=1000))
    machine = IBM_SP2.with_memory(MEMORY_CANDIDATES)
    print(
        f"Workload: {len(db)} transactions at {MIN_SUPPORT:.1%} support on "
        f"a simulated {machine.name} with {NUM_PROCESSORS} processors,\n"
        f"per-processor hash-tree capacity {MEMORY_CANDIDATES} candidates, "
        "disk-resident data (I/O charged).\n"
    )

    runs = {}
    for algorithm in ("CD", "IDD", "HD"):
        kwargs = {"switch_threshold": 5000} if algorithm == "HD" else {}
        runs[algorithm] = mine_parallel(
            algorithm,
            db,
            MIN_SUPPORT,
            NUM_PROCESSORS,
            machine=machine,
            charge_io=True,
            **kwargs,
        )

    reference = runs["CD"].frequent
    assert all(r.frequent == reference for r in runs.values())

    print("Database scans forced by the memory limit (per pass):")
    print(f"{'pass':>5s} {'candidates':>11s} "
          + " ".join(f"{a + ' scans':>10s}" for a in runs))
    for index, cd_pass in enumerate(runs["CD"].passes):
        if cd_pass.k < 2:
            continue
        scans = [str(r.passes[index].tree_partitions) for r in runs.values()]
        print(
            f"{cd_pass.k:>5d} {cd_pass.num_candidates:>11d} "
            + " ".join(f"{s:>10s}" for s in scans)
        )

    print("\nResponse time and where it goes (simulated seconds):")
    categories = ("subset", "tree_build", "io", "reduce", "comm", "idle")
    header = (
        f"{'algorithm':>10s} | {'total':>8s} | "
        + " | ".join(f"{c:>9s}" for c in categories)
    )
    print(header)
    print("-" * len(header))
    for algorithm, run in runs.items():
        cells = [f"{run.breakdown.get(c, 0.0):9.4f}" for c in categories]
        print(
            f"{algorithm:>10s} | {run.total_time:8.4f} | "
            + " | ".join(cells)
        )

    cd, hd = runs["CD"].total_time, runs["HD"].total_time
    print(
        f"\nCD pays {cd / hd:.1f}x HD's response time here: every extra "
        "tree partition costs CD a full rebuild, an extra database scan "
        "(I/O), and another count reduction, while HD's grid places "
        "each candidate on exactly one processor group."
    )


if __name__ == "__main__":
    main()
