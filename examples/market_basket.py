#!/usr/bin/env python
"""Market-basket analysis on a synthetic retail workload.

The scenario the paper's introduction motivates: a retailer's
transaction log is mined for item affinities.  This example

1. generates a Quest-style T15.I6 database (the paper's workload family),
2. persists it in the standard ``.dat`` market-basket format and reads
   it back (any FIMI-format dataset can be substituted here),
3. mines frequent item-sets serially, reporting the per-pass candidate
   counts and hash-tree shapes,
4. derives the strongest association rules.

Run:  python examples/market_basket.py
"""

import tempfile
from pathlib import Path

from repro import Apriori, generate_rules
from repro.data import generate, read_dat, t15_i6, write_dat

MIN_SUPPORT = 0.015
MIN_CONFIDENCE = 0.8


def main() -> None:
    config = t15_i6(num_transactions=2000, seed=17, num_items=1000)
    db = generate(config)
    stats = db.stats()
    print(
        f"Generated {stats.num_transactions} transactions, "
        f"{stats.num_items} distinct items, average basket size "
        f"{stats.avg_length:.1f} (T15.I6 family)."
    )

    # Round-trip through the on-disk market-basket format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "retail.dat"
        write_dat(db, path)
        db = read_dat(path)
        print(f"Round-tripped through {path.name}: {len(db)} transactions.")

    result = Apriori(MIN_SUPPORT).mine(db)
    print(
        f"\nMined {len(result.frequent)} frequent item-sets at "
        f"{MIN_SUPPORT:.1%} support (count >= {result.min_count}):"
    )
    print(f"{'pass':>5s} {'candidates':>11s} {'frequent':>9s} "
          f"{'tree leaves':>12s} {'leaf visits/tx':>15s}")
    for trace in result.passes:
        leaves = trace.tree_shape.num_leaves if trace.tree_shape else "-"
        visits = (
            f"{trace.tree_stats.avg_leaf_visits_per_transaction:.1f}"
            if trace.tree_stats
            else "-"
        )
        print(
            f"{trace.k:>5d} {trace.num_candidates:>11d} "
            f"{trace.num_frequent:>9d} {str(leaves):>12s} {visits:>15s}"
        )

    rules = generate_rules(result.frequent, len(db), MIN_CONFIDENCE)
    print(f"\nTop rules at {MIN_CONFIDENCE:.0%} confidence "
          f"({len(rules)} total):")
    for rule in rules[:10]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
