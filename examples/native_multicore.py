#!/usr/bin/env python
"""Real multi-process mining with the native Count Distribution backend.

The simulated cluster answers "how would CD/DD/IDD/HD behave on 128
processors"; this example shows the complementary capability — fanning
the counting work of CD out over actual OS processes.  CD's
shared-nothing structure survives the GIL cleanly, and the result is
bit-identical to serial Apriori.

Each worker count runs on both data planes: ``pickle`` serializes
candidates and count vectors over the worker pipes every pass, while
the default ``shared`` plane keeps the packed transaction store,
candidate broadcast, and count vectors in shared memory — watch the
coordinator-overhead column, which is the cost the zero-copy plane
exists to remove.

What you should expect depends on the machine: on a multi-core box the
counting passes speed up toward the core count (minus CD's replicated
tree builds — its published weakness); on a single-core box the workers
time-slice one CPU and the process overhead makes the run *slower*,
which this script reports just as honestly.

Run:  python examples/native_multicore.py
"""

import os
import time

from repro import Apriori
from repro.data import generate, t15_i6
from repro.parallel.native import NativeCountDistribution

MIN_SUPPORT = 0.015


def main() -> None:
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    db = generate(t15_i6(num_transactions=3000, seed=29, num_items=1000))
    print(
        f"Workload: {len(db)} transactions at {MIN_SUPPORT:.1%} support; "
        f"{cores} CPU core(s) available.\n"
    )

    start = time.perf_counter()
    serial = Apriori(MIN_SUPPORT).mine(db)
    serial_seconds = time.perf_counter() - start
    print(f"serial Apriori: {serial_seconds:6.2f}s  "
          f"({len(serial.frequent)} frequent item-sets)")

    for workers in (2, 4):
        for plane in ("pickle", "shared"):
            miner = NativeCountDistribution(
                MIN_SUPPORT, workers, data_plane=plane
            )
            start = time.perf_counter()
            native = miner.mine(db)
            seconds = time.perf_counter() - start
            assert native.frequent == serial.frequent
            coordinator_ms = 1e3 * sum(
                o.coordinator_s for o in miner.last_pass_overheads
            )
            print(
                f"native CD x{workers} ({plane:>6} plane): {seconds:6.2f}s  "
                f"(speedup {serial_seconds / seconds:4.2f}x, coordinator "
                f"overhead {coordinator_ms:6.1f}ms, identical output)"
            )

    if cores and cores < 2:
        print(
            "\nThis machine exposes a single core, so the workers "
            "time-slice it and the process overhead shows up as a "
            "slowdown — run on a multi-core machine to see CD's "
            "counting passes scale."
        )
    else:
        print(
            "\nSpeedup tops out below the worker count because every "
            "worker rebuilds the full candidate hash tree per pass — "
            "exactly the CD bottleneck the paper's Figure 13 measures."
        )


if __name__ == "__main__":
    main()
