#!/usr/bin/env python
"""Scaleup study: all four parallel formulations on the simulated T3E.

A miniature of the paper's Figure 10 experiment: fixed transactions per
processor, growing processor counts, all of CD / DD / DD+comm / IDD /
HD.  Prints the response times, the runtime decomposition of each
algorithm at the largest configuration, and verifies that every
formulation produced exactly the serial Apriori result.

Run:  python examples/scaleup_study.py
"""

from repro.core.apriori import Apriori
from repro.data import generate, t15_i6
from repro.parallel import mine_parallel

TX_PER_PROCESSOR = 100
MIN_SUPPORT = 0.01
PROCESSOR_COUNTS = (4, 8, 16)
ALGORITHMS = ("CD", "DD", "DD+comm", "IDD", "HD")


def main() -> None:
    print(
        f"Scaleup on the simulated Cray T3E: {TX_PER_PROCESSOR} "
        f"transactions/processor, {MIN_SUPPORT:.1%} support\n"
    )
    header = f"{'P':>4s} | " + " | ".join(f"{a:>10s}" for a in ALGORITHMS)
    print(header)
    print("-" * len(header))

    last_runs = {}
    for num_processors in PROCESSOR_COUNTS:
        db = generate(
            t15_i6(TX_PER_PROCESSOR * num_processors, seed=7, num_items=1000)
        )
        serial = Apriori(MIN_SUPPORT).mine(db)
        cells = []
        for algorithm in ALGORITHMS:
            kwargs = {"switch_threshold": 10_000} if algorithm == "HD" else {}
            run = mine_parallel(
                algorithm, db, MIN_SUPPORT, num_processors, **kwargs
            )
            assert run.frequent == serial.frequent, algorithm
            cells.append(f"{run.total_time:10.4f}")
            last_runs[algorithm] = run
        print(f"{num_processors:>4d} | " + " | ".join(cells))

    print(
        f"\nAll runs matched serial Apriori exactly "
        f"({len(serial.frequent)} frequent item-sets).\n"
    )

    print(f"Runtime decomposition at P={PROCESSOR_COUNTS[-1]} "
          "(simulated seconds, mean per processor):")
    categories = ("subset", "tree_build", "candgen", "comm", "reduce", "idle")
    header = f"{'algorithm':>10s} | " + " | ".join(
        f"{c:>10s}" for c in categories
    )
    print(header)
    print("-" * len(header))
    for algorithm, run in last_runs.items():
        cells = [f"{run.breakdown.get(c, 0.0):10.4f}" for c in categories]
        print(f"{algorithm:>10s} | " + " | ".join(cells))

    print(
        "\nReading the table: DD pays for contended communication and "
        "redundant traversals; IDD trades them for some idle time (load "
        "imbalance); HD keeps every overhead small by sizing its "
        "processor grid to the candidate count."
    )


if __name__ == "__main__":
    main()
