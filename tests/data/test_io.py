"""Tests for .dat file I/O."""

import pytest

from repro.core.transaction import TransactionDB
from repro.data.io import (
    read_dat,
    read_partitioned,
    write_dat,
    write_partitioned,
)


@pytest.fixture
def sample_db():
    return TransactionDB([(1, 2, 3), (4,), (2, 5, 9)])


class TestDatRoundTrip:
    def test_round_trip(self, tmp_path, sample_db):
        path = tmp_path / "db.dat"
        write_dat(sample_db, path)
        assert read_dat(path) == sample_db

    def test_file_format(self, tmp_path, sample_db):
        path = tmp_path / "db.dat"
        write_dat(sample_db, path)
        assert path.read_text() == "1 2 3\n4\n2 5 9\n"

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "db.dat"
        path.write_text("1 2\n\n3 4\n   \n")
        assert len(read_dat(path)) == 2

    def test_read_canonicalizes_messy_rows(self, tmp_path):
        path = tmp_path / "db.dat"
        path.write_text("3 1 2 1\n")
        assert read_dat(path)[0] == (1, 2, 3)

    def test_empty_db(self, tmp_path):
        path = tmp_path / "empty.dat"
        write_dat(TransactionDB([]), path)
        assert len(read_dat(path)) == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_dat(tmp_path / "nope.dat")


class TestPartitionedIO:
    def test_round_trip(self, tmp_path, sample_db):
        paths = write_partitioned(sample_db, tmp_path, 2)
        assert len(paths) == 2
        assert read_partitioned(tmp_path) == sample_db

    def test_file_naming(self, tmp_path, sample_db):
        paths = write_partitioned(sample_db, tmp_path, 3, stem="node")
        assert [p.name for p in paths] == [
            "node-0000.dat",
            "node-0001.dat",
            "node-0002.dat",
        ]

    def test_creates_directory(self, tmp_path, sample_db):
        target = tmp_path / "deep" / "dir"
        write_partitioned(sample_db, target, 2)
        assert read_partitioned(target) == sample_db

    def test_read_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="part"):
            read_partitioned(tmp_path)


class TestGzipSupport:
    def test_round_trip_gz(self, tmp_path, sample_db):
        path = tmp_path / "db.dat.gz"
        write_dat(sample_db, path)
        assert read_dat(path) == sample_db

    def test_gz_file_is_compressed(self, tmp_path, sample_db):
        import gzip

        path = tmp_path / "db.dat.gz"
        write_dat(sample_db, path)
        with gzip.open(path, "rt") as handle:
            assert handle.readline().strip() == "1 2 3"

    def test_plain_and_gz_agree(self, tmp_path, sample_db):
        plain = tmp_path / "db.dat"
        compressed = tmp_path / "db.dat.gz"
        write_dat(sample_db, plain)
        write_dat(sample_db, compressed)
        assert read_dat(plain) == read_dat(compressed)
