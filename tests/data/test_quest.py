"""Tests for the Quest-style synthetic generator."""

import pytest

from repro.data.quest import QuestConfig, QuestGenerator, generate


class TestQuestConfig:
    def test_rejects_negative_transactions(self):
        with pytest.raises(ValueError):
            QuestConfig(num_transactions=-1)

    def test_rejects_bad_items(self):
        with pytest.raises(ValueError):
            QuestConfig(num_transactions=1, num_items=0)

    def test_rejects_bad_patterns(self):
        with pytest.raises(ValueError):
            QuestConfig(num_transactions=1, num_patterns=0)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            QuestConfig(num_transactions=1, avg_transaction_length=0)
        with pytest.raises(ValueError):
            QuestConfig(num_transactions=1, avg_pattern_length=-2)

    def test_with_transactions(self):
        config = QuestConfig(num_transactions=10, seed=3)
        bigger = config.with_transactions(50)
        assert bigger.num_transactions == 50
        assert bigger.seed == config.seed

    def test_with_seed(self):
        config = QuestConfig(num_transactions=10, seed=3)
        assert config.with_seed(9).seed == 9


class TestGeneration:
    def test_deterministic_under_seed(self):
        config = QuestConfig(num_transactions=100, num_items=50, seed=11)
        assert generate(config) == generate(config)

    def test_different_seeds_differ(self):
        base = QuestConfig(num_transactions=100, num_items=50, seed=1)
        assert generate(base) != generate(base.with_seed(2))

    def test_emits_requested_count(self):
        config = QuestConfig(num_transactions=37, num_items=50, seed=0)
        assert len(generate(config)) == 37

    def test_zero_transactions(self):
        config = QuestConfig(num_transactions=0, seed=0)
        assert len(generate(config)) == 0

    def test_transactions_are_canonical_and_in_universe(self):
        config = QuestConfig(num_transactions=200, num_items=60, seed=5)
        db = generate(config)
        for transaction in db:
            assert len(transaction) >= 1
            assert list(transaction) == sorted(set(transaction))
            assert transaction[0] >= 0
            assert transaction[-1] < config.num_items

    def test_average_length_tracks_parameter(self):
        config = QuestConfig(
            num_transactions=800,
            avg_transaction_length=10.0,
            num_items=500,
            num_patterns=100,
            seed=4,
        )
        stats = generate(config).stats()
        # The corruption/overflow mechanics bias the mean a little; it
        # must still sit in the right ballpark.
        assert 5.0 < stats.avg_length < 16.0

    def test_longer_config_gives_longer_transactions(self):
        short = QuestConfig(
            num_transactions=400, avg_transaction_length=5.0, seed=6
        )
        long = QuestConfig(
            num_transactions=400, avg_transaction_length=20.0, seed=6
        )
        assert (
            generate(short).stats().avg_length
            < generate(long).stats().avg_length
        )

    def test_item_usage_is_skewed(self):
        """Pattern weighting must make some items far more common."""
        from collections import Counter

        config = QuestConfig(
            num_transactions=500, num_items=200, num_patterns=40, seed=9
        )
        counts = Counter()
        for transaction in generate(config):
            counts.update(transaction)
        frequencies = sorted(counts.values(), reverse=True)
        top_decile = sum(frequencies[: max(1, len(frequencies) // 10)])
        assert top_decile > 0.2 * sum(frequencies)

    def test_generator_reuse_continues_stream(self):
        """A generator's stream differs from a fresh one (stateful rng)."""
        config = QuestConfig(num_transactions=50, num_items=40, seed=2)
        gen = QuestGenerator(config)
        first = gen.generate()
        second = gen.generate()
        assert first != second
