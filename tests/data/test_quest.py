"""Tests for the Quest-style synthetic generator."""

import pytest

from repro.core.mmapdb import (
    MmapPackedDB,
    PackedFileWriter,
    write_packed_file,
)
from repro.data.quest import (
    QuestConfig,
    QuestGenerator,
    generate,
    generate_to_file,
)


class TestQuestConfig:
    def test_rejects_negative_transactions(self):
        with pytest.raises(ValueError):
            QuestConfig(num_transactions=-1)

    def test_rejects_bad_items(self):
        with pytest.raises(ValueError):
            QuestConfig(num_transactions=1, num_items=0)

    def test_rejects_bad_patterns(self):
        with pytest.raises(ValueError):
            QuestConfig(num_transactions=1, num_patterns=0)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            QuestConfig(num_transactions=1, avg_transaction_length=0)
        with pytest.raises(ValueError):
            QuestConfig(num_transactions=1, avg_pattern_length=-2)

    def test_with_transactions(self):
        config = QuestConfig(num_transactions=10, seed=3)
        bigger = config.with_transactions(50)
        assert bigger.num_transactions == 50
        assert bigger.seed == config.seed

    def test_with_seed(self):
        config = QuestConfig(num_transactions=10, seed=3)
        assert config.with_seed(9).seed == 9


class TestGeneration:
    def test_deterministic_under_seed(self):
        config = QuestConfig(num_transactions=100, num_items=50, seed=11)
        assert generate(config) == generate(config)

    def test_different_seeds_differ(self):
        base = QuestConfig(num_transactions=100, num_items=50, seed=1)
        assert generate(base) != generate(base.with_seed(2))

    def test_emits_requested_count(self):
        config = QuestConfig(num_transactions=37, num_items=50, seed=0)
        assert len(generate(config)) == 37

    def test_zero_transactions(self):
        config = QuestConfig(num_transactions=0, seed=0)
        assert len(generate(config)) == 0

    def test_transactions_are_canonical_and_in_universe(self):
        config = QuestConfig(num_transactions=200, num_items=60, seed=5)
        db = generate(config)
        for transaction in db:
            assert len(transaction) >= 1
            assert list(transaction) == sorted(set(transaction))
            assert transaction[0] >= 0
            assert transaction[-1] < config.num_items

    def test_average_length_tracks_parameter(self):
        config = QuestConfig(
            num_transactions=800,
            avg_transaction_length=10.0,
            num_items=500,
            num_patterns=100,
            seed=4,
        )
        stats = generate(config).stats()
        # The corruption/overflow mechanics bias the mean a little; it
        # must still sit in the right ballpark.
        assert 5.0 < stats.avg_length < 16.0

    def test_longer_config_gives_longer_transactions(self):
        short = QuestConfig(
            num_transactions=400, avg_transaction_length=5.0, seed=6
        )
        long = QuestConfig(
            num_transactions=400, avg_transaction_length=20.0, seed=6
        )
        assert (
            generate(short).stats().avg_length
            < generate(long).stats().avg_length
        )

    def test_item_usage_is_skewed(self):
        """Pattern weighting must make some items far more common."""
        from collections import Counter

        config = QuestConfig(
            num_transactions=500, num_items=200, num_patterns=40, seed=9
        )
        counts = Counter()
        for transaction in generate(config):
            counts.update(transaction)
        frequencies = sorted(counts.values(), reverse=True)
        top_decile = sum(frequencies[: max(1, len(frequencies) // 10)])
        assert top_decile > 0.2 * sum(frequencies)

    def test_generator_reuse_continues_stream(self):
        """A generator's stream differs from a fresh one (stateful rng)."""
        config = QuestConfig(num_transactions=50, num_items=40, seed=2)
        gen = QuestGenerator(config)
        first = gen.generate()
        second = gen.generate()
        assert first != second


class TestStreamingGeneration:
    """`iter_transactions` / `generate_to_file` — the generate-to-disk
    spine must replay `generate()` exactly, byte for byte."""

    CONFIG = dict(num_transactions=300, num_items=50, seed=9)

    def test_iter_matches_generate(self):
        streamed = list(
            QuestGenerator(QuestConfig(**self.CONFIG)).iter_transactions()
        )
        materialized = generate(QuestConfig(**self.CONFIG))
        assert streamed == list(materialized)

    def test_file_bytes_identical_to_in_memory_packing(self, tmp_path):
        """Same seed => generate_to_file == write_packed_file(generate())."""
        config = QuestConfig(**self.CONFIG)
        streamed = generate_to_file(config, tmp_path / "streamed.packed")
        in_memory = write_packed_file(
            generate(QuestConfig(**self.CONFIG)).to_packed(),
            tmp_path / "materialized.packed",
        )
        assert streamed.read_bytes() == in_memory.read_bytes()

    @pytest.mark.parametrize("flush_items", [1, 7, 64, 1 << 16])
    def test_byte_identity_across_flush_chunk_sizes(
        self, tmp_path, flush_items
    ):
        """The writer's spill cadence must never leak into the bytes."""
        config = QuestConfig(**self.CONFIG)
        with PackedFileWriter(
            tmp_path / "chunked.packed", flush_items=flush_items
        ) as writer:
            writer.extend(
                QuestGenerator(config).iter_transactions()
            )
        reference = write_packed_file(
            generate(QuestConfig(**self.CONFIG)).to_packed(),
            tmp_path / "reference.packed",
        )
        assert writer.path.read_bytes() == reference.read_bytes()

    def test_streamed_file_attaches_and_round_trips(self, tmp_path):
        config = QuestConfig(**self.CONFIG)
        path = generate_to_file(config, tmp_path / "db.packed")
        with MmapPackedDB.attach(path) as db:
            assert db.unpack() == list(generate(QuestConfig(**self.CONFIG)))

    def test_progress_callback_cadence(self, tmp_path):
        calls = []
        generate_to_file(
            QuestConfig(**self.CONFIG),
            tmp_path / "db.packed",
            progress=lambda written, total: calls.append((written, total)),
            progress_every=100,
        )
        assert calls == [(100, 300), (200, 300), (300, 300), (300, 300)]
