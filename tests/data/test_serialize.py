"""Tests for mining-result JSON serialization."""

import json

import pytest

from repro.core.apriori import Apriori
from repro.data.serialize import load_frequent, result_to_dict, save_result
from repro.parallel.runner import mine_parallel


class TestSerialResult:
    def test_round_trip(self, tmp_path, tiny_db):
        result = Apriori(0.3).mine(tiny_db)
        path = tmp_path / "run.json"
        save_result(result, path)
        assert load_frequent(path) == result.frequent

    def test_metadata(self, tiny_db):
        result = Apriori(0.3).mine(tiny_db)
        payload = result_to_dict(result)
        assert payload["algorithm"] == "serial"
        assert payload["min_count"] == result.min_count
        assert payload["num_transactions"] == len(tiny_db)
        assert len(payload["passes"]) == len(result.passes)


class TestParallelResult:
    def test_round_trip(self, tmp_path, tiny_db):
        result = mine_parallel("HD", tiny_db, 0.3, 2, switch_threshold=5)
        path = tmp_path / "run.json"
        save_result(result, path)
        assert load_frequent(path) == result.frequent

    def test_metadata(self, tiny_db):
        result = mine_parallel("IDD", tiny_db, 0.3, 3)
        payload = result_to_dict(result)
        assert payload["algorithm"] == "IDD"
        assert payload["num_processors"] == 3
        assert payload["total_time"] == result.total_time
        assert payload["passes"][0]["grid"] == [1, 3]

    def test_file_is_valid_json(self, tmp_path, tiny_db):
        result = mine_parallel("CD", tiny_db, 0.3, 2)
        path = tmp_path / "run.json"
        save_result(result, path)
        with path.open() as handle:
            payload = json.load(handle)
        assert payload["format"] == "repro.mining-result.v1"


class TestLoadErrors:
    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="not a repro"):
            load_frequent(path)

    def test_rejects_corrupt_table(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro.mining-result.v1",
                    "itemsets": [[1], [2]],
                    "counts": [3],
                }
            )
        )
        with pytest.raises(ValueError, match="corrupt"):
            load_frequent(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_frequent(tmp_path / "missing.json")
