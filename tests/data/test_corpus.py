"""Tests for the named datasets."""

from repro.data.corpus import (
    SUPERMARKET_ITEMS,
    SUPERMARKET_NAMES,
    supermarket,
    t5_i2,
    t15_i6,
)


class TestSupermarket:
    def test_five_transactions(self):
        db = supermarket()
        assert len(db) == 5

    def test_matches_table1(self):
        """Pin the exact rows of the paper's Table I."""
        db = supermarket()
        rows = [
            {"Bread", "Coke", "Milk"},
            {"Beer", "Bread"},
            {"Beer", "Coke", "Diaper", "Milk"},
            {"Beer", "Bread", "Diaper", "Milk"},
            {"Coke", "Diaper", "Milk"},
        ]
        for transaction, names in zip(db, rows):
            assert {SUPERMARKET_NAMES[i] for i in transaction} == names

    def test_item_mapping_roundtrip(self):
        for name, item in SUPERMARKET_ITEMS.items():
            assert SUPERMARKET_NAMES[item] == name

    def test_universe_is_five_items(self):
        assert supermarket().item_universe() == (0, 1, 2, 3, 4)


class TestSyntheticConfigs:
    def test_t15_i6_parameters(self):
        config = t15_i6(500, seed=3)
        assert config.num_transactions == 500
        assert config.avg_transaction_length == 15.0
        assert config.avg_pattern_length == 6.0
        assert config.seed == 3

    def test_t15_i6_custom_universe(self):
        config = t15_i6(10, num_items=250)
        assert config.num_items == 250
        assert config.num_patterns >= 20

    def test_t5_i2_is_smaller(self):
        small = t5_i2(100)
        big = t15_i6(100)
        assert small.avg_transaction_length < big.avg_transaction_length
        assert small.avg_pattern_length < big.avg_pattern_length


class TestAdditionalFamilies:
    def test_t10_i4_parameters(self):
        from repro.data.corpus import t10_i4

        config = t10_i4(100, seed=1)
        assert config.avg_transaction_length == 10.0
        assert config.avg_pattern_length == 4.0

    def test_t20_i6_parameters(self):
        from repro.data.corpus import t20_i6

        config = t20_i6(100, seed=1)
        assert config.avg_transaction_length == 20.0
        assert config.avg_pattern_length == 6.0

    def test_families_order_by_basket_size(self):
        from repro.data.corpus import t10_i4, t15_i6, t20_i6
        from repro.data.quest import generate

        lengths = [
            generate(family(150, seed=3)).stats().avg_length
            for family in (t10_i4, t15_i6, t20_i6)
        ]
        assert lengths == sorted(lengths)
