"""Tests for interconnect topology bounds."""

import pytest

from repro.cluster.topology import (
    ALL_TOPOLOGIES,
    FULLY_CONNECTED,
    HYPERCUBE,
    MESH_2D,
    RING,
    TORUS_3D,
)


class TestBisectionWidths:
    def test_ring(self):
        assert RING.bisection_width(64) == 2.0

    def test_hypercube(self):
        assert HYPERCUBE.bisection_width(64) == 32.0

    def test_mesh(self):
        assert MESH_2D.bisection_width(64) == pytest.approx(8.0)

    def test_torus3d(self):
        assert TORUS_3D.bisection_width(64) == pytest.approx(32.0)

    def test_minimum_one(self):
        assert MESH_2D.bisection_width(1) == 1.0

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            RING.bisection_width(0)


class TestContentionFactors:
    def test_single_processor_free(self):
        for topology in ALL_TOPOLOGIES:
            assert topology.contention_factor(1) == 1.0

    def test_ring_worst(self):
        for p in (8, 32, 128):
            factors = [t.contention_factor(p) for t in ALL_TOPOLOGIES]
            assert max(factors) == RING.contention_factor(p)

    def test_fully_connected_uncontended(self):
        for p in (4, 64, 256):
            assert FULLY_CONNECTED.contention_factor(p) == 1.0

    def test_denser_never_worse(self):
        """Topologies are declared sparsest-first; factors must be
        non-increasing along the declaration order."""
        for p in (8, 64, 512):
            factors = [t.contention_factor(p) for t in ALL_TOPOLOGIES]
            assert factors == sorted(factors, reverse=True)

    def test_ring_factor_grows_linearly(self):
        assert RING.contention_factor(64) == pytest.approx(16.0)
        assert RING.contention_factor(128) == pytest.approx(32.0)

    def test_floor_at_one(self):
        assert TORUS_3D.contention_factor(4) >= 1.0
