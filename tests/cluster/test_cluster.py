"""Tests for the virtual cluster's clocks, accounting and collectives."""

import pytest

from repro.cluster.cluster import VirtualCluster
from repro.cluster.machine import MachineSpec


def make_spec(**overrides):
    base = dict(
        name="unit",
        t_startup=1.0,
        t_byte=0.5,
        t_travers=0.0,
        t_check=0.0,
        t_leaf_visit=0.0,
        t_item=0.0,
        t_insert=0.0,
        t_candgen=0.0,
        t_reduce_op=2.0,
        contention_per_processor=1.0,
        async_overlap=True,
    )
    base.update(overrides)
    return MachineSpec(**base)


class TestClocks:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            VirtualCluster(0, make_spec())

    def test_advance_and_clock(self):
        cluster = VirtualCluster(2, make_spec())
        cluster.advance(0, 5.0, "subset")
        assert cluster.clock(0) == 5.0
        assert cluster.clock(1) == 0.0
        assert cluster.elapsed() == 5.0

    def test_advance_rejects_negative(self):
        cluster = VirtualCluster(1, make_spec())
        with pytest.raises(ValueError):
            cluster.advance(0, -1.0, "subset")

    def test_bad_pid_raises(self):
        cluster = VirtualCluster(2, make_spec())
        with pytest.raises(ValueError):
            cluster.clock(2)
        with pytest.raises(ValueError):
            cluster.advance(-1, 1.0, "x")

    def test_clocks_copy(self):
        cluster = VirtualCluster(2, make_spec())
        clocks = cluster.clocks()
        clocks[0] = 99.0
        assert cluster.clock(0) == 0.0


class TestSynchronize:
    def test_barrier_books_idle(self):
        cluster = VirtualCluster(3, make_spec())
        cluster.advance(0, 10.0, "subset")
        cluster.advance(1, 4.0, "subset")
        latest = cluster.synchronize()
        assert latest == 10.0
        assert cluster.clock(1) == 10.0
        assert cluster.breakdown(1)["idle"] == pytest.approx(6.0)
        assert cluster.breakdown(2)["idle"] == pytest.approx(10.0)
        assert "idle" not in cluster.breakdown(0)

    def test_group_barrier_leaves_others_alone(self):
        cluster = VirtualCluster(3, make_spec())
        cluster.advance(0, 10.0, "subset")
        cluster.synchronize([0, 1])
        assert cluster.clock(1) == 10.0
        assert cluster.clock(2) == 0.0

    def test_empty_group_rejected(self):
        cluster = VirtualCluster(2, make_spec())
        with pytest.raises(ValueError):
            cluster.synchronize([])


class TestBreakdown:
    def test_mean_over_processors(self):
        cluster = VirtualCluster(2, make_spec())
        cluster.advance(0, 4.0, "subset")
        cluster.advance(1, 2.0, "subset")
        cluster.advance(1, 2.0, "comm")
        mean = cluster.breakdown_mean()
        assert mean["subset"] == pytest.approx(3.0)
        assert mean["comm"] == pytest.approx(1.0)

    def test_category_total(self):
        cluster = VirtualCluster(2, make_spec())
        cluster.advance(0, 4.0, "io")
        cluster.advance(1, 1.0, "io")
        assert cluster.category_total("io") == pytest.approx(5.0)
        assert cluster.category_total("missing") == 0.0


class TestAllReduce:
    def test_synchronizes_then_charges(self):
        cluster = VirtualCluster(2, make_spec())
        cluster.advance(0, 10.0, "subset")
        cluster.all_reduce(10, combine_ops=3)
        # sync to 10, then 1 step * (1 + 10*0.5) = 6 comm + 1 step * 3 ops
        # * 2.0 = 6 compute.
        assert cluster.clock(0) == pytest.approx(22.0)
        assert cluster.clock(1) == pytest.approx(22.0)
        assert cluster.breakdown(1)["idle"] == pytest.approx(10.0)

    def test_single_processor_noop_cost(self):
        cluster = VirtualCluster(1, make_spec())
        cluster.all_reduce(100, combine_ops=5)
        assert cluster.clock(0) == 0.0


class TestAllToAllBroadcast:
    def test_ring_cost(self):
        cluster = VirtualCluster(4, make_spec())
        cluster.all_to_all_broadcast(10)
        assert cluster.clock(0) == pytest.approx(18.0)

    def test_naive_cost_higher(self):
        ring = VirtualCluster(4, make_spec())
        ring.all_to_all_broadcast(10)
        naive = VirtualCluster(4, make_spec())
        naive.all_to_all_broadcast(10, naive=True)
        assert naive.clock(0) > ring.clock(0)

    def test_subgroup_only(self):
        cluster = VirtualCluster(4, make_spec())
        cluster.all_to_all_broadcast(10, pids=[0, 1])
        assert cluster.clock(0) > 0
        assert cluster.clock(2) == 0.0


class TestOverlappedStep:
    def test_overlap_hides_comm_under_compute(self):
        cluster = VirtualCluster(2, make_spec())
        # comm = 1 + 10*0.5 = 6; compute 8 > 6, so comm fully hidden.
        cluster.overlapped_step({0: 8.0, 1: 8.0}, 10)
        assert cluster.clock(0) == pytest.approx(8.0)
        assert "comm" not in cluster.breakdown(0)

    def test_exposed_comm_when_compute_short(self):
        cluster = VirtualCluster(2, make_spec())
        cluster.overlapped_step({0: 2.0, 1: 2.0}, 10)
        assert cluster.clock(0) == pytest.approx(6.0)
        assert cluster.breakdown(0)["comm"] == pytest.approx(4.0)

    def test_no_overlap_serializes(self):
        cluster = VirtualCluster(2, make_spec(async_overlap=False))
        cluster.overlapped_step({0: 2.0, 1: 2.0}, 10)
        assert cluster.clock(0) == pytest.approx(8.0)

    def test_zero_bytes_means_no_comm(self):
        cluster = VirtualCluster(2, make_spec())
        cluster.overlapped_step({0: 2.0, 1: 3.0}, 0)
        assert cluster.clock(0) == pytest.approx(3.0)  # barrier to max
        assert cluster.breakdown(0)["idle"] == pytest.approx(1.0)

    def test_imbalance_becomes_idle(self):
        cluster = VirtualCluster(2, make_spec())
        cluster.overlapped_step({0: 10.0, 1: 2.0}, 10)
        assert cluster.clock(1) == pytest.approx(10.0)
        assert cluster.breakdown(1)["idle"] == pytest.approx(4.0)

    def test_without_barrier(self):
        cluster = VirtualCluster(2, make_spec())
        cluster.overlapped_step({0: 10.0, 1: 2.0}, 0, synchronize=False)
        assert cluster.clock(1) == pytest.approx(2.0)

    def test_empty_group_rejected(self):
        cluster = VirtualCluster(2, make_spec())
        with pytest.raises(ValueError):
            cluster.overlapped_step({}, 10)


class TestBlockingExchange:
    def test_compute_plus_comm(self):
        cluster = VirtualCluster(2, make_spec())
        cluster.blocking_exchange({0: 2.0, 1: 2.0}, 5.0)
        assert cluster.clock(0) == pytest.approx(7.0)
        assert cluster.breakdown(0)["comm"] == pytest.approx(5.0)

    def test_empty_group_rejected(self):
        cluster = VirtualCluster(2, make_spec())
        with pytest.raises(ValueError):
            cluster.blocking_exchange({}, 1.0)


class TestChargeIO:
    def test_io_time(self):
        cluster = VirtualCluster(1, make_spec(io_bandwidth=100.0))
        cluster.charge_io(0, 250.0)
        assert cluster.clock(0) == pytest.approx(2.5)
        assert cluster.breakdown(0)["io"] == pytest.approx(2.5)

    def test_rejects_negative_bytes(self):
        cluster = VirtualCluster(1, make_spec())
        with pytest.raises(ValueError):
            cluster.charge_io(0, -5)
