"""Tests for the simulated cluster's per-processor failure hooks."""

import pytest

from repro.cluster.cluster import VirtualCluster
from repro.cluster.machine import CRAY_T3E
from repro.cluster.trace import FAULT_GLYPH, TimelineTrace
from repro.faults import FaultSpec
from repro.parallel.runner import mine_parallel


class TestRecoveryTime:
    def test_respawn_only(self):
        spec = CRAY_T3E
        assert spec.recovery_time() == pytest.approx(spec.t_respawn)

    def test_with_block_transfer(self):
        spec = CRAY_T3E
        expected = spec.t_respawn + spec.message_time(1000.0)
        assert spec.recovery_time(1000.0) == pytest.approx(expected)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            CRAY_T3E.recovery_time(-1.0)

    def test_defaults_are_positive(self):
        assert CRAY_T3E.t_detect > 0
        assert CRAY_T3E.t_respawn > 0


class TestApplyPassFaults:
    def test_no_plan_is_a_noop(self):
        cluster = VirtualCluster(4, CRAY_T3E)
        assert cluster.apply_pass_faults(2) == []
        assert cluster.elapsed() == 0.0

    def test_charges_recover_time_to_failed_processor(self):
        faults = FaultSpec.parse("kill@1:k2")
        cluster = VirtualCluster(4, CRAY_T3E, faults=faults)
        failed = cluster.apply_pass_faults(2, block_bytes=500.0)
        assert failed == [1]
        expected = CRAY_T3E.t_detect + CRAY_T3E.recovery_time(500.0)
        assert cluster.breakdown(1)["recover"] == pytest.approx(expected)
        assert "recover" not in cluster.breakdown(0)

    def test_other_passes_unaffected(self):
        faults = FaultSpec.parse("kill@1:k3")
        cluster = VirtualCluster(2, CRAY_T3E, faults=faults)
        assert cluster.apply_pass_faults(2) == []
        assert cluster.apply_pass_faults(3) == [1]

    def test_out_of_range_processor_ignored(self):
        faults = FaultSpec.parse("kill@9:k2")
        cluster = VirtualCluster(2, CRAY_T3E, faults=faults)
        assert cluster.apply_pass_faults(2) == []

    def test_fault_marked_on_trace(self):
        trace = TimelineTrace()
        faults = FaultSpec.parse("kill@0:k2")
        cluster = VirtualCluster(2, CRAY_T3E, trace=trace, faults=faults)
        cluster.advance(0, 1.0, "subset")
        cluster.apply_pass_faults(2)
        marks = trace.faults
        assert len(marks) == 1
        assert (marks[0].pid, marks[0].kind) == (0, "kill")
        assert marks[0].time == pytest.approx(1.0)

    def test_fault_glyph_rendered_in_gantt(self):
        trace = TimelineTrace()
        faults = FaultSpec.parse("kill@0:k2")
        cluster = VirtualCluster(1, CRAY_T3E, trace=trace, faults=faults)
        cluster.advance(0, 1.0, "subset")
        cluster.apply_pass_faults(2)
        chart = trace.render_gantt(1, width=16)
        assert FAULT_GLYPH in chart
        assert f"{FAULT_GLYPH}=fault" in chart


class TestSimulatedMiningUnderFaults:
    def test_cd_results_identical_under_faults(self, tiny_db):
        baseline = mine_parallel("CD", tiny_db, 0.3, 2)
        faulted = mine_parallel("CD", tiny_db, 0.3, 2, faults="kill@0:k2")
        assert faulted.frequent == baseline.frequent
        assert faulted.total_time > baseline.total_time
        assert faulted.breakdown.get("recover", 0.0) > 0.0

    def test_failed_processors_recorded_per_pass(self, tiny_db):
        result = mine_parallel("CD", tiny_db, 0.3, 2, faults="kill@1:k2")
        by_pass = {p.k: p.failed_processors for p in result.passes}
        assert by_pass[2] == [1]
        assert by_pass[1] == []

    def test_survivors_pay_idle_not_recover(self, tiny_db):
        result = mine_parallel("CD", tiny_db, 0.3, 4, faults="kill@0:k2")
        assert result.per_processor[0].get("recover", 0.0) > 0.0
        for pid in (1, 2, 3):
            assert result.per_processor[pid].get("recover", 0.0) == 0.0

    @pytest.mark.parametrize("algorithm", ["CD", "DD", "IDD", "HD"])
    def test_all_formulations_survive_faults(self, tiny_db, algorithm):
        baseline = mine_parallel(algorithm, tiny_db, 0.3, 2)
        faulted = mine_parallel(
            algorithm, tiny_db, 0.3, 2, faults="kill@0:k2,kill@1:k3"
        )
        assert faulted.frequent == baseline.frequent

    def test_no_faults_means_no_recover_category(self, tiny_db):
        result = mine_parallel("CD", tiny_db, 0.3, 2)
        assert "recover" not in result.breakdown
