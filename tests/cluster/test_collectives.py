"""Tests for the collective-communication cost formulas."""

import pytest

from repro.cluster.collectives import (
    all_reduce_time,
    all_to_all_broadcast_naive_time,
    all_to_all_broadcast_ring_time,
    broadcast_time,
    ring_shift_step_time,
)
from repro.cluster.machine import MachineSpec


SPEC = MachineSpec(
    name="unit",
    t_startup=1.0,
    t_byte=0.5,
    t_travers=0.0,
    t_check=0.0,
    t_leaf_visit=0.0,
    t_item=0.0,
    t_insert=0.0,
    t_candgen=0.0,
    t_reduce_op=0.0,
    contention_per_processor=1.0,
)


class TestRingShift:
    def test_hand_computed(self):
        # ts + m * tw = 1 + 10 * 0.5 = 6
        assert ring_shift_step_time(10, SPEC) == pytest.approx(6.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            ring_shift_step_time(-1, SPEC)


class TestRingAllToAll:
    def test_hand_computed(self):
        # (P-1) * (ts + m*tw) = 3 * 6 = 18
        assert all_to_all_broadcast_ring_time(4, 10, SPEC) == pytest.approx(18.0)

    def test_single_processor_is_free(self):
        assert all_to_all_broadcast_ring_time(1, 1000, SPEC) == 0.0

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            all_to_all_broadcast_ring_time(0, 10, SPEC)

    def test_monotone_in_group_size(self):
        times = [
            all_to_all_broadcast_ring_time(p, 100, SPEC) for p in (2, 4, 8, 16)
        ]
        assert times == sorted(times)


class TestNaiveAllToAll:
    def test_hand_computed(self):
        # 3 * 6 * (1 + 1.0 * 3) = 72
        assert all_to_all_broadcast_naive_time(4, 10, SPEC) == pytest.approx(72.0)

    def test_single_processor_is_free(self):
        assert all_to_all_broadcast_naive_time(1, 10, SPEC) == 0.0

    def test_always_at_least_ring(self):
        for p in (2, 3, 8, 33):
            naive = all_to_all_broadcast_naive_time(p, 64, SPEC)
            ring = all_to_all_broadcast_ring_time(p, 64, SPEC)
            assert naive >= ring

    def test_zero_contention_degrades_to_ring(self):
        from dataclasses import replace

        flat = replace(SPEC, contention_per_processor=0.0)
        assert all_to_all_broadcast_naive_time(8, 64, flat) == pytest.approx(
            all_to_all_broadcast_ring_time(8, 64, flat)
        )

    def test_contention_grows_superlinearly(self):
        """Cost per processor must grow faster than the ring's O(P)."""
        small = all_to_all_broadcast_naive_time(4, 100, SPEC)
        large = all_to_all_broadcast_naive_time(16, 100, SPEC)
        assert large / small > 16 / 4


class TestAllReduce:
    def test_hand_computed(self):
        # ceil(log2 8) * (1 + 10*0.5) = 3 * 6 = 18
        assert all_reduce_time(8, 10, SPEC) == pytest.approx(18.0)

    def test_non_power_of_two_rounds_up(self):
        assert all_reduce_time(5, 0, SPEC) == pytest.approx(3.0)

    def test_single_processor_is_free(self):
        assert all_reduce_time(1, 1000, SPEC) == 0.0


class TestBroadcast:
    def test_hand_computed(self):
        assert broadcast_time(4, 10, SPEC) == pytest.approx(12.0)

    def test_single_processor_is_free(self):
        assert broadcast_time(1, 10, SPEC) == 0.0
