"""Tests for execution timeline tracing."""

import pytest

from repro.cluster.cluster import VirtualCluster
from repro.cluster.machine import CRAY_T3E
from repro.cluster.trace import CATEGORY_GLYPHS, TimelineTrace, TraceSegment


class TestTraceSegment:
    def test_duration(self):
        segment = TraceSegment(0, 1.0, 3.5, "subset")
        assert segment.duration == 2.5


class TestTimelineTrace:
    def test_record_and_read(self):
        trace = TimelineTrace()
        trace.record(0, 0.0, 1.0, "subset")
        trace.record(1, 0.5, 2.0, "comm")
        assert len(trace.segments) == 2
        assert trace.end_time() == 2.0

    def test_zero_length_segments_dropped(self):
        trace = TimelineTrace()
        trace.record(0, 1.0, 1.0, "subset")
        assert trace.segments == []

    def test_backwards_segment_rejected(self):
        trace = TimelineTrace()
        with pytest.raises(ValueError):
            trace.record(0, 2.0, 1.0, "subset")

    def test_for_processor_sorted(self):
        trace = TimelineTrace()
        trace.record(0, 5.0, 6.0, "comm")
        trace.record(0, 0.0, 1.0, "subset")
        trace.record(1, 2.0, 3.0, "subset")
        own = trace.for_processor(0)
        assert [s.start for s in own] == [0.0, 5.0]

    def test_busy_fraction(self):
        trace = TimelineTrace()
        trace.record(0, 0.0, 6.0, "subset")
        trace.record(0, 6.0, 10.0, "idle")
        trace.record(1, 0.0, 10.0, "comm")
        assert trace.busy_fraction(0) == pytest.approx(0.6)
        assert trace.busy_fraction(0, "subset") == pytest.approx(0.6)
        assert trace.busy_fraction(1, "comm") == pytest.approx(1.0)

    def test_busy_fraction_empty_trace(self):
        assert TimelineTrace().busy_fraction(0) == 0.0


class TestGanttRendering:
    def test_empty_trace(self):
        chart = TimelineTrace().render_gantt(2)
        assert "no recorded segments" in chart

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            TimelineTrace().render_gantt(1, width=2)

    def test_rows_and_legend(self):
        trace = TimelineTrace()
        trace.record(0, 0.0, 1.0, "subset")
        trace.record(1, 0.0, 1.0, "comm")
        chart = trace.render_gantt(2, width=16)
        assert "P000" in chart and "P001" in chart
        assert "legend:" in chart

    def test_dominant_category_wins_bucket(self):
        trace = TimelineTrace()
        trace.record(0, 0.0, 9.0, "subset")
        trace.record(0, 9.0, 10.0, "comm")
        chart = trace.render_gantt(1, width=10)
        row = next(ln for ln in chart.splitlines() if ln.startswith("P000"))
        assert row.count(CATEGORY_GLYPHS["subset"]) >= 8

    def test_unknown_category_glyph(self):
        trace = TimelineTrace()
        trace.record(0, 0.0, 1.0, "mystery")
        chart = trace.render_gantt(1, width=8)
        assert "?" in chart


class TestClusterIntegration:
    def test_cluster_records_advances_and_idle(self):
        trace = TimelineTrace()
        cluster = VirtualCluster(2, CRAY_T3E, trace=trace)
        cluster.advance(0, 2.0, "subset")
        cluster.synchronize()
        categories = {s.category for s in trace.segments}
        assert categories == {"subset", "idle"}
        idle = next(s for s in trace.segments if s.category == "idle")
        assert idle.pid == 1
        assert idle.duration == pytest.approx(2.0)

    def test_miner_end_to_end_trace(self, tiny_db):
        from repro.parallel import CountDistribution

        trace = TimelineTrace()
        result = CountDistribution(0.3, 2, trace=trace).mine(tiny_db)
        assert trace.end_time() == pytest.approx(result.total_time)
        chart = trace.render_gantt(2)
        assert "P000" in chart

    def test_trace_sums_match_breakdown(self, tiny_db):
        from repro.parallel import IntelligentDataDistribution

        trace = TimelineTrace()
        result = IntelligentDataDistribution(0.3, 3, trace=trace).mine(
            tiny_db
        )
        for pid in range(3):
            for category, seconds in result.per_processor[pid].items():
                traced = sum(
                    s.duration
                    for s in trace.for_processor(pid)
                    if s.category == category
                )
                assert traced == pytest.approx(seconds, rel=1e-9)
