"""Tests for hash-tree memory partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.memory import (
    num_tree_partitions,
    partition_for_memory,
    tree_fits,
)


class TestNumTreePartitions:
    def test_unbounded_memory(self):
        assert num_tree_partitions(10**9, None) == 1

    def test_fits_exactly(self):
        assert num_tree_partitions(100, 100) == 1

    def test_one_over_splits(self):
        assert num_tree_partitions(101, 100) == 2

    def test_many_partitions(self):
        assert num_tree_partitions(1000, 99) == 11

    def test_zero_candidates(self):
        assert num_tree_partitions(0, 10) == 1

    def test_rejects_negative_candidates(self):
        with pytest.raises(ValueError):
            num_tree_partitions(-1, 10)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            num_tree_partitions(10, 0)


class TestTreeFits:
    def test_fits(self):
        assert tree_fits(5, 10)
        assert tree_fits(5, None)

    def test_does_not_fit(self):
        assert not tree_fits(11, 10)


class TestPartitionForMemory:
    def test_single_chunk_when_fits(self):
        candidates = [(1, 2), (3, 4)]
        assert partition_for_memory(candidates, 10) == [candidates]

    def test_chunks_cover_everything_in_order(self):
        candidates = [(i, i + 1) for i in range(10)]
        chunks = partition_for_memory(candidates, 3)
        merged = [c for chunk in chunks for c in chunk]
        assert merged == candidates
        assert all(len(chunk) <= 3 for chunk in chunks)

    @given(st.integers(0, 200), st.integers(1, 50))
    def test_chunk_count_matches_partition_formula(self, n, capacity):
        candidates = [(i, i + 1) for i in range(n)]
        chunks = partition_for_memory(candidates, capacity)
        if n == 0:
            assert len(chunks) == 1
        else:
            assert all(chunk for chunk in chunks)
            assert max(len(c) for c in chunks) <= capacity
            merged = [c for chunk in chunks for c in chunk]
            assert merged == candidates
