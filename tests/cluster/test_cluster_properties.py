"""Property-based invariants of the virtual cluster."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import VirtualCluster
from repro.cluster.machine import CRAY_T3E


# One random cluster operation: (kind, payload)
operation = st.one_of(
    st.tuples(
        st.just("advance"),
        st.integers(0, 3),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.sampled_from(["subset", "comm", "tree_build", "io"]),
    ),
    st.tuples(st.just("synchronize")),
    st.tuples(
        st.just("all_reduce"),
        st.integers(0, 10_000),
        st.integers(0, 100),
    ),
    st.tuples(
        st.just("overlapped_step"),
        st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=4,
            max_size=4,
        ),
        st.integers(0, 10_000),
    ),
)


def apply_operation(cluster: VirtualCluster, op) -> None:
    kind = op[0]
    if kind == "advance":
        _, pid, seconds, category = op
        cluster.advance(pid, seconds, category)
    elif kind == "synchronize":
        cluster.synchronize()
    elif kind == "all_reduce":
        _, nbytes, combine = op
        cluster.all_reduce(nbytes, combine_ops=combine)
    else:
        _, computes, nbytes = op
        cluster.overlapped_step(
            dict(enumerate(computes)), nbytes
        )


class TestClusterInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(operation, max_size=25))
    def test_breakdown_sums_to_clock(self, operations):
        """Every charged second lands in exactly one category."""
        cluster = VirtualCluster(4, CRAY_T3E)
        for op in operations:
            apply_operation(cluster, op)
        for pid in range(4):
            total = sum(cluster.breakdown(pid).values())
            assert total == pytest.approx(cluster.clock(pid), abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(operation, max_size=25))
    def test_clocks_never_decrease(self, operations):
        cluster = VirtualCluster(4, CRAY_T3E)
        previous = cluster.clocks()
        for op in operations:
            apply_operation(cluster, op)
            current = cluster.clocks()
            for before, after in zip(previous, current):
                assert after >= before - 1e-12
            previous = current

    @settings(max_examples=40, deadline=None)
    @given(st.lists(operation, max_size=20))
    def test_elapsed_is_max_clock(self, operations):
        cluster = VirtualCluster(4, CRAY_T3E)
        for op in operations:
            apply_operation(cluster, op)
        assert cluster.elapsed() == max(cluster.clocks())

    @settings(max_examples=40, deadline=None)
    @given(st.lists(operation, max_size=20))
    def test_synchronize_equalizes(self, operations):
        cluster = VirtualCluster(4, CRAY_T3E)
        for op in operations:
            apply_operation(cluster, op)
        cluster.synchronize()
        clocks = cluster.clocks()
        assert max(clocks) == pytest.approx(min(clocks))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(operation, max_size=20))
    def test_trace_agrees_with_breakdown(self, operations):
        from repro.cluster.trace import TimelineTrace

        trace = TimelineTrace()
        cluster = VirtualCluster(4, CRAY_T3E, trace=trace)
        for op in operations:
            apply_operation(cluster, op)
        for pid in range(4):
            traced = sum(s.duration for s in trace.for_processor(pid))
            assert traced == pytest.approx(cluster.clock(pid), abs=1e-9)
