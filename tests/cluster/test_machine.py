"""Tests for the machine cost model."""

import pytest

from repro.cluster.machine import CRAY_T3E, IBM_SP2, MachineSpec, subset_time
from repro.core.hashtree import HashTreeStats


class TestPresets:
    def test_t3e_matches_measured_network(self):
        """Pin the paper's measured T3E network figures."""
        assert CRAY_T3E.t_startup == pytest.approx(16e-6)
        assert 1.0 / CRAY_T3E.t_byte == pytest.approx(303e6)

    def test_sp2_slower_than_t3e(self):
        assert IBM_SP2.t_travers > CRAY_T3E.t_travers
        assert IBM_SP2.t_byte > CRAY_T3E.t_byte
        assert IBM_SP2.t_startup > CRAY_T3E.t_startup

    def test_both_support_overlap(self):
        assert CRAY_T3E.async_overlap
        assert IBM_SP2.async_overlap


class TestSpecHelpers:
    def test_with_memory(self):
        limited = CRAY_T3E.with_memory(1000)
        assert limited.memory_candidates == 1000
        assert CRAY_T3E.memory_candidates is None
        assert limited.t_travers == CRAY_T3E.t_travers

    def test_with_overlap(self):
        blocking = CRAY_T3E.with_overlap(False)
        assert not blocking.async_overlap
        assert CRAY_T3E.async_overlap

    def test_transaction_bytes(self):
        assert CRAY_T3E.transaction_bytes(15) == 4 + 60

    def test_message_time(self):
        spec = CRAY_T3E
        assert spec.message_time(0) == pytest.approx(spec.t_startup)
        assert spec.message_time(1000) == pytest.approx(
            spec.t_startup + 1000 * spec.t_byte
        )


class TestSubsetTime:
    def test_prices_each_counter(self):
        spec = MachineSpec(
            name="unit",
            t_startup=0.0,
            t_byte=0.0,
            t_travers=1.0,
            t_check=10.0,
            t_leaf_visit=100.0,
            t_item=1000.0,
            t_insert=0.0,
            t_candgen=0.0,
            t_reduce_op=0.0,
        )
        stats = HashTreeStats(
            transactions_processed=99,
            root_items_scanned=1,
            root_items_expanded=42,
            hash_steps=2,
            leaf_visits=3,
            candidates_checked=4,
        )
        # 1*1000 + 2*1 + 3*100 + 4*10 = 1342 (expansions are free; their
        # cost is carried by the hash steps they trigger).
        assert subset_time(stats, spec) == pytest.approx(1342.0)

    def test_zero_stats_cost_nothing(self):
        assert subset_time(HashTreeStats(), CRAY_T3E) == 0.0
