"""Tests for the deterministic fault-injection layer."""

import pytest

from repro.faults import FaultEvent, FaultRecord, FaultSpec


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("explode", worker=0, k=2)

    def test_rejects_negative_worker(self):
        with pytest.raises(ValueError, match="worker index"):
            FaultEvent("kill", worker=-1, k=2)

    def test_rejects_pass_one(self):
        # Pass 1 is a serial scan; the pool never sees it.
        with pytest.raises(ValueError, match="k >= 2"):
            FaultEvent("kill", worker=0, k=1)

    def test_rejects_bad_kill_timing(self):
        with pytest.raises(ValueError, match="before.*mid"):
            FaultEvent("kill", worker=0, k=2, when="after")

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay"):
            FaultEvent("delay", worker=0, k=2, delay=-1.0)

    def test_rejects_zero_refusals(self):
        with pytest.raises(ValueError, match="refusal count"):
            FaultEvent("refuse-spawn", count=0)


class TestParse:
    def test_parse_kill(self):
        spec = FaultSpec.parse("kill@0:k2")
        assert spec.events == (FaultEvent("kill", worker=0, k=2),)

    def test_parse_kill_mid(self):
        spec = FaultSpec.parse("kill@3:k4:mid")
        assert spec.events[0].when == "mid"

    def test_parse_delay(self):
        spec = FaultSpec.parse("delay@1:k3:0.5")
        event = spec.events[0]
        assert (event.kind, event.worker, event.k, event.delay) == (
            "delay", 1, 3, 0.5,
        )

    def test_parse_multiple(self):
        spec = FaultSpec.parse("kill@0:k2, corrupt@1:k2 ,refuse-spawn:2")
        assert [e.kind for e in spec] == ["kill", "corrupt", "refuse-spawn"]

    def test_parse_refuse_spawn_default_count(self):
        assert FaultSpec.parse("refuse-spawn").refusals() == 1

    def test_parse_empty_string_is_empty_spec(self):
        assert len(FaultSpec.parse("")) == 0

    def test_delay_requires_seconds(self):
        with pytest.raises(ValueError, match="needs seconds"):
            FaultSpec.parse("delay@0:k2")

    def test_malformed_event_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultSpec.parse("kill0:k2")

    def test_corrupt_takes_no_extra(self):
        with pytest.raises(ValueError, match="no extra"):
            FaultSpec.parse("corrupt@0:k2:mid")

    def test_format_round_trips(self):
        text = "kill@0:k2,kill@1:k3:mid,delay@2:k2:0.25,corrupt@0:k4,error@1:k2,refuse-spawn:3"
        assert FaultSpec.parse(text).format() == text

    def test_of_coerces_string(self):
        spec = FaultSpec.of("kill@0:k2")
        assert isinstance(spec, FaultSpec)
        assert spec.events[0].kind == "kill"

    def test_of_passes_through(self):
        spec = FaultSpec.parse("kill@0:k2")
        assert FaultSpec.of(spec) is spec
        assert FaultSpec.of(None) is None

    def test_of_rejects_other_types(self):
        with pytest.raises(TypeError):
            FaultSpec.of(42)


class TestQueries:
    def test_worker_events_filters_by_worker(self):
        spec = FaultSpec.parse("kill@0:k2,delay@1:k2:0.1,corrupt@0:k3")
        kinds = [e.kind for e in spec.worker_events(0)]
        assert kinds == ["kill", "corrupt"]
        assert [e.kind for e in spec.worker_events(1)] == ["delay"]
        assert spec.worker_events(9) == []

    def test_refusals_sum(self):
        spec = FaultSpec.parse("refuse-spawn:2,kill@0:k2,refuse-spawn")
        assert spec.refusals() == 3

    def test_failing_at_only_kills(self):
        spec = FaultSpec.parse("kill@2:k2,kill@0:k2,delay@1:k2:0.1,kill@1:k3")
        assert spec.failing_at(2) == [0, 2]
        assert spec.failing_at(3) == [1]
        assert spec.failing_at(4) == []

    def test_max_pass(self):
        spec = FaultSpec.parse("kill@0:k2,corrupt@1:k5,refuse-spawn")
        assert spec.max_pass() == 5
        assert FaultSpec().max_pass() == 0


class TestSingleKills:
    def test_deterministic_in_seed(self):
        a = FaultSpec.single_kills(7, num_workers=4, passes=range(2, 6))
        b = FaultSpec.single_kills(7, num_workers=4, passes=range(2, 6))
        assert a == b

    def test_different_seeds_differ(self):
        specs = {
            FaultSpec.single_kills(s, num_workers=4, passes=range(2, 8)).format()
            for s in range(10)
        }
        assert len(specs) > 1

    def test_at_most_one_kill_per_pass(self):
        spec = FaultSpec.single_kills(3, num_workers=3, passes=range(2, 10))
        passes = [e.k for e in spec]
        assert len(passes) == len(set(passes))
        assert all(e.kind == "kill" for e in spec)
        assert all(0 <= e.worker < 3 for e in spec)

    def test_probability_one_kills_every_pass(self):
        spec = FaultSpec.single_kills(
            0, num_workers=2, passes=range(2, 5), probability=1.0
        )
        assert [e.k for e in spec] == [2, 3, 4]

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            FaultSpec.single_kills(0, num_workers=0, passes=range(2, 3))


class TestFaultRecord:
    def test_fields(self):
        record = FaultRecord(k=3, worker=1, failure="timeout", action="respawned", attempts=2)
        assert record.k == 3
        assert record.failure == "timeout"
        assert record.action == "respawned"


class TestCoordinatorKill:
    def test_parse_and_format_round_trip(self):
        text = "kill@0:k2,coord-kill:k1,coord-kill:k3,refuse-spawn:2"
        spec = FaultSpec.parse(text)
        assert spec.format() == text
        assert spec.events[1] == FaultEvent("coord-kill", k=1)

    def test_pass_one_is_allowed(self):
        # Unlike worker kinds, coord-kill may target pass 1 — the serial
        # scan is checkpointed too.
        assert FaultSpec.parse("coord-kill:k1").coordinator_kills() == {1}

    def test_rejects_pass_zero(self):
        with pytest.raises(ValueError, match="k >= 1"):
            FaultEvent("coord-kill", k=0)

    def test_coordinator_kills_collects_passes(self):
        spec = FaultSpec.parse("coord-kill:k2,kill@0:k2,coord-kill:k4")
        assert spec.coordinator_kills() == frozenset({2, 4})
        assert FaultSpec.parse("kill@0:k2").coordinator_kills() == frozenset()


class TestAdvance:
    def test_drops_fired_pass_events(self):
        spec = FaultSpec.parse("kill@0:k2,coord-kill:k2,kill@1:k3,coord-kill:k4")
        resumed = spec.advance(2)
        assert resumed.format() == "kill@1:k3,coord-kill:k4"

    def test_preserves_future_events(self):
        spec = FaultSpec.parse("coord-kill:k3")
        assert spec.advance(1) == spec
        assert spec.advance(0) == spec

    def test_decrements_refusal_budget(self):
        spec = FaultSpec.parse("refuse-spawn:3")
        assert spec.advance(2, refusals_consumed=1).refusals() == 2
        # A fully spent budget disappears from the resumed spec.
        assert len(spec.advance(2, refusals_consumed=3)) == 0
        assert len(spec.advance(2, refusals_consumed=99)) == 0

    def test_refusals_drain_in_order_across_events(self):
        spec = FaultSpec.parse("refuse-spawn:2,kill@0:k5,refuse-spawn:3")
        resumed = spec.advance(1, refusals_consumed=3)
        assert resumed.format() == "kill@0:k5,refuse-spawn:2"

    def test_empty_spec_advances_to_empty(self):
        assert len(FaultSpec().advance(7, refusals_consumed=4)) == 0
