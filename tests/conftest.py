"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

from itertools import combinations
from typing import Dict

import pytest

from repro.core.items import Itemset
from repro.core.transaction import TransactionDB
from repro.data.corpus import supermarket, t5_i2
from repro.data.quest import generate


def pytest_configure(config):
    # The chaos suite marks tests with @pytest.mark.timeout(...), which
    # pytest-timeout enforces in CI.  Register the marker so the suite
    # also runs warning-free where the plugin is not installed (the
    # marks are simply inert there).
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test after this many seconds "
        "(enforced by pytest-timeout when installed)",
    )


def brute_force_frequent(
    db: TransactionDB, min_count: int, max_size: int | None = None
) -> Dict[Itemset, int]:
    """Enumerate all frequent item-sets by exhaustive subset counting.

    Exponential — only for tiny databases — but trivially correct, which
    makes it the oracle for Apriori and the parallel formulations.
    """
    from collections import Counter

    counts: Counter = Counter()
    for transaction in db:
        limit = len(transaction) if max_size is None else min(
            max_size, len(transaction)
        )
        for size in range(1, limit + 1):
            for subset in combinations(transaction, size):
                counts[subset] += 1
    return {s: c for s, c in counts.items() if c >= min_count}


@pytest.fixture
def supermarket_db() -> TransactionDB:
    """The paper's Table I worked example."""
    return supermarket()


@pytest.fixture
def tiny_db() -> TransactionDB:
    """A handful of hand-written transactions."""
    return TransactionDB(
        [
            (1, 2, 3),
            (1, 2),
            (2, 3, 4),
            (1, 3, 4),
            (2, 4),
            (1, 2, 3, 4),
        ]
    )


@pytest.fixture(scope="session")
def small_quest_db() -> TransactionDB:
    """A small synthetic database shared across tests (deterministic)."""
    return generate(t5_i2(300, seed=42))


@pytest.fixture(scope="session")
def medium_quest_db() -> TransactionDB:
    """A denser synthetic database for parallel-equivalence tests."""
    from repro.data.corpus import t15_i6

    return generate(t15_i6(240, seed=5, num_items=200))
