"""Concurrency drills: atomic model swap + client restart retry.

The swap contract: a query that started under generation g answers
entirely from generation g's rules — never a mix of two generations —
and no query fails *because* a swap happened.  The drills here encode
the generation into the model's content (generation g's only rule is
``(1,) => (MARKER_BASE + g,)``), hammer the server from N threads while
swaps run in a loop, and assert every reply's suggested item matches
the generation the reply claims.
"""

from __future__ import annotations

import threading
from typing import List

import pytest

from repro.core.apriori import AprioriResult
from repro.serve import CallableSource, RuleClient, RuleServer
from repro.serve.model import RuleIndex

MARKER_BASE = 1000


def generation_result(g: int) -> AprioriResult:
    """A mined result whose rules identify generation ``g``.

    10 transactions all containing {1, MARKER_BASE+g} make the rule
    ``(1,) => (MARKER_BASE+g,)`` hold at confidence 1.0.
    """
    marker = MARKER_BASE + g
    return AprioriResult(
        frequent={(1,): 10, (marker,): 10, (1, marker): 10},
        min_support=0.5,
        min_count=5,
        num_transactions=10,
    )


class CountingSource(CallableSource):
    """Model source whose g-th mine yields generation_result(g+1)."""

    def __init__(self):
        self.mines = 0
        super().__init__(self._mine, "counting")

    def _mine(self) -> AprioriResult:
        self.mines += 1
        return generation_result(self.mines)


class TestAtomicIndexSwap:
    def test_index_snapshot_is_internally_consistent(self):
        """Direct hammer on the RuleIndex reference swap (no sockets)."""
        holder = RuleServer(CountingSource(), min_confidence=0.5, port=0)
        holder._index = RuleIndex.from_result(
            generation_result(1), 0.5, generation=1
        )
        stop = threading.Event()
        torn: List[str] = []

        def reader():
            while not stop.is_set():
                index = holder.index  # one atomic read, as the handler does
                suggestions = index.query([1])
                if len(suggestions) != 1 or (
                    suggestions[0].item != MARKER_BASE + index.generation
                ):
                    torn.append(
                        f"generation {index.generation} suggested "
                        f"{[s.item for s in suggestions]}"
                    )
                    return

        readers = [threading.Thread(target=reader) for _ in range(8)]
        for thread in readers:
            thread.start()
        for g in range(2, 60):
            holder._index = RuleIndex.from_result(
                generation_result(g), 0.5, generation=g
            )
        stop.set()
        for thread in readers:
            thread.join(timeout=10.0)
        assert torn == []

    def test_no_torn_or_failed_query_through_the_server(self):
        """N client threads hammer while re-mines swap in a loop."""
        source = CountingSource()
        swaps = 12
        with RuleServer(source, min_confidence=0.5, port=0) as server:
            host, port = server.address
            stop = threading.Event()
            problems: List[str] = []
            observed: set = set()

            def hammer():
                with RuleClient(host, port, timeout=10.0) as client:
                    while not stop.is_set():
                        reply = client.query([1])
                        observed.add(reply.generation)
                        items = reply.items
                        if items != [MARKER_BASE + reply.generation]:
                            problems.append(
                                f"generation {reply.generation} "
                                f"answered {items}"
                            )
                            return

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for thread in threads:
                thread.start()
            with RuleClient(host, port, timeout=10.0) as control:
                for _ in range(swaps):
                    reply = control.remine(wait=True)
                    assert reply["status"] == "ok"
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert problems == []
            assert len(observed) > 1, "hammer never saw a swap land"
            with RuleClient(host, port, timeout=10.0) as control:
                stats = control.stats()
            # Zero dropped queries across every swap.
            assert stats.failed_queries == 0
            assert stats.remine_failures == 0
            assert stats.generation == 1 + swaps


class TestClientRestartRetry:
    def test_retries_exactly_once_on_server_restart(self):
        """A bounced server costs the client one transparent retry."""
        source = CountingSource()
        server = RuleServer(source, min_confidence=0.5, port=0).start()
        host, port = server.address
        client = RuleClient(host, port, timeout=5.0)
        assert client.query([1]).generation == 1
        assert client.last_retries == 0

        server.stop()
        # Same port, fresh daemon — the old connection is dead.
        replacement = RuleServer(
            CountingSource(), min_confidence=0.5, host=host, port=port
        ).start()
        try:
            reply = client.query([1])
            assert reply.generation == 1
            assert client.last_retries == 1, (
                "the reconnect must be a single transparent retry"
            )
            # And the retried connection is again persistent.
            assert client.ping() == 1
            assert client.last_retries == 0
        finally:
            client.close()
            replacement.stop()

    def test_second_failure_propagates(self):
        """With the server gone for good, one retry then the error."""
        source = CountingSource()
        server = RuleServer(source, min_confidence=0.5, port=0).start()
        host, port = server.address
        client = RuleClient(host, port, timeout=2.0)
        assert client.ping() == 1
        server.stop()
        with pytest.raises(OSError):
            client.query([1])
        assert client.last_retries == 1
        client.close()
