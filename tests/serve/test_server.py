"""End-to-end daemon tests: serve, query, stats, re-mine, degrade."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.core.apriori import Apriori
from repro.core.rules import rules_from_result
from repro.data.io import write_dat
from repro.serve import (
    CallableSource,
    DatFileSource,
    JournalSource,
    RuleClient,
    RuleServer,
    ServerError,
    StreamingSource,
)

MIN_CONFIDENCE = 0.4


@pytest.fixture
def serving(supermarket_db):
    """A running server over the supermarket DB + a connected client."""
    source = CallableSource(
        lambda: Apriori(0.2).mine(supermarket_db), "supermarket"
    )
    with RuleServer(source, min_confidence=MIN_CONFIDENCE, port=0) as server:
        host, port = server.address
        with RuleClient(host, port, timeout=5.0) as client:
            yield server, client


class TestQueryPath:
    def test_ping(self, serving):
        _, client = serving
        assert client.ping() == 1

    def test_query_matches_direct_index(self, serving, supermarket_db):
        server, client = serving
        basket = list(supermarket_db)[0][:2]
        reply = client.query(basket)
        direct = server.index.query(list(basket))
        assert reply.generation == 1
        assert reply.suggestions == direct

    def test_known_rule_comes_back(self, serving, supermarket_db):
        # The paper's worked example: the supermarket DB has confident
        # rules, so a full transaction minus one item suggests something.
        server, client = serving
        result = Apriori(0.2).mine(supermarket_db)
        rules = rules_from_result(result, MIN_CONFIDENCE)
        assert rules, "fixture DB must produce rules"
        rule = rules[0]
        reply = client.query(list(rule.antecedent))
        assert rule.consequent[0] in reply.items

    def test_bad_requests_are_errors_not_disconnects(self, serving):
        _, client = serving
        with pytest.raises(ServerError):
            client.query([])
        reply = client.request({"op": "no-such-op"})
        assert reply["status"] == "error"
        # The connection survives an error reply.
        assert client.ping() == 1
        assert client.last_retries == 0

    def test_malformed_line_gets_error_reply(self, serving):
        server, _ = serving
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["status"] == "error"

    def test_stats_counts_queries(self, serving):
        _, client = serving
        for _ in range(5):
            client.query([1, 2])
        stats = client.stats()
        assert stats.queries == 5
        assert stats.failed_queries == 0
        assert stats.query_p50_ms >= 0.0
        assert stats.query_p99_ms >= stats.query_p50_ms >= 0.0
        assert stats.generation == 1
        assert stats.model["num_rules"] >= 1


class TestHttpFacade:
    def read_http(self, server, path):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(
                f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode()
            )
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        return status, json.loads(body)

    def test_get_stats(self, serving):
        server, _ = serving
        status, payload = self.read_http(server, "/stats")
        assert status == 200
        assert payload["generation"] == 1

    def test_get_query(self, serving, supermarket_db):
        server, _ = serving
        basket = list(supermarket_db)[0]
        path = "/query?basket=" + ",".join(map(str, basket[:2]))
        status, payload = self.read_http(server, path)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["basket"] == sorted(set(basket[:2]))

    def test_get_unknown_path_is_404(self, serving):
        server, _ = serving
        status, payload = self.read_http(server, "/nope")
        assert status == 404
        assert payload["status"] == "error"


class TestRemineSwap:
    def test_generation_advances(self, serving):
        _, client = serving
        reply = client.remine(wait=True)
        assert reply["status"] == "ok"
        assert reply["generation"] == 2
        assert reply["remine_failures"] == 0
        assert client.ping() == 2

    def test_concurrent_remine_reports_busy(self, supermarket_db):
        release = threading.Event()

        def slow_mine():
            release.wait(10.0)
            return Apriori(0.2).mine(supermarket_db)

        source = CallableSource(slow_mine, "slow")
        # start() mines once synchronously; let that one through fast.
        release.set()
        with RuleServer(source, min_confidence=0.4, port=0) as server:
            release.clear()
            host, port = server.address
            with RuleClient(host, port, timeout=5.0) as client:
                first = client.remine(wait=False)
                assert first["status"] == "ok" and first["started"]
                second = client.remine(wait=False)
                assert second["status"] == "busy"
                stats = client.stats()
                assert stats.remine_in_progress
                release.set()
                done = client.remine(wait=True)
                assert done["generation"] >= 2

    def test_failed_remine_keeps_serving_old_model(self, supermarket_db):
        calls = {"n": 0}

        def flaky_mine():
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("store vanished mid-remine")
            return Apriori(0.2).mine(supermarket_db)

        source = CallableSource(flaky_mine, "flaky")
        with RuleServer(source, min_confidence=0.4, port=0) as server:
            host, port = server.address
            with RuleClient(host, port, timeout=5.0) as client:
                before = client.query([list(supermarket_db)[0][0]])
                reply = client.remine(wait=True)
                # Degradation contract: generation did NOT advance, the
                # failure is surfaced, queries still answer identically.
                assert reply["generation"] == 1
                assert reply["remine_failures"] == 1
                assert "store vanished" in reply["last_remine_error"]
                after = client.query([list(supermarket_db)[0][0]])
                assert after.generation == 1
                assert after.suggestions == before.suggestions
                stats = client.stats()
                assert stats.remine_failures == 1
                assert stats.failed_queries == 0
                assert "store vanished" in stats.last_remine_error


class TestPeriodicRemine:
    def test_timer_drives_generations(self, supermarket_db):
        source = CallableSource(
            lambda: Apriori(0.2).mine(supermarket_db), "timer"
        )
        server = RuleServer(
            source, min_confidence=0.4, port=0, remine_every=0.05
        )
        with server:
            host, port = server.address
            with RuleClient(host, port, timeout=5.0) as client:
                deadline = threading.Event()
                for _ in range(100):
                    if client.ping() >= 3:
                        break
                    deadline.wait(0.05)
                assert client.ping() >= 3
        assert server.stats.snapshot()["remine_failures"] == 0


class TestSources:
    def test_dat_file_source(self, tmp_path, supermarket_db):
        path = tmp_path / "db.dat"
        write_dat(supermarket_db, path)
        source = DatFileSource(path, 0.2)
        result = source.mine()
        assert result.frequent == Apriori(0.2).mine(supermarket_db).frequent
        assert str(path) in source.describe()

    def test_streaming_source(self, supermarket_db):
        rows = [list(t) for t in supermarket_db]
        source = StreamingSource(lambda: iter(rows), 0.2, label="rows")
        result = source.mine()
        assert result.frequent == Apriori(0.2).mine(supermarket_db).frequent
        assert "rows" in source.describe()

    def test_journal_source_restores_without_mining(
        self, tmp_path, supermarket_db
    ):
        from repro.parallel.native import NativeCountDistribution

        miner = NativeCountDistribution(
            0.2, 2, checkpoint_dir=tmp_path / "ckpt"
        )
        mined = miner.mine(supermarket_db)
        source = JournalSource(tmp_path / "ckpt")
        restored = source.mine()
        assert restored.frequent == mined.frequent
        assert restored.num_transactions == mined.num_transactions

    def test_journal_source_missing_journal_raises(self, tmp_path):
        from repro.checkpoint import CheckpointError

        with pytest.raises(CheckpointError):
            JournalSource(tmp_path / "nowhere").mine()

    def test_store_source_native_remine(self, tmp_path, supermarket_db):
        from repro.core.mmapdb import write_packed_file

        store = tmp_path / "db.packed"
        write_packed_file(supermarket_db.to_packed(), store)
        from repro.serve import StoreSource

        source = StoreSource(store, 0.2, processors=2)
        result = source.mine()
        assert result.frequent == Apriori(0.2).mine(supermarket_db).frequent

    def test_store_source_rejects_bad_algorithm(self, tmp_path):
        from repro.serve import StoreSource

        with pytest.raises(ValueError, match="algorithm"):
            StoreSource(tmp_path / "x.packed", 0.2, algorithm="simulated")


class TestServerLifecycle:
    def test_server_validates_confidence(self, supermarket_db):
        source = CallableSource(
            lambda: Apriori(0.2).mine(supermarket_db), "x"
        )
        with pytest.raises(ValueError, match="min_confidence"):
            RuleServer(source, min_confidence=0.0)
        with pytest.raises(ValueError, match="remine_every"):
            RuleServer(source, remine_every=-1.0)

    def test_shutdown_op_unblocks_wait(self, serving):
        server, client = serving
        waiter = threading.Thread(
            target=server.wait_for_shutdown_request, daemon=True
        )
        waiter.start()
        assert client.shutdown() == 1
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()

    def test_double_start_rejected(self, serving):
        server, _ = serving
        with pytest.raises(RuntimeError, match="already started"):
            server.start()

    def test_stop_is_idempotent(self, supermarket_db):
        source = CallableSource(
            lambda: Apriori(0.2).mine(supermarket_db), "x"
        )
        server = RuleServer(source, min_confidence=0.4, port=0).start()
        server.stop()
        server.stop()
