"""RuleIndex: the antecedent-indexed, prefix-enumerated rule model."""

from __future__ import annotations

import pytest

from repro.core.apriori import Apriori, AprioriResult
from repro.core.rules import generate_rules, rules_from_result
from repro.serve.model import RuleIndex, Suggestion


def mined(db, min_support=0.2):
    return Apriori(min_support).mine(db)


def brute_force_matches(rules, basket):
    basket = set(basket)
    return sorted(
        (r for r in rules if set(r.antecedent) <= basket),
        key=lambda r: (r.antecedent, r.consequent),
    )


class TestIndexConstruction:
    def test_from_result_counts_rules(self, supermarket_db):
        result = mined(supermarket_db)
        rules = rules_from_result(result, 0.5)
        index = RuleIndex.from_result(result, 0.5)
        assert index.num_rules == len(rules) == len(index)

    def test_generation_and_metadata(self, supermarket_db):
        result = mined(supermarket_db)
        index = RuleIndex.from_result(
            result, 0.5, generation=7, source="unit-test"
        )
        description = index.describe()
        assert description["generation"] == 7
        assert description["source"] == "unit-test"
        assert description["num_rules"] == index.num_rules
        assert description["min_confidence"] == 0.5
        assert description["age_seconds"] >= 0.0

    def test_singleton_only_result_builds_empty_index(self):
        # The edge the re-mine path must survive: a support threshold so
        # high only single items are frequent — no rules, not a crash.
        result = AprioriResult(
            frequent={(1,): 9, (2,): 8},
            min_support=0.5,
            min_count=5,
            num_transactions=10,
        )
        index = RuleIndex.from_result(result, 0.5)
        assert index.num_rules == 0
        assert index.query([1, 2]) == []

    def test_empty_result_builds_empty_index(self):
        result = AprioriResult(
            frequent={}, min_support=0.9, min_count=9, num_transactions=10
        )
        index = RuleIndex.from_result(result, 0.9)
        assert index.query([1, 2, 3]) == []


class TestSubsetEnumeration:
    def test_matching_rules_equals_brute_force(self, medium_quest_db):
        result = mined(medium_quest_db, min_support=0.05)
        rules = rules_from_result(result, 0.3)
        index = RuleIndex(rules)
        for transaction in list(medium_quest_db)[:40]:
            via_index = sorted(
                index.matching_rules(transaction),
                key=lambda r: (r.antecedent, r.consequent),
            )
            assert via_index == brute_force_matches(rules, transaction)

    def test_unsorted_and_duplicated_basket_items(self, supermarket_db):
        result = mined(supermarket_db)
        index = RuleIndex.from_result(result, 0.5)
        basket = list(supermarket_db)[0]
        shuffled = list(basket)[::-1] + [basket[0]]
        assert index.query(shuffled) == index.query(basket)

    def test_empty_basket_matches_nothing(self, supermarket_db):
        index = RuleIndex.from_result(mined(supermarket_db), 0.5)
        assert list(index.matching_rules([])) == []
        assert index.query([]) == []

    def test_unknown_items_match_nothing(self, supermarket_db):
        index = RuleIndex.from_result(mined(supermarket_db), 0.5)
        assert index.query([999_999, 888_888]) == []


class TestQueryRanking:
    def test_never_suggests_basket_items(self, medium_quest_db):
        result = mined(medium_quest_db, min_support=0.05)
        index = RuleIndex.from_result(result, 0.3)
        for transaction in list(medium_quest_db)[:40]:
            for suggestion in index.query(transaction):
                assert suggestion.item not in set(transaction)

    def test_each_item_suggested_once_via_best_rule(self, medium_quest_db):
        result = mined(medium_quest_db, min_support=0.05)
        rules = rules_from_result(result, 0.3)
        index = RuleIndex(rules)
        for transaction in list(medium_quest_db)[:40]:
            suggestions = index.query(transaction)
            items = [s.item for s in suggestions]
            assert len(items) == len(set(items))
            # Each suggestion's confidence is the max over matching
            # rules whose consequent contains that item.
            matches = brute_force_matches(rules, transaction)
            for suggestion in suggestions:
                best = max(
                    r.confidence
                    for r in matches
                    if suggestion.item in r.consequent
                )
                assert suggestion.confidence == pytest.approx(best)

    def test_ranked_by_confidence_then_support(self, medium_quest_db):
        result = mined(medium_quest_db, min_support=0.05)
        index = RuleIndex.from_result(result, 0.3)
        for transaction in list(medium_quest_db)[:40]:
            suggestions = index.query(transaction)
            keys = [(-s.confidence, -s.support, s.item) for s in suggestions]
            assert keys == sorted(keys)

    def test_top_caps_suggestions(self, medium_quest_db):
        result = mined(medium_quest_db, min_support=0.05)
        index = RuleIndex.from_result(result, 0.3)
        basket = max(medium_quest_db, key=len)
        full = index.query(basket)
        if len(full) < 2:
            pytest.skip("basket too weak to exercise top-n")
        assert index.query(basket, top=1) == full[:1]
        assert index.query(basket, top=len(full) + 5) == full


class TestSuggestionCodec:
    def test_round_trips_through_dict(self, supermarket_db):
        index = RuleIndex.from_result(mined(supermarket_db), 0.5)
        basket = list(supermarket_db)[0]
        for suggestion in index.query(basket):
            assert Suggestion.from_dict(suggestion.to_dict()) == suggestion


class TestDirectRuleConstruction:
    def test_index_from_generated_rules(self, supermarket_db):
        result = mined(supermarket_db)
        rules = generate_rules(result.frequent, result.num_transactions, 0.5)
        index = RuleIndex(rules, generation=3)
        assert index.generation == 3
        assert index.num_rules == len(rules)
