"""Top-level package surface tests."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        """The flow shown in the package docstring must actually work."""
        from repro import Apriori, generate_rules
        from repro.data import supermarket

        db = supermarket()
        result = Apriori(min_support=0.4).mine(db)
        rules = generate_rules(result.frequent, len(db), min_confidence=0.6)
        assert rules

    def test_parallel_docstring_flow(self):
        from repro.data import supermarket
        from repro.parallel import mine_parallel

        db = supermarket()
        result = mine_parallel(
            "HD", db, min_support=0.4, num_processors=8, switch_threshold=100
        )
        assert result.algorithm == "HD"

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.cluster
        import repro.core
        import repro.data
        import repro.experiments
        import repro.parallel

        for module in (
            repro.analysis,
            repro.cluster,
            repro.core,
            repro.data,
            repro.experiments,
            repro.parallel,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
