"""Tests for the Count Distribution formulation."""

import pytest

from repro.cluster.machine import CRAY_T3E
from repro.parallel.count_distribution import CountDistribution


@pytest.fixture
def result(medium_quest_db):
    return CountDistribution(0.05, 4).mine(medium_quest_db)


class TestCountDistribution:
    def test_grid_is_cd_shaped(self, result):
        for pass_stats in result.passes:
            assert pass_stats.grid == (1, 4)

    def test_no_candidate_imbalance(self, result):
        """Candidates are replicated, so imbalance is zero by definition."""
        for pass_stats in result.passes:
            assert pass_stats.candidate_imbalance == 0.0

    def test_each_transaction_counted_once(self, result, medium_quest_db):
        """CD processes each transaction once per pass (no redundancy)."""
        for pass_stats in result.passes:
            if pass_stats.k >= 2 and pass_stats.tree_partitions == 1:
                assert pass_stats.subset_stats.transactions_processed == len(
                    medium_quest_db
                )

    def test_reduction_charged_every_pass(self, result):
        assert result.breakdown.get("reduce", 0.0) > 0.0

    def test_tree_build_not_parallelized(self, medium_quest_db):
        """Per-processor tree-build time is independent of P."""
        small = CountDistribution(0.05, 2).mine(medium_quest_db)
        large = CountDistribution(0.05, 8).mine(medium_quest_db)
        assert small.breakdown["tree_build"] == pytest.approx(
            large.breakdown["tree_build"]
        )

    def test_subset_work_scales_down_with_processors(self, medium_quest_db):
        small = CountDistribution(0.05, 2).mine(medium_quest_db)
        large = CountDistribution(0.05, 8).mine(medium_quest_db)
        assert large.breakdown["subset"] < small.breakdown["subset"]

    def test_memory_pressure_forces_multiple_partitions(self, medium_quest_db):
        miner = CountDistribution(
            0.05, 2, machine=CRAY_T3E.with_memory(20)
        )
        result = miner.mine(medium_quest_db)
        heavy_passes = [
            p for p in result.passes if p.k >= 2 and p.num_candidates > 20
        ]
        assert heavy_passes
        for pass_stats in heavy_passes:
            assert pass_stats.tree_partitions > 1

    def test_memory_pressure_costs_more_time(self, medium_quest_db):
        free = CountDistribution(0.05, 2).mine(medium_quest_db)
        tight = CountDistribution(
            0.05, 2, machine=CRAY_T3E.with_memory(20)
        ).mine(medium_quest_db)
        assert tight.total_time > free.total_time

    def test_io_charged_per_scan(self, medium_quest_db):
        one_scan = CountDistribution(0.05, 2, charge_io=True).mine(
            medium_quest_db
        )
        multi_scan = CountDistribution(
            0.05,
            2,
            machine=CRAY_T3E.with_memory(20),
            charge_io=True,
        ).mine(medium_quest_db)
        assert multi_scan.breakdown["io"] > one_scan.breakdown["io"]

    def test_single_processor_has_no_comm(self, medium_quest_db):
        result = CountDistribution(0.05, 1).mine(medium_quest_db)
        assert result.breakdown.get("reduce", 0.0) == 0.0
        assert result.breakdown.get("comm", 0.0) == 0.0
