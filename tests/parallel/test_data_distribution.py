"""Tests for the Data Distribution formulation (and DD+comm)."""

import pytest

from repro.parallel.data_distribution import DataDistribution


@pytest.fixture
def result(medium_quest_db):
    return DataDistribution(0.05, 4).mine(medium_quest_db)


class TestDataDistribution:
    def test_rejects_unknown_comm_scheme(self):
        with pytest.raises(ValueError, match="comm_scheme"):
            DataDistribution(0.1, 2, comm_scheme="teleport")

    def test_name_reflects_variant(self):
        assert DataDistribution(0.1, 2).name == "DD"
        assert DataDistribution(0.1, 2, comm_scheme="ring").name == "DD+comm"

    def test_grid_is_dd_shaped(self, result):
        for pass_stats in result.passes:
            if pass_stats.k >= 2:
                assert pass_stats.grid == (4, 1)

    def test_redundant_work_every_processor_sees_every_transaction(
        self, result, medium_quest_db
    ):
        for pass_stats in result.passes:
            if pass_stats.k >= 2:
                assert pass_stats.subset_stats.transactions_processed == (
                    4 * len(medium_quest_db)
                )

    def test_round_robin_balances_candidate_counts(self, result):
        for pass_stats in result.passes:
            if pass_stats.k >= 2 and pass_stats.num_candidates >= 4:
                assert pass_stats.candidate_imbalance < 0.5

    def test_naive_comm_costs_more_than_ring(self, medium_quest_db):
        naive = DataDistribution(0.05, 4).mine(medium_quest_db)
        ring = DataDistribution(0.05, 4, comm_scheme="ring").mine(
            medium_quest_db
        )
        assert naive.frequent == ring.frequent
        naive_comm = naive.breakdown.get("comm", 0.0)
        ring_comm = ring.breakdown.get("comm", 0.0)
        assert naive_comm > ring_comm

    def test_dd_slower_than_dd_comm(self, medium_quest_db):
        """The paper's DD+comm experiment: same computation, better comm."""
        naive = DataDistribution(0.05, 8).mine(medium_quest_db)
        ring = DataDistribution(0.05, 8, comm_scheme="ring").mine(
            medium_quest_db
        )
        assert naive.total_time > ring.total_time

    def test_single_processor_degenerates_to_serial(self, medium_quest_db):
        result = DataDistribution(0.05, 1).mine(medium_quest_db)
        assert result.breakdown.get("comm", 0.0) == 0.0

    def test_tree_build_is_parallelized(self, medium_quest_db):
        """Each processor builds only its own M/P candidates."""
        small = DataDistribution(0.05, 2).mine(medium_quest_db)
        large = DataDistribution(0.05, 8).mine(medium_quest_db)
        assert large.breakdown["tree_build"] < small.breakdown["tree_build"]
