"""Tests for the runner facade and serial cross-check."""

import pytest

from repro.core.apriori import Apriori
from repro.parallel.base import MiningResult
from repro.parallel.runner import (
    ALGORITHMS,
    compare_with_serial,
    make_miner,
    mine_parallel,
)


class TestMakeMiner:
    def test_known_algorithms(self):
        for name in ALGORITHMS:
            miner = make_miner(name, 0.1, 4)
            assert miner.num_processors == 4

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_miner("FOO", 0.1, 4)

    def test_dd_comm_variant_configured(self):
        miner = make_miner("DD+comm", 0.1, 4)
        assert miner.comm_scheme == "ring"
        assert miner.name == "DD+comm"

    def test_kwargs_forwarded(self):
        miner = make_miner("HD", 0.1, 4, switch_threshold=123)
        assert miner.switch_threshold == 123


class TestMineParallel:
    def test_runs_end_to_end(self, tiny_db):
        result = mine_parallel("CD", tiny_db, 0.3, 2)
        assert result.algorithm == "CD"
        assert result.num_processors == 2
        assert result.total_time > 0

    def test_result_metadata(self, tiny_db):
        result = mine_parallel("IDD", tiny_db, 0.3, 3)
        assert result.num_transactions == len(tiny_db)
        assert result.min_count >= 1
        assert isinstance(result, MiningResult)


class TestCompareWithSerial:
    def test_passes_on_correct_result(self, tiny_db):
        result = mine_parallel("HD", tiny_db, 0.3, 2, switch_threshold=5)
        serial = compare_with_serial(result, tiny_db)
        assert serial.frequent == result.frequent

    def test_accepts_precomputed_serial(self, tiny_db):
        result = mine_parallel("CD", tiny_db, 0.3, 2)
        serial = Apriori(0.3).mine(tiny_db)
        assert compare_with_serial(result, tiny_db, serial) is serial

    def test_detects_divergence(self, tiny_db):
        result = mine_parallel("CD", tiny_db, 0.3, 2)
        result.frequent.pop(next(iter(result.frequent)))
        with pytest.raises(AssertionError, match="diverged"):
            compare_with_serial(result, tiny_db)

    def test_detects_extra_itemsets(self, tiny_db):
        result = mine_parallel("CD", tiny_db, 0.3, 2)
        result.frequent[(97, 98, 99)] = 5
        with pytest.raises(AssertionError, match="diverged"):
            compare_with_serial(result, tiny_db)


class TestResultHelpers:
    def test_pass_time_sums_to_total(self, medium_quest_db):
        result = mine_parallel("CD", medium_quest_db, 0.05, 2)
        total = sum(result.pass_time(p.k) for p in result.passes)
        assert total == pytest.approx(result.total_time, rel=1e-9)

    def test_pass_time_unknown_pass(self, tiny_db):
        result = mine_parallel("CD", tiny_db, 0.3, 2)
        with pytest.raises(KeyError):
            result.pass_time(99)

    def test_overhead_fractions_sum_to_one(self, medium_quest_db):
        result = mine_parallel("IDD", medium_quest_db, 0.05, 4)
        total_fraction = sum(
            result.overhead_fraction(c) for c in result.breakdown
        )
        assert total_fraction == pytest.approx(1.0, rel=1e-6)

    def test_per_processor_breakdowns_present(self, medium_quest_db):
        result = mine_parallel("IDD", medium_quest_db, 0.05, 4)
        assert len(result.per_processor) == 4
        assert result.compute_imbalance("subset") >= 0.0

    def test_compute_imbalance_empty_category(self, tiny_db):
        result = mine_parallel("CD", tiny_db, 0.3, 2)
        assert result.compute_imbalance("no_such_category") == 0.0

    def test_itemsets_of_size(self, medium_quest_db):
        result = mine_parallel("CD", medium_quest_db, 0.05, 2)
        for itemset in result.itemsets_of_size(2):
            assert len(itemset) == 2


class TestParallelCandgen:
    def test_results_unchanged(self, medium_quest_db):
        baseline = mine_parallel("CD", medium_quest_db, 0.05, 4)
        parallel = mine_parallel(
            "CD", medium_quest_db, 0.05, 4, parallel_candgen=True
        )
        assert parallel.frequent == baseline.frequent

    def test_candgen_time_reduced_for_large_candidate_sets(
        self, medium_quest_db
    ):
        baseline = mine_parallel("IDD", medium_quest_db, 0.05, 8)
        parallel = mine_parallel(
            "IDD", medium_quest_db, 0.05, 8, parallel_candgen=True
        )
        assert (
            parallel.breakdown["candgen"] < baseline.breakdown["candgen"]
        )

    def test_single_processor_identical(self, tiny_db):
        baseline = mine_parallel("CD", tiny_db, 0.3, 1)
        parallel = mine_parallel(
            "CD", tiny_db, 0.3, 1, parallel_candgen=True
        )
        assert parallel.total_time == pytest.approx(baseline.total_time)
