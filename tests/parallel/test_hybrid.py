"""Tests for the Hybrid Distribution formulation and its grid selection."""

import pytest

from repro.parallel.count_distribution import CountDistribution
from repro.parallel.hybrid import HybridDistribution, choose_grid
from repro.parallel.intelligent_dd import IntelligentDataDistribution


class TestChooseGrid:
    def test_paper_table2_schedule(self):
        """Pin the exact Table II configurations (P=64, m=50K)."""
        expected = {
            351_000: 8,  # 8 x 8
            4_348_000: 64,  # 64 x 1 (IDD)
            115_000: 4,  # 4 x 16
            76_000: 2,  # 2 x 32
            56_000: 2,  # 2 x 32
            34_000: 1,  # 1 x 64 (CD)
        }
        for candidates, g in expected.items():
            assert choose_grid(candidates, 50_000, 64) == g

    def test_below_threshold_is_cd(self):
        assert choose_grid(10, 100, 8) == 1

    def test_at_threshold_is_cd(self):
        assert choose_grid(100, 100, 8) == 1

    def test_huge_candidate_set_is_idd(self):
        assert choose_grid(10**9, 10, 8) == 8

    def test_result_divides_p(self):
        for m in (1, 10, 100, 1000, 12345):
            for p in (1, 2, 6, 12, 64):
                g = choose_grid(m, 7, p)
                assert p % g == 0
                assert 1 <= g <= p

    def test_rounds_up_to_next_divisor(self):
        # ceil(115/50) = 3; next divisor of 64 is 4.
        assert choose_grid(115, 50, 64) == 4

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            choose_grid(10, 0, 4)

    def test_rejects_bad_processors(self):
        with pytest.raises(ValueError):
            choose_grid(10, 5, 0)


class TestHybridDistribution:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            HybridDistribution(0.1, 4, switch_threshold=0)

    def test_grid_recorded_per_pass(self, medium_quest_db):
        result = HybridDistribution(0.05, 4, switch_threshold=50).mine(
            medium_quest_db
        )
        for pass_stats in result.passes:
            rows, cols = pass_stats.grid
            assert rows * cols == 4

    def test_large_threshold_behaves_like_cd(self, medium_quest_db):
        hd = HybridDistribution(0.05, 4, switch_threshold=10**9).mine(
            medium_quest_db
        )
        cd = CountDistribution(0.05, 4).mine(medium_quest_db)
        assert hd.frequent == cd.frequent
        for pass_stats in hd.passes:
            assert pass_stats.grid == (1, 4)
        # Same computation, same cost structure (small numerical tolerance).
        assert hd.total_time == pytest.approx(cd.total_time, rel=1e-6)

    def test_tiny_threshold_behaves_like_idd(self, medium_quest_db):
        hd = HybridDistribution(0.05, 4, switch_threshold=1).mine(
            medium_quest_db
        )
        idd = IntelligentDataDistribution(0.05, 4).mine(medium_quest_db)
        assert hd.frequent == idd.frequent
        for pass_stats in hd.passes:
            if pass_stats.k >= 2:
                assert pass_stats.grid == (4, 1)
        assert hd.total_time == pytest.approx(idd.total_time, rel=1e-6)

    def test_grid_tracks_candidate_count(self, medium_quest_db):
        result = HybridDistribution(0.05, 4, switch_threshold=50).mine(
            medium_quest_db
        )
        for pass_stats in result.passes:
            if pass_stats.k < 2:
                continue
            g = choose_grid(pass_stats.num_candidates, 50, 4)
            assert pass_stats.grid[0] == g

    def test_reduction_along_rows_charged(self, medium_quest_db):
        result = HybridDistribution(0.05, 4, switch_threshold=50).mine(
            medium_quest_db
        )
        assert result.breakdown.get("reduce", 0.0) > 0.0

    def test_non_divisible_grid_never_chosen(self, medium_quest_db):
        result = HybridDistribution(0.05, 6, switch_threshold=30).mine(
            medium_quest_db
        )
        for pass_stats in result.passes:
            rows, cols = pass_stats.grid
            assert rows * cols == 6

    def test_single_processor(self, medium_quest_db):
        result = HybridDistribution(0.05, 1, switch_threshold=10).mine(
            medium_quest_db
        )
        assert result.num_processors == 1
