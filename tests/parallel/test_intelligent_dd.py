"""Tests for the Intelligent Data Distribution formulation."""

import pytest

from repro.cluster.machine import CRAY_T3E
from repro.parallel.data_distribution import DataDistribution
from repro.parallel.intelligent_dd import IntelligentDataDistribution


@pytest.fixture
def result(medium_quest_db):
    return IntelligentDataDistribution(0.05, 4).mine(medium_quest_db)


class TestIntelligentDataDistribution:
    def test_grid_is_idd_shaped(self, result):
        for pass_stats in result.passes:
            if pass_stats.k >= 2:
                assert pass_stats.grid == (4, 1)

    def test_less_traversal_work_than_dd(self, medium_quest_db):
        """The bitmap filter must cut root expansions and leaf visits."""
        dd = DataDistribution(0.05, 4).mine(medium_quest_db)
        idd = IntelligentDataDistribution(0.05, 4).mine(medium_quest_db)
        compared = 0
        for dd_pass, idd_pass in zip(dd.passes, idd.passes):
            # Tiny candidate sets degenerate to single-leaf trees where
            # the root expands nothing; compare substantial passes only.
            if dd_pass.k < 2 or dd_pass.num_candidates < 100:
                continue
            compared += 1
            assert (
                idd_pass.subset_stats.root_items_expanded
                < dd_pass.subset_stats.root_items_expanded
            )
            assert (
                idd_pass.subset_stats.leaf_visits
                <= dd_pass.subset_stats.leaf_visits
            )
        assert compared > 0

    def test_faster_than_dd(self, medium_quest_db):
        dd = DataDistribution(0.05, 8).mine(medium_quest_db)
        idd = IntelligentDataDistribution(0.05, 8).mine(medium_quest_db)
        assert idd.total_time < dd.total_time

    def test_leaf_visits_scale_down_with_processors(self, medium_quest_db):
        """Figure 11's IDD curve: visits per transaction fall with P."""
        from repro.experiments.figure11 import aggregate_leaf_visits

        few = IntelligentDataDistribution(0.05, 2).mine(medium_quest_db)
        many = IntelligentDataDistribution(0.05, 8).mine(medium_quest_db)
        assert aggregate_leaf_visits(many) < aggregate_leaf_visits(few)

    def test_bitmap_ablation_increases_work(self, medium_quest_db):
        with_bitmap = IntelligentDataDistribution(0.05, 4).mine(
            medium_quest_db
        )
        without_bitmap = IntelligentDataDistribution(
            0.05, 4, use_bitmap=False
        ).mine(medium_quest_db)
        assert without_bitmap.frequent == with_bitmap.frequent
        assert without_bitmap.total_time >= with_bitmap.total_time

    def test_refine_threshold_accepted(self, medium_quest_db):
        refined = IntelligentDataDistribution(
            0.05, 4, refine_threshold=10
        ).mine(medium_quest_db)
        plain = IntelligentDataDistribution(0.05, 4).mine(medium_quest_db)
        assert refined.frequent == plain.frequent

    def test_no_overlap_machine_is_slower(self, medium_quest_db):
        overlapped = IntelligentDataDistribution(0.05, 4).mine(
            medium_quest_db
        )
        blocking = IntelligentDataDistribution(
            0.05, 4, machine=CRAY_T3E.with_overlap(False)
        ).mine(medium_quest_db)
        assert blocking.frequent == overlapped.frequent
        assert blocking.total_time >= overlapped.total_time

    def test_candidate_imbalance_recorded(self, result):
        heavy = [p for p in result.passes if p.num_candidates >= 8]
        assert heavy
        for pass_stats in heavy:
            assert pass_stats.candidate_imbalance >= 0.0

    def test_single_processor(self, medium_quest_db):
        result = IntelligentDataDistribution(0.05, 1).mine(medium_quest_db)
        assert result.breakdown.get("comm", 0.0) == 0.0


class TestPartitionStrategy:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="partition_strategy"):
            IntelligentDataDistribution(0.1, 2, partition_strategy="magic")

    def test_contiguous_strategy_same_results(self, medium_quest_db):
        packed = IntelligentDataDistribution(0.05, 4).mine(medium_quest_db)
        contiguous = IntelligentDataDistribution(
            0.05, 4, partition_strategy="contiguous"
        ).mine(medium_quest_db)
        assert contiguous.frequent == packed.frequent

    def test_contiguous_strategy_imbalances_more(self, medium_quest_db):
        packed = IntelligentDataDistribution(0.05, 8).mine(medium_quest_db)
        contiguous = IntelligentDataDistribution(
            0.05, 8, partition_strategy="contiguous"
        ).mine(medium_quest_db)
        packed_imbalance = max(
            p.candidate_imbalance for p in packed.passes if p.k >= 2
        )
        contiguous_imbalance = max(
            p.candidate_imbalance for p in contiguous.passes if p.k >= 2
        )
        assert contiguous_imbalance >= packed_imbalance


class TestSingleSource:
    def test_results_identical(self, medium_quest_db):
        normal = IntelligentDataDistribution(0.05, 4, charge_io=True).mine(
            medium_quest_db
        )
        single = IntelligentDataDistribution(
            0.05, 4, charge_io=True, single_source=True
        ).mine(medium_quest_db)
        assert single.frequent == normal.frequent

    def test_io_lands_on_processor_zero(self, medium_quest_db):
        single = IntelligentDataDistribution(
            0.05, 4, charge_io=True, single_source=True
        ).mine(medium_quest_db)
        io_by_pid = [p.get("io", 0.0) for p in single.per_processor]
        assert io_by_pid[0] > 0
        assert all(v == 0.0 for v in io_by_pid[1:])

    def test_distributed_io_spreads(self, medium_quest_db):
        normal = IntelligentDataDistribution(0.05, 4, charge_io=True).mine(
            medium_quest_db
        )
        io_by_pid = [p.get("io", 0.0) for p in normal.per_processor]
        assert all(v > 0 for v in io_by_pid)

    def test_no_io_flag_means_no_io(self, medium_quest_db):
        single = IntelligentDataDistribution(
            0.05, 4, single_source=True
        ).mine(medium_quest_db)
        assert single.breakdown.get("io", 0.0) == 0.0
