"""The central invariant: every parallel formulation equals serial Apriori.

The paper's formulations are exact reformulations of the same
computation — the frequent item-sets and their counts must match
bit-for-bit for any workload, processor count, machine, or algorithm
parameter.  These tests sweep that space.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import CRAY_T3E, IBM_SP2
from repro.core.apriori import Apriori
from repro.core.transaction import TransactionDB
from repro.parallel.runner import ALGORITHMS, compare_with_serial, mine_parallel

ALL_ALGORITHMS = sorted(ALGORITHMS)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("num_processors", [1, 2, 3, 4, 7])
def test_matches_serial_on_tiny_db(tiny_db, algorithm, num_processors):
    result = mine_parallel(algorithm, tiny_db, 0.3, num_processors)
    serial = Apriori(0.3).mine(tiny_db)
    assert result.frequent == serial.frequent


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("num_processors", [1, 4, 8])
def test_matches_serial_on_quest_db(
    medium_quest_db, algorithm, num_processors
):
    kwargs = {"switch_threshold": 100} if algorithm == "HD" else {}
    result = mine_parallel(
        algorithm, medium_quest_db, 0.05, num_processors, **kwargs
    )
    compare_with_serial(result, medium_quest_db)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_matches_serial_on_supermarket(supermarket_db, algorithm):
    result = mine_parallel(algorithm, supermarket_db, 0.4, 2)
    serial = Apriori(0.4).mine(supermarket_db)
    assert result.frequent == serial.frequent


@pytest.mark.parametrize(
    "algorithm", ["native-cd", "native-idd", "native-hd"]
)
def test_vertical_kernel_matches_serial(medium_quest_db, algorithm):
    result = mine_parallel(
        algorithm, medium_quest_db, 0.05, 3, kernel="vertical"
    )
    compare_with_serial(result, medium_quest_db)


@pytest.mark.parametrize("algorithm", ["CD", "IDD", "HD"])
def test_simulated_formulations_reject_vertical(tiny_db, algorithm):
    # The vertical kernel has no instrumented traversal for the cost
    # model to price, so the simulated formulations must refuse it
    # loudly instead of mis-pricing the run.
    with pytest.raises(ValueError, match="vertical"):
        mine_parallel(algorithm, tiny_db, 0.3, 2, kernel="vertical")


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_max_k_matches_serial_cap(medium_quest_db, algorithm):
    result = mine_parallel(algorithm, medium_quest_db, 0.05, 4, max_k=2)
    serial = Apriori(0.05, max_k=2).mine(medium_quest_db)
    assert result.frequent == serial.frequent


@pytest.mark.parametrize("algorithm", ["CD", "IDD", "HD"])
def test_sp2_machine_does_not_change_results(medium_quest_db, algorithm):
    t3e = mine_parallel(
        algorithm, medium_quest_db, 0.05, 4, machine=CRAY_T3E
    )
    sp2 = mine_parallel(
        algorithm, medium_quest_db, 0.05, 4, machine=IBM_SP2, charge_io=True
    )
    assert t3e.frequent == sp2.frequent


def test_memory_pressure_does_not_change_cd_results(medium_quest_db):
    free = mine_parallel("CD", medium_quest_db, 0.05, 4)
    tight = mine_parallel(
        "CD",
        medium_quest_db,
        0.05,
        4,
        machine=CRAY_T3E.with_memory(50),
    )
    assert free.frequent == tight.frequent
    assert any(p.tree_partitions > 1 for p in tight.passes)


def test_more_processors_than_transactions(tiny_db):
    for algorithm in ALL_ALGORITHMS:
        result = mine_parallel(algorithm, tiny_db, 0.3, 10)
        serial = Apriori(0.3).mine(tiny_db)
        assert result.frequent == serial.frequent


transactions_strategy = st.lists(
    st.sets(st.integers(0, 12), min_size=1, max_size=7).map(
        lambda s: tuple(sorted(s))
    ),
    min_size=2,
    max_size=24,
)


class TestEquivalenceProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        transactions_strategy,
        st.sampled_from(ALL_ALGORITHMS),
        st.integers(1, 6),
        st.floats(min_value=0.1, max_value=0.8),
    )
    def test_random_workloads(self, rows, algorithm, processors, support):
        db = TransactionDB.from_canonical(rows)
        kwargs = {"switch_threshold": 5} if algorithm == "HD" else {}
        result = mine_parallel(algorithm, db, support, processors, **kwargs)
        serial = Apriori(support).mine(db)
        assert result.frequent == serial.frequent

    @settings(max_examples=15, deadline=None)
    @given(transactions_strategy, st.integers(1, 5))
    def test_all_algorithms_agree_pairwise(self, rows, processors):
        db = TransactionDB.from_canonical(rows)
        results = [
            mine_parallel(a, db, 0.25, processors).frequent
            for a in ALL_ALGORITHMS
        ]
        for other in results[1:]:
            assert other == results[0]
