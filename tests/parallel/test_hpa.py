"""Tests for the HPA comparison baseline (Section III-E)."""

from repro.core.apriori import Apriori
from repro.parallel.hpa import HashPartitionedApriori, hpa_owner


class TestHpaOwner:
    def test_deterministic(self):
        assert hpa_owner((1, 2, 3), 8) == hpa_owner((1, 2, 3), 8)

    def test_in_range(self):
        for candidate in [(0,), (1, 2), (5, 9, 11), (100, 200, 300, 400)]:
            for p in (1, 2, 7, 64):
                assert 0 <= hpa_owner(candidate, p) < p

    def test_spreads_candidates(self):
        """The hash should not collapse everything onto one processor."""
        owners = {
            hpa_owner((i, i + 1), 8) for i in range(50)
        }
        assert len(owners) >= 4


class TestHashPartitionedApriori:
    def test_matches_serial(self, medium_quest_db):
        result = HashPartitionedApriori(0.05, 4).mine(medium_quest_db)
        serial = Apriori(0.05).mine(medium_quest_db)
        assert result.frequent == serial.frequent

    def test_matches_serial_single_processor(self, tiny_db):
        result = HashPartitionedApriori(0.3, 1).mine(tiny_db)
        serial = Apriori(0.3).mine(tiny_db)
        assert result.frequent == serial.frequent

    def test_candidate_imbalance_reported(self, medium_quest_db):
        result = HashPartitionedApriori(0.05, 8).mine(medium_quest_db)
        heavy = [p for p in result.passes if p.k >= 2 and p.num_candidates > 50]
        assert heavy
        # Hash placement balances only statistically; the imbalance is
        # recorded and finite.
        for pass_stats in heavy:
            assert 0.0 <= pass_stats.candidate_imbalance < 5.0

    def test_communication_charged(self, medium_quest_db):
        result = HashPartitionedApriori(0.05, 4).mine(medium_quest_db)
        assert result.breakdown.get("comm", 0.0) > 0.0

    def test_communication_bytes_grow_with_k(self, medium_quest_db):
        miner = HashPartitionedApriori(0.05, 4)
        volumes = [
            miner.communication_bytes_per_pass(medium_quest_db, k)
            for k in (2, 3, 4, 5)
        ]
        assert volumes == sorted(volumes)

    def test_communication_bytes_zero_for_one_processor(self, tiny_db):
        miner = HashPartitionedApriori(0.3, 1)
        assert miner.communication_bytes_per_pass(tiny_db, 2) == 0.0

    def test_max_k_respected(self, medium_quest_db):
        result = HashPartitionedApriori(0.05, 4, max_k=2).mine(
            medium_quest_db
        )
        assert all(len(s) <= 2 for s in result.frequent)
