"""Chaos suite: the native pool under injected failures.

Every test drives :class:`NativeCountDistribution` through the
deterministic fault-injection layer (:mod:`repro.faults`) and asserts
the paper's baseline invariant survives the failure: the mined result is
bit-identical to serial :class:`Apriori`.  The whole suite runs once per
**data plane** (the autouse ``data_plane`` fixture), so every recovery
scenario is exercised both over pickled pipes and over the shared-memory
store — and after every test the ``no_leaked_segments`` fixture asserts
no ``repro-*`` shared segment outlived the run.  The ``timeout`` marks
are enforced by pytest-timeout in CI, turning any recovery-path hang
into a fast failure instead of a stalled runner.
"""

import multiprocessing
from pathlib import Path

import pytest

from repro.core.apriori import Apriori
from repro.faults import FaultSpec
from repro.parallel.native import (
    DATA_PLANES,
    NativeCountDistribution,
    WorkerError,
    _SEGMENT_PREFIX,
)

# tiny_db at 0.3 support runs passes k = 1, 2, 3 (see conftest); the
# chaos scenarios below kill workers at every pool pass in turn.
TINY_SUPPORT = 0.3
TINY_POOL_PASSES = (2, 3)

pytestmark = pytest.mark.timeout(120)

_DEV_SHM = Path("/dev/shm")


def _has_start_method(name: str) -> bool:
    return name in multiprocessing.get_all_start_methods()


def _live_repro_segments() -> set:
    """Names of this repo's shared segments currently backing /dev/shm."""
    if not _DEV_SHM.is_dir():  # non-Linux: no observable backing files
        return set()
    return {p.name for p in _DEV_SHM.glob(f"{_SEGMENT_PREFIX}*")}


@pytest.fixture(params=DATA_PLANES, autouse=True)
def data_plane(request, monkeypatch):
    """Run every chaos scenario on both native data planes.

    Tests construct miners directly all over this module; rather than
    threading a parameter through every call site, the fixture makes the
    requested plane the constructor default (explicit ``data_plane=``
    arguments still win).
    """
    plane = request.param
    original = NativeCountDistribution.__init__

    def patched(self, *args, **kwargs):
        kwargs.setdefault("data_plane", plane)
        original(self, *args, **kwargs)

    monkeypatch.setattr(NativeCountDistribution, "__init__", patched)
    return plane


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Assert every test leaves /dev/shm exactly as it found it."""
    before = _live_repro_segments()
    yield
    leaked = _live_repro_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="module")
def tiny_serial():
    from repro.core.transaction import TransactionDB

    db = TransactionDB(
        [
            (1, 2, 3),
            (1, 2),
            (2, 3, 4),
            (1, 3, 4),
            (2, 4),
            (1, 2, 3, 4),
        ]
    )
    return db, Apriori(TINY_SUPPORT).mine(db)


class TestKilledWorkers:
    @pytest.mark.parametrize("k", TINY_POOL_PASSES)
    @pytest.mark.parametrize("when", ["before", "mid"])
    def test_kill_at_every_pass_every_worker(self, tiny_serial, k, when):
        """Acceptance: a worker killed at every pass k >= 2 in turn."""
        db, serial = tiny_serial
        for worker in range(3):
            spec = FaultSpec.parse(f"kill@{worker}:k{k}:{when}")
            miner = NativeCountDistribution(
                TINY_SUPPORT, 3, faults=spec, backoff_base=0.01
            )
            result = miner.mine(db)
            assert result.frequent == serial.frequent, (
                f"kill@{worker}:k{k}:{when} diverged from serial"
            )
            assert [r.worker for r in miner.fault_log] == [worker]
            assert miner.fault_log[0].failure == "died"
            assert miner.fault_log[0].action == "respawned"

    def test_kills_across_multiple_passes(self, tiny_serial):
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            faults="kill@0:k2,kill@1:k3:mid",
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert [(r.k, r.worker) for r in miner.fault_log] == [(2, 0), (3, 1)]

    def test_same_worker_killed_every_pass(self, tiny_serial):
        # The respawned replacement inherits the slot's *future* events,
        # so a second kill on the same slot still fires.
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT, 2, faults="kill@0:k2,kill@0:k3", backoff_base=0.01
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert [(r.k, r.worker) for r in miner.fault_log] == [(2, 0), (3, 0)]

    def test_all_workers_killed_same_pass(self, tiny_serial):
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            faults="kill@0:k2,kill@1:k2,kill@2:k2",
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert len(miner.fault_log) == 3

    def test_larger_db_kill(self, small_quest_db):
        serial = Apriori(0.02).mine(small_quest_db)
        miner = NativeCountDistribution(
            0.02, 4, faults="kill@2:k2", backoff_base=0.01
        )
        result = miner.mine(small_quest_db)
        assert result.frequent == serial.frequent


class TestSlowReplies:
    @pytest.mark.timeout(60)
    def test_delay_past_timeout_recovers(self, tiny_serial):
        """A reply slower than recv_timeout is a failure, not a hang."""
        import time

        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            faults="delay@1:k2:30",
            recv_timeout=0.2,
            backoff_base=0.01,
        )
        start = time.monotonic()
        result = miner.mine(db)
        elapsed = time.monotonic() - start
        assert result.frequent == serial.frequent
        assert miner.fault_log[0].failure == "timeout"
        assert miner.fault_log[0].action == "respawned"
        # The injected delay is 30s; detection + recovery must not wait
        # it out (generous bound: many recv_timeouts, not one delay).
        assert elapsed < 15

    def test_delay_within_timeout_is_not_a_failure(self, tiny_serial):
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT, 2, faults="delay@0:k2:0.05", recv_timeout=30.0
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.fault_log == []


class TestCorruptReplies:
    @pytest.mark.parametrize("k", TINY_POOL_PASSES)
    def test_truncated_vector_recovers(self, tiny_serial, k):
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT, 3, faults=f"corrupt@1:k{k}", backoff_base=0.01
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.fault_log[0].failure == "corrupt"


class TestWorkerErrors:
    def test_error_frame_surfaces_in_exception(self, tiny_serial):
        """A worker-side exception is a structured error frame, not a
        silent death: the parent raises with the worker's message."""
        db, _ = tiny_serial
        miner = NativeCountDistribution(TINY_SUPPORT, 2, faults="error@0:k2")
        with pytest.raises(WorkerError, match="worker 0 failed at pass 2"):
            miner.mine(db)

    def test_error_message_includes_cause(self, tiny_serial):
        db, _ = tiny_serial
        miner = NativeCountDistribution(TINY_SUPPORT, 2, faults="error@1:k2")
        with pytest.raises(WorkerError, match="injected worker error"):
            miner.mine(db)


class TestDegradationLadder:
    def test_adoption_when_respawn_refused(self, tiny_serial):
        """refuse-spawn exhausts the respawn rung; a survivor adopts."""
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            2,
            faults="kill@0:k2,refuse-spawn:10",
            max_retries=1,
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.fault_log[0].action == "adopted"

    def test_adopted_block_counted_in_later_passes(self, tiny_serial):
        # Adoption at pass 2 must keep the block in the totals at pass 3.
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            faults="kill@2:k2,refuse-spawn:10",
            max_retries=0,
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent

    def test_inprocess_when_pool_collapses(self, tiny_serial):
        """Single worker, killed, respawn refused: mining continues
        in-process and still matches serial."""
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            1,
            faults="kill@0:k2,refuse-spawn:10",
            max_retries=1,
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.fault_log[0].action == "inprocess"

    def test_collapse_midway_through_passes(self, tiny_serial):
        # Collapse at pass 3 (after a healthy pass 2): the fallback path
        # must count every pass that remains.
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            1,
            faults="kill@0:k3,refuse-spawn:10",
            max_retries=0,
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent


class TestConcurrentSamePassFailures:
    """Multiple workers failing in one pass must recover independently.

    Regressions: the adoption rung used to treat same-pass failed peers
    as survivors — asking a dead one crashed the next recovery with a
    KeyError, and asking a slow-but-alive one could read its stale pass
    reply as the adopt result, double-counting its block.
    """

    def test_two_kills_same_pass_respawn_refused(self, tiny_serial):
        # Both workers die at pass 2 and respawn is refused: neither may
        # be asked to adopt the other's block; both degrade in-process.
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            2,
            faults="kill@0:k2,kill@1:k2,refuse-spawn:10",
            max_retries=0,
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert sorted(
            (r.worker, r.action) for r in miner.fault_log
        ) == [(0, "inprocess"), (1, "inprocess")]

    def test_two_kills_same_pass_survivor_adopts_both(self, tiny_serial):
        # With a genuine survivor present, it (and only it) adopts.
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            faults="kill@0:k2,kill@1:k2,refuse-spawn:10",
            max_retries=0,
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert [r.action for r in miner.fault_log] == ["adopted", "adopted"]

    @pytest.mark.timeout(60)
    def test_kill_plus_slow_peer_same_pass_respawn_refused(self, tiny_serial):
        # Worker 1 is slow-but-alive (timeout failure) while worker 0 is
        # dead and unrespawnable.  Worker 1 must not adopt worker 0's
        # block: its own recovery would then double-count it.
        import time

        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            2,
            faults="kill@0:k2,delay@1:k2:30,refuse-spawn:10",
            recv_timeout=0.2,
            max_retries=0,
            backoff_base=0.01,
        )
        start = time.monotonic()
        result = miner.mine(db)
        elapsed = time.monotonic() - start
        assert result.frequent == serial.frequent
        assert sorted(
            (r.worker, r.failure, r.action) for r in miner.fault_log
        ) == [(0, "died", "inprocess"), (1, "timeout", "inprocess")]
        assert elapsed < 15  # the 30s sleeper is terminated, not awaited

    def test_kill_plus_slow_peer_same_pass_both_respawn(self, tiny_serial):
        # Same concurrent failure, but respawning works: each failed slot
        # gets its own fresh replacement and the totals stay exact.
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            faults="kill@0:k2,delay@1:k2:30",
            recv_timeout=0.2,
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert sorted(
            (r.worker, r.action) for r in miner.fault_log
        ) == [(0, "respawned"), (1, "respawned")]


class TestStaleReplies:
    def test_read_reply_discards_mismatched_seq(self):
        """A reply echoing an older seq is 'stale', never a result —
        even when its payload has the expected length."""
        from multiprocessing import Pipe

        from repro.parallel.native import _WorkerPool

        pool = _WorkerPool.__new__(_WorkerPool)  # protocol check only
        pool._plane = "pickle"  # frame protocol; no shared segments
        parent, child = Pipe()
        try:
            # Late answer to request 7, then the answer to request 8;
            # ok-payloads carry (vector, build_s, intersect_s,
            # attach_s, peak_rss_bytes).
            child.send(("ok", 7, ([1, 2, 3], 0.0, 0.0, 0.0, 0)))
            child.send(("ok", 8, ([4, 5, 6], 0.0, 0.0, 0.0, 0)))
            vector, failure, _timings = pool._read_reply(
                parent, 0, 2, 3, seq=8
            )
            assert (vector, failure) == (None, "stale")
            vector, failure, _timings = pool._read_reply(
                parent, 0, 2, 3, seq=8
            )
            assert (vector, failure) == ([4, 5, 6], "")
        finally:
            parent.close()
            child.close()


class TestRandomizedFailures:
    """Property: any seeded sequence of single-worker failures across
    passes recovers counts identical to the reference kernel's."""

    @pytest.mark.parametrize("seed", range(6))
    def test_seeded_failure_sequences_fork(self, tiny_serial, seed):
        if not _has_start_method("fork"):
            pytest.skip("fork start method unavailable")
        db, serial = tiny_serial
        spec = FaultSpec.single_kills(
            seed, num_workers=3, passes=TINY_POOL_PASSES
        )
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            start_method="fork",
            faults=spec,
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent, (
            f"seed {seed} ({spec.format() or 'no faults'}) diverged"
        )
        assert len(miner.fault_log) == len(spec)

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.timeout(180)
    def test_seeded_failure_sequences_spawn(self, tiny_serial, seed):
        if not _has_start_method("spawn"):
            pytest.skip("spawn start method unavailable")
        db, serial = tiny_serial
        spec = FaultSpec.single_kills(
            seed, num_workers=2, passes=TINY_POOL_PASSES, probability=1.0
        )
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            2,
            start_method="spawn",
            faults=spec,
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert len(miner.fault_log) == len(spec)

    def test_reference_kernel_agrees_under_faults(self, tiny_serial):
        db, serial = tiny_serial
        for kernel in ("reference", "fast", "fast-np", "vertical"):
            miner = NativeCountDistribution(
                TINY_SUPPORT,
                3,
                kernel=kernel,
                faults="kill@0:k2,corrupt@1:k3",
                backoff_base=0.01,
            )
            result = miner.mine(db)
            assert result.frequent == serial.frequent

    def test_vertical_kernel_kill_mid_pass(self, tiny_serial):
        """Acceptance: the vertical kernel stays bit-identical under a
        kill-mid-pass schedule (runs on both planes via the autouse
        ``data_plane`` fixture).  The respawned replacement starts with
        a cold bitmap cache and must rebuild, not recover, its state."""
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            kernel="vertical",
            faults="kill@0:k2:mid,kill@1:k3",
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert [r.worker for r in miner.fault_log] == [0, 1]
        assert all(r.action == "respawned" for r in miner.fault_log)

    def test_fastnp_kernel_kill_mid_pass(self, tiny_serial):
        """fast-np under kill-mid-pass on both planes: the respawned
        replacement attaches the shared candidate plane cold, decodes
        its own counter and counts must not move."""
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            kernel="fast-np",
            faults="kill@0:k2:mid,kill@1:k3",
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert [r.worker for r in miner.fault_log] == [0, 1]
        assert all(r.action == "respawned" for r in miner.fault_log)

    def test_vertical_kernel_adoption_after_refused_spawn(self, tiny_serial):
        """Adopted holdings get bitmaps built on first use by the
        adopter — counts must not change."""
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            kernel="vertical",
            faults="kill@0:k2,refuse-spawn:9",
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.fault_log[0].action == "adopted"

    def test_fastnp_kernel_adoption_after_refused_spawn(self, tiny_serial):
        """An adopter counting a dead peer's holdings reuses its own
        already-attached candidate plane — counts must not change."""
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            3,
            kernel="fast-np",
            faults="kill@0:k2,refuse-spawn:9",
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.fault_log[0].action == "adopted"


class TestFaultFreeRunsUnchanged:
    def test_empty_spec_logs_nothing(self, tiny_serial):
        db, serial = tiny_serial
        miner = NativeCountDistribution(TINY_SUPPORT, 3, faults=FaultSpec())
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.fault_log == []

    def test_fault_for_pass_never_reached_is_inert(self, tiny_serial):
        db, serial = tiny_serial
        miner = NativeCountDistribution(TINY_SUPPORT, 2, faults="kill@0:k9")
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.fault_log == []

    def test_fault_for_missing_worker_is_inert(self, tiny_serial):
        db, serial = tiny_serial
        miner = NativeCountDistribution(TINY_SUPPORT, 2, faults="kill@7:k2")
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.fault_log == []


class TestSharedSegmentLifecycle:
    """Shared segments are unlinked exactly once, whatever the exit path.

    The autouse ``no_leaked_segments`` fixture already polices every
    test in the module; these scenarios additionally pin the abnormal
    exits the data plane must clean up after — a structured worker error
    aborting the mine, a full pool collapse into in-process counting,
    and a double shutdown.
    """

    def test_clean_run_leaves_no_segments(self, tiny_serial):
        db, serial = tiny_serial
        miner = NativeCountDistribution(TINY_SUPPORT, 3, data_plane="shared")
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert not _live_repro_segments()

    def test_worker_error_abort_leaves_no_segments(self, tiny_serial):
        # WorkerError propagates out of mine() mid-pass — the exception
        # path through the pool context manager must still unlink.
        db, _ = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT, 2, data_plane="shared", faults="error@0:k2"
        )
        with pytest.raises(WorkerError):
            miner.mine(db)
        assert not _live_repro_segments()

    def test_pool_collapse_leaves_no_segments(self, tiny_serial):
        # Full collapse: every remaining pass runs in-process against
        # the parent's packed copy, and shutdown still owns the unlink.
        db, serial = tiny_serial
        miner = NativeCountDistribution(
            TINY_SUPPORT,
            1,
            data_plane="shared",
            faults="kill@0:k2,refuse-spawn:10",
            max_retries=0,
            backoff_base=0.01,
        )
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.fault_log[0].action == "inprocess"
        assert not _live_repro_segments()

    def test_chaos_at_every_pass_leaves_no_segments(self, tiny_serial):
        db, serial = tiny_serial
        for k in TINY_POOL_PASSES:
            for fault in ("kill", "corrupt"):
                miner = NativeCountDistribution(
                    TINY_SUPPORT,
                    3,
                    data_plane="shared",
                    faults=f"{fault}@1:k{k}",
                    backoff_base=0.01,
                )
                result = miner.mine(db)
                assert result.frequent == serial.frequent
                assert not _live_repro_segments(), (
                    f"{fault}@1:k{k} leaked a segment"
                )

    def test_shutdown_is_idempotent(self, tiny_serial):
        from multiprocessing import get_context

        from repro.parallel.native import _WorkerPool

        db, _ = tiny_serial
        packed = db.to_packed()
        holdings = [[(lo, hi)] for lo, hi in db.partition_bounds(2)]
        pool = _WorkerPool(
            get_context(), holdings, 64, 16, "fast",
            data_plane="shared", packed=packed,
        )
        assert pool.segment_names()  # the store segment is live
        pool.shutdown()
        assert pool.segment_names() == []
        pool.shutdown()  # second shutdown is a no-op, not a double unlink
        assert not _live_repro_segments()

    def test_pickle_plane_creates_no_segments(self, tiny_serial):
        db, serial = tiny_serial
        before = _live_repro_segments()
        miner = NativeCountDistribution(TINY_SUPPORT, 2, data_plane="pickle")
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert _live_repro_segments() == before


class TestKnobValidation:
    def test_rejects_bad_recv_timeout(self):
        with pytest.raises(ValueError, match="recv_timeout"):
            NativeCountDistribution(0.1, 2, recv_timeout=0)

    def test_rejects_bad_max_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            NativeCountDistribution(0.1, 2, max_retries=-1)

    def test_rejects_bad_backoff(self):
        with pytest.raises(ValueError, match="backoff_base"):
            NativeCountDistribution(0.1, 2, backoff_base=-0.1)

    def test_fault_spec_string_coerced(self):
        miner = NativeCountDistribution(0.1, 2, faults="kill@0:k2")
        assert isinstance(miner.faults, FaultSpec)

    def test_bad_fault_spec_string_rejected(self):
        with pytest.raises(ValueError):
            NativeCountDistribution(0.1, 2, faults="implode@0:k2")
