"""SON/partition two-phase counting: exactness, chaos, observability.

The contract under test is the partition algorithm's theorem made
executable: phase 1's union of locally-frequent itemsets is a superset
of every global F_k, and phase 2's exact counting of that superset
makes ``NativeCountDistribution(two_phase=True)`` bit-identical to
single-phase serial Apriori — on the shared and mmap data planes,
through an attached store file, under worker kills during phase 1, and
across a coordinator SIGKILL with the phase-1 superset restored from
the checkpoint journal instead of re-mined.
"""

import glob
import multiprocessing
import os
import signal

import pytest

from repro.checkpoint import CheckpointJournal
from repro.core.apriori import Apriori
from repro.core.mmapdb import MmapPackedDB, write_packed_file
from repro.core.rules import generate_rules
from repro.core.transaction import TransactionDB
from repro.data.corpus import t15_i6
from repro.data.quest import generate
from repro.parallel.native import NativeCountDistribution
from repro.parallel.native_idd import NativeIntelligentDistribution
from repro.parallel.son import merge_candidates, mine_blocks, superset_size

pytestmark = pytest.mark.timeout(180)

SUPPORT = 0.05


@pytest.fixture(scope="module")
def quest_db():
    return generate(t15_i6(400, seed=13, num_items=60))


@pytest.fixture(scope="module")
def serial(quest_db):
    return Apriori(SUPPORT, max_k=4).mine(quest_db)


class TestPhaseOneKernel:
    """`mine_blocks` / `merge_candidates` — the pure phase-1 functions."""

    def test_union_is_superset_of_global_frequent(self, quest_db, serial):
        packed = quest_db.to_packed()
        bounds = quest_db.partition_bounds(3)
        parts = [
            mine_blocks(packed, [(lo, hi)], SUPPORT) for lo, hi in bounds
        ]
        merged = merge_candidates(parts)
        for itemset in serial.frequent:
            if len(itemset) >= 2:
                assert itemset in merged[len(itemset)], (
                    f"globally frequent {itemset} missed every local "
                    "threshold — the SON superset property is broken"
                )

    def test_single_partition_equals_serial(self, quest_db, serial):
        """One partition => local threshold == global threshold."""
        packed = quest_db.to_packed()
        local = mine_blocks(packed, [(0, len(quest_db))], SUPPORT, max_k=4)
        by_k = {}
        for itemset in serial.frequent:
            if len(itemset) >= 2:
                by_k.setdefault(len(itemset), []).append(itemset)
        assert local == {k: sorted(v) for k, v in by_k.items()}

    def test_split_blocks_form_one_partition(self, quest_db):
        """Block-budget splits of one holder must not change its yield."""
        packed = quest_db.to_packed()
        n = len(quest_db)
        whole = mine_blocks(packed, [(0, n)], SUPPORT)
        split = mine_blocks(
            packed, [(0, n // 3), (n // 3, n // 2), (n // 2, n)], SUPPORT
        )
        assert whole == split

    def test_kernels_agree(self, quest_db):
        packed = quest_db.to_packed()
        bounds = quest_db.partition_bounds(2)
        reference = [
            mine_blocks(packed, [b], SUPPORT, kernel="fast")
            for b in bounds
        ]
        for kernel in ("reference", "fast-np", "vertical"):
            assert [
                mine_blocks(packed, [b], SUPPORT, kernel=kernel)
                for b in bounds
            ] == reference

    def test_empty_partition(self, quest_db):
        assert mine_blocks(quest_db.to_packed(), [(5, 5)], SUPPORT) == {}

    def test_merge_normalizes_journal_round_trip(self):
        """String keys and list itemsets (JSON) come back canonical."""
        merged = merge_candidates(
            [
                {"2": [[1, 2], [2, 3]]},
                {2: [(2, 3), (0, 5)], 3: [(1, 2, 3)]},
            ]
        )
        assert merged == {2: [(0, 5), (1, 2), (2, 3)], 3: [(1, 2, 3)]}
        assert superset_size(merged) == 4


class TestTwoPhaseEquivalence:
    """`two_phase=True` is bit-identical to single-phase Apriori."""

    @pytest.mark.parametrize("plane", ["shared", "mmap"])
    def test_matches_serial_on_both_planes(
        self, quest_db, serial, plane, tmp_path
    ):
        with NativeCountDistribution(
            SUPPORT, 3, max_k=4, two_phase=True, data_plane=plane,
            store_dir=str(tmp_path),
        ) as miner:
            result = miner.mine(quest_db)
        assert result.frequent == serial.frequent
        assert generate_rules(
            result.frequent, result.num_transactions, 0.6
        ) == generate_rules(serial.frequent, serial.num_transactions, 0.6)

    @pytest.mark.parametrize("kernel", ["fast", "fast-np", "vertical"])
    def test_matches_serial_under_every_kernel(
        self, quest_db, serial, kernel
    ):
        with NativeCountDistribution(
            SUPPORT, 2, max_k=4, two_phase=True, kernel=kernel
        ) as miner:
            result = miner.mine(quest_db)
        assert result.frequent == serial.frequent

    def test_attached_store_is_mined_in_place(
        self, quest_db, serial, tmp_path
    ):
        """`mine(MmapPackedDB)` on the mmap plane: no copy, no unlink."""
        path = write_packed_file(quest_db.to_packed(), tmp_path / "db.packed")
        with MmapPackedDB.attach(path) as store:
            with NativeCountDistribution(
                SUPPORT, 2, max_k=4, two_phase=True, data_plane="mmap"
            ) as miner:
                result = miner.mine(store)
        assert result.frequent == serial.frequent
        # The pool borrowed the caller's store file; shutting down must
        # not unlink data it does not own.
        assert path.exists()
        with MmapPackedDB.attach(path) as again:
            assert len(again) == len(quest_db)

    def test_pickle_plane_is_rejected(self):
        with pytest.raises(ValueError, match="zero-copy data plane"):
            NativeCountDistribution(
                SUPPORT, 2, two_phase=True, data_plane="pickle"
            )

    def test_progress_lines(self, quest_db):
        lines = []
        with NativeCountDistribution(
            SUPPORT, 2, max_k=3, two_phase=True, progress=lines.append
        ) as miner:
            miner.mine(quest_db)
        assert any("phase 1 complete" in line for line in lines)
        assert any(
            "pass 2 counted" in line and "frequent" in line
            for line in lines
        )

    def test_phase_one_overhead_records_superset(self, quest_db):
        with NativeCountDistribution(
            SUPPORT, 2, max_k=4, two_phase=True
        ) as miner:
            miner.mine(quest_db)
            overheads = miner.last_pass_overheads
        phase1 = [o for o in overheads if o.k == 0]
        assert len(phase1) == 1
        counting = [o for o in overheads if o.k >= 2]
        # The k=0 record's candidate count is the whole superset; the
        # per-pass records then count exactly those candidates.
        assert phase1[0].num_candidates == sum(
            o.num_candidates for o in counting
        )


class TestMemoryObservability:
    """Worker peak-RSS samples surface in every pass overhead."""

    def test_cd_pass_overheads_carry_peak_rss(self, quest_db):
        with NativeCountDistribution(SUPPORT, 2, max_k=3) as miner:
            miner.mine(quest_db)
            overheads = miner.last_pass_overheads
        assert overheads
        assert all(o.peak_rss_bytes > 0 for o in overheads)

    def test_idd_pass_overheads_carry_peak_rss(self, quest_db):
        miner = NativeIntelligentDistribution(SUPPORT, 2, max_k=3)
        miner.mine(quest_db)
        assert miner.last_pass_overheads
        assert all(
            o.peak_rss_bytes > 0 for o in miner.last_pass_overheads
        )


class TestPhaseOneFaults:
    """Worker failures during the phase-1 mine follow the ladder."""

    def test_phase_one_kill_respawns(self, quest_db, serial):
        with NativeCountDistribution(
            SUPPORT, 3, max_k=4, two_phase=True,
            faults="kill@0:k2", backoff_base=0.01, recv_timeout=10.0,
        ) as miner:
            result = miner.mine(quest_db)
            log = list(miner.fault_log)
        assert result.frequent == serial.frequent
        assert [(r.worker, r.action) for r in log] == [(0, "respawned")]

    def test_phase_one_kill_without_respawn_falls_back(
        self, quest_db, serial
    ):
        """Respawns refused => the partition is mined in-process."""
        with NativeCountDistribution(
            SUPPORT, 3, max_k=4, two_phase=True,
            faults="kill@1:k2,refuse-spawn:8",
            max_retries=2, backoff_base=0.01, recv_timeout=10.0,
        ) as miner:
            result = miner.mine(quest_db)
            log = list(miner.fault_log)
        assert result.frequent == serial.frequent
        assert [(r.worker, r.action) for r in log] == [(1, "inprocess")]


# --- crash-and-resume: the coordinator itself is SIGKILLed ------------

# Mined at 0.3 support this db runs passes k = 1..3; the phase-1 record
# lands right after pass 1's, so coord-kill:k1 resumes with phase 1
# already journaled and coord-kill:k2/k3 resume mid-phase-2.
CHAOS_TRANSACTIONS = [
    (1, 2, 3),
    (1, 2),
    (2, 3, 4),
    (1, 3, 4),
    (2, 4),
    (1, 2, 3, 4),
]
CHAOS_SUPPORT = 0.3


def _start_method() -> str:
    return (
        os.environ.get("REPRO_TEST_START_METHOD")
        or multiprocessing.get_start_method()
    )


def _mine_child(kwargs) -> None:
    db = TransactionDB(CHAOS_TRANSACTIONS)
    NativeCountDistribution(
        CHAOS_SUPPORT, 3, two_phase=True, backoff_base=0.01,
        start_method=_start_method(), **kwargs,
    ).mine(db)


def _run_coordinator(kwargs) -> int:
    ctx = multiprocessing.get_context(_start_method())
    proc = ctx.Process(target=_mine_child, args=(kwargs,))
    proc.start()
    proc.join(120)
    alive = proc.is_alive()
    if alive:  # pragma: no cover - hang safety net
        proc.kill()
        proc.join()
    assert not alive, "coordinator child hung"
    for path in glob.glob(f"/dev/shm/repro-{proc.pid:x}-*"):
        try:
            os.unlink(path)
        except FileNotFoundError:  # pragma: no cover - tracker raced us
            pass
    return proc.exitcode


class TestTwoPhaseCrashAndResume:
    @pytest.mark.parametrize("kill_k", [1, 2, 3])
    @pytest.mark.parametrize("plane", ["shared", "mmap"])
    def test_sigkill_after_every_pass(self, tmp_path, plane, kill_k):
        db = TransactionDB(CHAOS_TRANSACTIONS)
        serial = Apriori(CHAOS_SUPPORT).mine(db)
        spec = f"coord-kill:k{kill_k}"
        kwargs = dict(
            data_plane=plane,
            store_dir=str(tmp_path / "store"),
            checkpoint_dir=str(tmp_path / "ckpt"),
            faults=spec,
        )
        exitcode = _run_coordinator(kwargs)
        assert exitcode == -signal.SIGKILL

        state = CheckpointJournal.load(tmp_path / "ckpt")
        assert state.last_k == kill_k
        if kill_k >= 2:
            # The phase-1 superset is journaled before any phase-2
            # pass, so every later kill point leaves it restorable; a
            # kill at pass 1 predates phase 1 itself, and the resumed
            # run simply mines phase 1 fresh.
            assert state.phase1 is not None
            assert superset_size(state.phase1) > 0
        else:
            assert state.phase1 is None

        miner = NativeCountDistribution(
            CHAOS_SUPPORT, 3, two_phase=True, backoff_base=0.01,
            start_method=_start_method(), resume=True, **kwargs,
        )
        result = miner.mine(db)
        assert miner.last_resume_k == kill_k
        assert result.frequent == serial.frequent
        assert generate_rules(
            result.frequent, result.num_transactions, 0.6
        ) == generate_rules(serial.frequent, serial.num_transactions, 0.6)

    def test_worker_kill_and_coordinator_kill_compose(self, tmp_path):
        """A phase-1 worker kill and a later coordinator kill in one
        run, then a resume under the same spec — the advanced journal
        must not replay either event."""
        db = TransactionDB(CHAOS_TRANSACTIONS)
        serial = Apriori(CHAOS_SUPPORT).mine(db)
        spec = "kill@0:k2,coord-kill:k2"
        kwargs = dict(
            checkpoint_dir=str(tmp_path / "ckpt"),
            faults=spec,
        )
        exitcode = _run_coordinator(kwargs)
        assert exitcode == -signal.SIGKILL

        miner = NativeCountDistribution(
            CHAOS_SUPPORT, 3, two_phase=True, backoff_base=0.01,
            start_method=_start_method(), resume=True, **kwargs,
        )
        result = miner.mine(db)
        assert miner.last_resume_k == 2
        assert result.frequent == serial.frequent

    def test_resume_skips_phase_one_re_mine(self, tmp_path):
        """A resumed coordinator restores the journaled superset: the
        resumed run records no k=0 (phase 1) overhead of its own."""
        db = TransactionDB(CHAOS_TRANSACTIONS)
        kwargs = dict(
            checkpoint_dir=str(tmp_path / "ckpt"),
            faults="coord-kill:k2",
        )
        assert _run_coordinator(kwargs) == -signal.SIGKILL

        miner = NativeCountDistribution(
            CHAOS_SUPPORT, 3, two_phase=True, backoff_base=0.01,
            start_method=_start_method(), resume=True, **kwargs,
        )
        result = miner.mine(db)
        serial = Apriori(CHAOS_SUPPORT).mine(db)
        assert result.frequent == serial.frequent
        assert all(o.k >= 3 for o in miner.last_pass_overheads), (
            "resume re-ran phase 1 (or an already-checkpointed pass) "
            "instead of restoring the journaled superset"
        )
