"""Fast vs reference kernel across the parallel formulations.

The simulated formulations price their work off ``HashTreeStats``
counters, so switching a formulation to ``kernel="fast"`` (the
instrumented flat tree) must leave *everything* unchanged: frequent
sets, per-pass subset_stats, and the simulated response time itself.
"""

import pytest

from repro.parallel.runner import ALGORITHMS, NATIVE_ALGORITHMS, make_miner

NUM_PROCESSORS = 4
MIN_SUPPORT = 0.05


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fast_kernel_is_invisible_to_the_simulation(
    algorithm, medium_quest_db
):
    reference = make_miner(
        algorithm, MIN_SUPPORT, NUM_PROCESSORS, kernel="reference"
    ).mine(medium_quest_db)
    fast = make_miner(
        algorithm, MIN_SUPPORT, NUM_PROCESSORS, kernel="fast"
    ).mine(medium_quest_db)

    assert fast.frequent == reference.frequent
    if algorithm in NATIVE_ALGORITHMS:
        # Real processes, no simulated clock: count equality is the
        # whole contract.
        return
    # Bit-identical instrumentation ⇒ bit-identical simulated time.
    assert fast.total_time == reference.total_time
    assert fast.breakdown == reference.breakdown
    for fast_pass, reference_pass in zip(fast.passes, reference.passes):
        assert fast_pass.subset_stats == reference_pass.subset_stats


def test_formulations_default_to_reference_kernel():
    for algorithm in ALGORITHMS:
        if algorithm in NATIVE_ALGORITHMS:
            # Real mining, nothing reads the work counters: fast wins.
            assert make_miner(algorithm, 0.1, 2).kernel == "fast"
            continue
        assert make_miner(algorithm, 0.1, 2).kernel == "reference"


def test_make_miner_rejects_bad_kernel():
    with pytest.raises(ValueError):
        make_miner("CD", 0.1, 2, kernel="quick")
