"""Shared fixtures for the parallel-backend tests.

``REPRO_TEST_START_METHOD`` is the CI chaos matrix's knob: when set
(``fork`` / ``spawn``), every native miner these tests construct
defaults to that multiprocessing start method, so the whole suite —
ring, shift, and recovery paths included — runs once per start method
in CI instead of only under the platform default.  Explicit
``start_method=`` arguments in individual tests still win.
"""

import multiprocessing
import os

import pytest

from repro.parallel.native import NativeCountDistribution
from repro.parallel.native_idd import NativePartitionedMiner


@pytest.fixture(autouse=True)
def forced_start_method(monkeypatch):
    """Default native miners to ``$REPRO_TEST_START_METHOD`` when set."""
    method = os.environ.get("REPRO_TEST_START_METHOD")
    if not method:
        yield None
        return
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable on this platform")
    # NativePartitionedMiner covers both its IDD and HD subclasses.
    for cls in (NativeCountDistribution, NativePartitionedMiner):
        original = cls.__init__

        def patched(self, *args, _original=original, **kwargs):
            kwargs.setdefault("start_method", method)
            _original(self, *args, **kwargs)

        monkeypatch.setattr(cls, "__init__", patched)
    yield method
