"""Tests for the native candidate-partitioned miners (IDD / HD).

Covers the paper-level invariant (bit-identical frequent item-sets and
counts vs serial Apriori at every P, on both data planes), the IDD
bin-packing edge cases, the ring-shift recovery ladder, and the
IDD-specific :class:`PassOverhead` instrumentation.
"""

import glob

import pytest

from repro.checkpoint import CheckpointJournal
from repro.core.apriori import Apriori
from repro.core.bitmap import ItemBitmap
from repro.core.transaction import TransactionDB
from repro.data.serialize import frequent_from_payload
from repro.faults import FaultSpec
from repro.parallel.native import (
    DATA_PLANES,
    NativeCountDistribution,
    WorkerError,
)
from repro.parallel.native_idd import (
    NativeHybridDistribution,
    NativeIntelligentDistribution,
    NativePartitionedMiner,
    _count_shard,
    _even_bounds,
    _PartitionedPool,
)
from repro.parallel.runner import NATIVE_ALGORITHMS, make_miner

SUPPORT = 0.02
TINY_SUPPORT = 0.3

pytestmark = pytest.mark.timeout(300)


def _live_repro_segments():
    return glob.glob("/dev/shm/repro-*")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave /dev/shm clean — leaks fail the suite."""
    before = set(_live_repro_segments())
    yield
    leaked = set(_live_repro_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="module")
def quest_serial(small_quest_db):
    return Apriori(SUPPORT).mine(small_quest_db)


@pytest.fixture(scope="module")
def tiny_partition_db():
    """Six transactions over items 1..4 — only 3 distinct first items."""
    return TransactionDB(
        [
            (1, 2, 3),
            (1, 2),
            (2, 3, 4),
            (1, 3, 4),
            (2, 4),
            (1, 2, 3, 4),
        ]
    )


@pytest.fixture(scope="module")
def tiny_serial(tiny_partition_db):
    return Apriori(TINY_SUPPORT).mine(tiny_partition_db)


class TestIddIdentity:
    """Native IDD == serial Apriori, bit for bit."""

    @pytest.mark.parametrize("plane", DATA_PLANES)
    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_matches_serial(self, small_quest_db, quest_serial, plane,
                            workers):
        miner = NativeIntelligentDistribution(
            SUPPORT, workers, data_plane=plane
        )
        result = miner.mine(small_quest_db)
        assert result.frequent == quest_serial.frequent
        assert miner.last_pool_size == workers
        assert not miner.fault_log

    @pytest.mark.parametrize("plane", DATA_PLANES)
    def test_reference_kernel_matches(self, small_quest_db, quest_serial,
                                      plane):
        miner = NativeIntelligentDistribution(
            SUPPORT, 3, data_plane=plane, kernel="reference"
        )
        assert miner.mine(small_quest_db).frequent == quest_serial.frequent

    @pytest.mark.parametrize("plane", DATA_PLANES)
    def test_vertical_kernel_matches(self, small_quest_db, quest_serial,
                                     plane):
        miner = NativeIntelligentDistribution(
            SUPPORT, 3, data_plane=plane, kernel="vertical"
        )
        assert miner.mine(small_quest_db).frequent == quest_serial.frequent
        assert any(
            o.bitmap_build_s > 0 for o in miner.last_pass_overheads
        )

    @pytest.mark.parametrize("plane", DATA_PLANES)
    def test_fastnp_kernel_matches(self, small_quest_db, quest_serial,
                                   plane):
        """fast-np shards mask the shared candidate plane (or fall back
        to vertical without numpy) and stay bit-identical to serial."""
        miner = NativeIntelligentDistribution(
            SUPPORT, 3, data_plane=plane, kernel="fast-np"
        )
        assert miner.mine(small_quest_db).frequent == quest_serial.frequent

    def test_max_k_caps_passes(self, small_quest_db):
        miner = NativeIntelligentDistribution(SUPPORT, 2, max_k=3)
        result = miner.mine(small_quest_db)
        serial = Apriori(SUPPORT, max_k=3).mine(small_quest_db)
        assert result.frequent == serial.frequent
        assert max(p.k for p in result.passes) <= 3


class TestHdIdentity:
    """Native HD == serial Apriori at both corners of the grid."""

    @pytest.mark.parametrize("plane", DATA_PLANES)
    def test_forced_idd_corner(self, small_quest_db, quest_serial, plane):
        # A tiny threshold makes every pass want many grid rows, so
        # choose_grid picks G = P: max shard < full candidate set.
        miner = NativeHybridDistribution(
            SUPPORT, 4, data_plane=plane, switch_threshold=8
        )
        result = miner.mine(small_quest_db)
        assert result.frequent == quest_serial.frequent
        sharded = [
            o for o in miner.last_pass_overheads if o.num_candidates >= 4
        ]
        assert sharded
        assert all(
            o.max_bin_candidates < o.num_candidates for o in sharded
        )

    def test_default_threshold_is_cd_corner(self, small_quest_db,
                                            quest_serial):
        # 50 000 candidates per row is never reached on this database,
        # so G = 1: every worker holds the whole candidate set (CD).
        miner = NativeHybridDistribution(SUPPORT, 4)
        result = miner.mine(small_quest_db)
        assert result.frequent == quest_serial.frequent
        assert all(
            o.max_bin_candidates == o.num_candidates
            for o in miner.last_pass_overheads
        )

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_intermediate_thresholds(self, small_quest_db, quest_serial,
                                     workers):
        miner = NativeHybridDistribution(
            SUPPORT, workers, switch_threshold=40
        )
        assert miner.mine(small_quest_db).frequent == quest_serial.frequent


class TestBinPackingEdges:
    """IDD edge cases: empty bins and more workers than first items."""

    def test_more_workers_than_first_items(self, tiny_partition_db,
                                           tiny_serial):
        # Pass-2 candidates have 3 distinct first items; with 4 workers
        # at least one bin is empty, and the run must still be exact.
        miner = NativeIntelligentDistribution(TINY_SUPPORT, 4)
        result = miner.mine(tiny_partition_db)
        assert result.frequent == tiny_serial.frequent
        assert not miner.fault_log

    def test_plan_covers_all_candidates_with_empty_bin(
        self, tiny_partition_db
    ):
        candidates = [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        from multiprocessing import get_context

        pool = _PartitionedPool(
            get_context(), 4, tiny_partition_db.to_packed(),
            len(tiny_partition_db), 64, 16, "fast",
            mode="idd", data_plane="pickle",
        )
        try:
            units, owned_idx, rows = pool._plan(candidates)
            assert rows == 4
            # Bins partition the candidate indices exactly...
            flat = sorted(i for idx in owned_idx for i in idx)
            assert flat == list(range(len(candidates)))
            # ...and with only 3 distinct first items, one bin is empty.
            assert any(not idx for idx in owned_idx)
            # Every ring is a permutation of the same block schedule.
            bounds = _even_bounds(len(tiny_partition_db), 4)
            for unit in units.values():
                assert sorted(unit.ring) == sorted(bounds)
        finally:
            pool.shutdown()

    def test_even_bounds_partitions_range(self):
        bounds = _even_bounds(10, 4)
        assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]
        assert _even_bounds(3, 3) == [(0, 1), (1, 2), (2, 3)]


class TestCountShard:
    """Direct kernel-level checks of the worker's shard counting."""

    def test_empty_bin_returns_empty_vector(self, tiny_partition_db):
        packed = tiny_partition_db.to_packed()
        ring = [(0, len(tiny_partition_db))]
        vector, shift_s, checked, skipped, build_s, intersect_s = (
            _count_shard(
                packed, [(1, 2), (2, 3)], 0, ring, 2, "fast", 64, 16
            )
        )
        assert vector == []
        assert shift_s == 0.0
        assert (checked, skipped) == (0, 0)
        assert (build_s, intersect_s) == (0.0, 0.0)

    def test_bitmap_prunes_everything_outside_owned_range(self):
        # The worker owns first item 1 but every transaction item is
        # outside the owned range: all root tests must miss, yet the
        # (zero) counts stay correct.  leaf_capacity=1 forces internal
        # nodes, so the filter applies at the root item level (the
        # degenerate one-leaf tree instead tests candidate first items).
        db = TransactionDB([(5, 6), (6, 7, 8)])
        packed = db.to_packed()
        bits = ItemBitmap([1]).bits
        vector, _shift, checked, skipped, _build, _inter = _count_shard(
            packed, [(1, 2), (1, 3)], bits, [(0, len(db))], 2, "fast",
            64, 1,
        )
        assert vector == [0, 0]
        assert checked > 0
        assert skipped == checked  # every root test missed

    def test_bitmap_passes_owned_items(self):
        db = TransactionDB([(1, 2), (1, 2, 3)])
        packed = db.to_packed()
        bits = ItemBitmap([1, 2]).bits
        vector, _shift, checked, skipped, _build, _inter = _count_shard(
            packed, [(1, 2), (1, 3)], bits, [(0, len(db))], 2, "fast",
            64, 1,
        )
        assert vector == [2, 1]
        assert checked > 0
        assert skipped == 0  # every root test hit the owned range

    def test_ring_order_does_not_change_counts(self, small_quest_db):
        packed = small_quest_db.to_packed()
        serial = Apriori(SUPPORT).mine(small_quest_db)
        pairs = sorted(s for s in serial.frequent if len(s) == 2)[:8]
        bits = ItemBitmap(sorted({c[0] for c in pairs})).bits
        bounds = _even_bounds(len(small_quest_db), 3)
        forward, *_ = _count_shard(
            packed, pairs, bits, bounds, 2, "fast", 64, 16
        )
        rotated, *_ = _count_shard(
            packed, pairs, bits, bounds[1:] + bounds[:1], 2, "fast", 64, 16
        )
        assert forward == rotated == [serial.frequent[c] for c in pairs]


class TestRecoveryLadder:
    """The PR 3 ladder, reshaped for candidate-partitioned units."""

    @pytest.mark.parametrize("plane", DATA_PLANES)
    def test_kill_mid_ring_respawns(self, small_quest_db, quest_serial,
                                    plane):
        miner = NativeIntelligentDistribution(
            SUPPORT, 3, data_plane=plane, faults="kill@1:k3:mid"
        )
        result = miner.mine(small_quest_db)
        assert result.frequent == quest_serial.frequent
        assert [(r.k, r.worker, r.action) for r in miner.fault_log] == [
            (3, 1, "respawned")
        ]

    @pytest.mark.parametrize("plane", DATA_PLANES)
    def test_refused_respawn_is_adopted(self, small_quest_db, quest_serial,
                                        plane):
        miner = NativeIntelligentDistribution(
            SUPPORT, 3, data_plane=plane, max_retries=0,
            faults="kill@1:k2:mid,refuse-spawn:1",
        )
        result = miner.mine(small_quest_db)
        assert result.frequent == quest_serial.frequent
        assert [(r.k, r.worker, r.action) for r in miner.fault_log] == [
            (2, 1, "adopted")
        ]

    def test_full_collapse_degrades_in_process(self, small_quest_db,
                                               quest_serial):
        miner = NativeIntelligentDistribution(
            SUPPORT, 2, max_retries=0,
            faults="kill@0:k2,kill@1:k2,refuse-spawn:9",
        )
        result = miner.mine(small_quest_db)
        assert result.frequent == quest_serial.frequent
        actions = {r.action for r in miner.fault_log}
        assert actions == {"inprocess"}
        assert len(miner.fault_log) == 2

    @pytest.mark.parametrize("plane", DATA_PLANES)
    def test_vertical_kill_mid_ring(self, small_quest_db, quest_serial,
                                    plane):
        """Kill-mid-pass under the vertical kernel: the respawned worker
        rebuilds its TID bitmaps from scratch and counts must not move."""
        miner = NativeIntelligentDistribution(
            SUPPORT, 3, data_plane=plane, kernel="vertical",
            faults="kill@1:k3:mid",
        )
        result = miner.mine(small_quest_db)
        assert result.frequent == quest_serial.frequent
        assert [(r.k, r.worker, r.action) for r in miner.fault_log] == [
            (3, 1, "respawned")
        ]

    @pytest.mark.parametrize("plane", DATA_PLANES)
    def test_fastnp_kill_mid_ring(self, small_quest_db, quest_serial,
                                  plane):
        """Kill-mid-pass under fast-np: the respawned worker re-attaches
        the shared candidate plane cold and counts must not move."""
        miner = NativeIntelligentDistribution(
            SUPPORT, 3, data_plane=plane, kernel="fast-np",
            faults="kill@1:k3:mid",
        )
        result = miner.mine(small_quest_db)
        assert result.frequent == quest_serial.frequent
        assert [(r.k, r.worker, r.action) for r in miner.fault_log] == [
            (3, 1, "respawned")
        ]

    def test_hd_grid_survives_kill(self, small_quest_db, quest_serial):
        miner = NativeHybridDistribution(
            SUPPORT, 4, switch_threshold=8, faults="kill@2:k3:mid"
        )
        result = miner.mine(small_quest_db)
        assert result.frequent == quest_serial.frequent
        assert miner.fault_log[0].action == "respawned"

    def test_dead_survivor_is_repacked(self, tiny_partition_db):
        """A survivor that dies mid-adoption is dropped as "repacked".

        FaultSpec cannot target the adoption request (events fire at a
        worker's own pass request), so this drives the pool directly:
        both workers are killed under the pool's feet, respawns are
        refused, and recovery of worker 1 must burn through the dead
        "survivor" 0 before landing in-process.
        """
        from multiprocessing import get_context

        candidates = [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        pool = _PartitionedPool(
            get_context(), 2, tiny_partition_db.to_packed(),
            len(tiny_partition_db), 64, 16, "fast",
            mode="idd", data_plane="pickle", recv_timeout=10.0,
            max_retries=0,
        )
        try:
            clean = pool.count_pass(2, candidates)
            units, owned_idx, _rows = pool._plan(candidates)
            for wid in (0, 1):
                pool._slots[wid].process.terminate()
                pool._slots[wid].process.join(timeout=10)
            pool._refusals_left = 10 ** 9
            unit = units[1]
            vector = pool._recover(
                1, 2, candidates, None, unit, len(owned_idx[unit.row]),
                "died",
            )
            assert [(r.k, r.worker, r.action) for r in pool.fault_log] == [
                (2, 0, "repacked"),
                (2, 1, "inprocess"),
            ]
            owned = [candidates[i] for i in owned_idx[unit.row]]
            assert vector == [clean[candidates.index(c)] for c in owned]
            assert pool.num_workers == 0
        finally:
            pool.shutdown()

    def test_empty_pool_counts_in_parent(self, tiny_partition_db,
                                         tiny_serial):
        # After a total collapse, later passes run via _count_all.
        from multiprocessing import get_context

        pool = _PartitionedPool(
            get_context(), 2, tiny_partition_db.to_packed(),
            len(tiny_partition_db), 64, 16, "fast",
            mode="idd", data_plane="pickle",
        )
        try:
            pool.shutdown()  # empty the pool, keep the packed store
            candidates = [(1, 2), (2, 3), (2, 4), (3, 4)]
            totals = pool.count_pass(2, candidates)
            expected = [tiny_serial.frequent.get(c, None) for c in candidates]
            for total, exact in zip(totals, expected):
                if exact is not None:
                    assert total == exact
        finally:
            pool.shutdown()


class TestWarmPool:
    """Context-manager pool reuse for the partitioned miners."""

    def test_reuse_within_context(self, small_quest_db, quest_serial):
        with NativeIntelligentDistribution(SUPPORT, 2) as miner:
            assert (
                miner.mine(small_quest_db).frequent
                == quest_serial.frequent
            )
            assert miner.last_pool_reused is False
            assert (
                miner.mine(small_quest_db).frequent
                == quest_serial.frequent
            )
            assert miner.last_pool_reused is True
        assert miner.mine(small_quest_db).frequent == quest_serial.frequent
        assert miner.last_pool_reused is False

    def test_faulty_run_is_not_reused(self, small_quest_db, quest_serial):
        with NativeIntelligentDistribution(
            SUPPORT, 2, faults="kill@1:k3:mid", backoff_base=0.01
        ) as miner:
            assert (
                miner.mine(small_quest_db).frequent
                == quest_serial.frequent
            )
            assert miner.last_pool_reused is False
            assert (
                miner.mine(small_quest_db).frequent
                == quest_serial.frequent
            )
            assert miner.last_pool_reused is False

    def test_worker_error_then_re_mine(self, small_quest_db, quest_serial):
        # A WorkerError escaping mine() must poison the warm pool: the
        # next mine rebuilds from scratch and is still bit-identical.
        with NativeIntelligentDistribution(
            SUPPORT, 2, faults="error@0:k2", backoff_base=0.01
        ) as miner:
            with pytest.raises(WorkerError, match="failed at pass 2"):
                miner.mine(small_quest_db)
            miner.faults = FaultSpec()
            result = miner.mine(small_quest_db)
            assert result.frequent == quest_serial.frequent
            assert miner.last_pool_reused is False
            # Once healthy, the rebuilt pool is warm again.
            miner.mine(small_quest_db)
            assert miner.last_pool_reused is True

    def test_checkpointed_runs_reuse_pool(
        self, tmp_path, small_quest_db, quest_serial
    ):
        # checkpoint_dir journals each run; warm-pool reuse must not
        # confuse the journal (each clean run rewrites it in full).
        ckpt = tmp_path / "ckpt"
        with NativeIntelligentDistribution(
            SUPPORT, 2, max_k=3, checkpoint_dir=str(ckpt)
        ) as miner:
            first = miner.mine(small_quest_db)
            assert miner.last_pool_reused is False
            second = miner.mine(small_quest_db)
            assert miner.last_pool_reused is True
            assert first.frequent == second.frequent
        state = CheckpointJournal.load(str(ckpt))
        assert state.last_k == 3
        restored = {}
        for record in state.passes:
            restored.update(
                frequent_from_payload(record["itemsets"], record["counts"])
            )
        assert restored == second.frequent


class TestPassOverheads:
    """The IDD-specific per-pass instrumentation."""

    def test_bin_size_shrinks_with_workers(self, small_quest_db):
        maxima = {}
        for workers in (1, 2, 4):
            miner = NativeIntelligentDistribution(
                SUPPORT, workers, max_k=2
            )
            miner.mine(small_quest_db)
            (overhead,) = [
                o for o in miner.last_pass_overheads if o.k == 2
            ]
            maxima[workers] = overhead.max_bin_candidates
        assert maxima[1] >= maxima[2] >= maxima[4]
        assert maxima[4] < maxima[1]

    def test_prune_tallies_populated(self, small_quest_db):
        miner = NativeIntelligentDistribution(SUPPORT, 4, max_k=3)
        miner.mine(small_quest_db)
        for overhead in miner.last_pass_overheads:
            assert overhead.shift_s >= 0.0
            assert overhead.prune_checked > 0
            assert 0.0 < overhead.prune_rate < 1.0

    def test_prune_rate_grows_with_partitions(self, small_quest_db):
        # A lone worker owns every candidate first item, so its bitmap
        # only skips items that start no candidate at all; partitioning
        # over 4 workers adds skips for the other bins' first items.
        rates = {}
        for workers in (1, 4):
            miner = NativeIntelligentDistribution(
                SUPPORT, workers, max_k=2
            )
            miner.mine(small_quest_db)
            (overhead,) = miner.last_pass_overheads
            rates[workers] = overhead.prune_rate
        assert rates[4] > rates[1]


class TestRunnerRegistration:
    """native-idd / native-hd are first-class ALGORITHMS entries."""

    def test_registry_keys(self):
        assert set(NATIVE_ALGORITHMS) == {
            "native", "native-cd", "native-idd", "native-hd"
        }

    def test_make_miner_dispatch(self):
        assert isinstance(
            make_miner("native-idd", 0.1, 2), NativeIntelligentDistribution
        )
        assert isinstance(
            make_miner("native-hd", 0.1, 2), NativeHybridDistribution
        )
        assert isinstance(
            make_miner("native-cd", 0.1, 2), NativeCountDistribution
        )
        # Back-compat alias.
        assert isinstance(
            make_miner("native", 0.1, 2), NativeCountDistribution
        )

    def test_machine_kwarg_is_ignored(self):
        miner = make_miner("native-hd", 0.1, 2, machine=object())
        assert miner.num_processors == 2


class TestKnobValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="num_workers"):
            NativeIntelligentDistribution(0.1, 0)

    def test_rejects_bad_max_k(self):
        with pytest.raises(ValueError, match="max_k"):
            NativeIntelligentDistribution(0.1, 2, max_k=0)

    def test_rejects_bad_switch_threshold(self):
        with pytest.raises(ValueError, match="switch_threshold"):
            NativeHybridDistribution(0.1, 2, switch_threshold=0)

    def test_rejects_bad_recv_timeout(self):
        with pytest.raises(ValueError, match="recv_timeout"):
            NativeIntelligentDistribution(0.1, 2, recv_timeout=0.0)

    def test_rejects_bad_max_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            NativeIntelligentDistribution(0.1, 2, max_retries=-1)

    def test_rejects_bad_backoff(self):
        with pytest.raises(ValueError, match="backoff_base"):
            NativeIntelligentDistribution(0.1, 2, backoff_base=-1.0)

    def test_rejects_bad_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            NativeIntelligentDistribution(0.1, 2, kernel="bogus")

    def test_rejects_bad_data_plane(self):
        with pytest.raises(ValueError, match="data plane"):
            NativeIntelligentDistribution(0.1, 2, data_plane="carrier")

    def test_rejects_bad_mode(self):
        class Broken(NativePartitionedMiner):
            mode = "bogus"

        with pytest.raises(ValueError, match="mode"):
            Broken(0.1, 2)


class TestPoolClamping:
    def test_more_workers_than_transactions(self, tiny_partition_db,
                                            tiny_serial):
        miner = NativeIntelligentDistribution(TINY_SUPPORT, 32)
        result = miner.mine(tiny_partition_db)
        assert result.frequent == tiny_serial.frequent
        assert miner.last_pool_size == len(tiny_partition_db)
