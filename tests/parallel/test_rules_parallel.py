"""Tests for parallel rule generation."""

import pytest

from repro.core.apriori import Apriori
from repro.core.rules import generate_rules
from repro.parallel.rules import generate_rules_parallel


@pytest.fixture(scope="module")
def mined(request):
    # medium_quest_db is function-scoped via conftest; rebuild here once.
    from repro.data.corpus import t15_i6
    from repro.data.quest import generate

    db = generate(t15_i6(240, seed=5, num_items=200))
    result = Apriori(0.05).mine(db)
    return db, result


class TestGenerateRulesParallel:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_rules_parallel({}, 10, 0.0, 4)
        with pytest.raises(ValueError):
            generate_rules_parallel({}, 0, 0.5, 4)
        with pytest.raises(ValueError):
            generate_rules_parallel({}, 10, 0.5, 0)

    @pytest.mark.parametrize("num_processors", [1, 2, 4, 7])
    def test_identical_to_serial(self, mined, num_processors):
        db, result = mined
        serial = generate_rules(result.frequent, len(db), 0.5)
        parallel = generate_rules_parallel(
            result.frequent, len(db), 0.5, num_processors
        )
        assert parallel.rules == serial

    def test_identical_across_confidences(self, mined):
        db, result = mined
        for confidence in (0.2, 0.6, 0.95):
            serial = generate_rules(result.frequent, len(db), confidence)
            parallel = generate_rules_parallel(
                result.frequent, len(db), confidence, 4
            )
            assert parallel.rules == serial

    def test_cost_accounted(self, mined):
        db, result = mined
        parallel = generate_rules_parallel(result.frequent, len(db), 0.5, 4)
        assert parallel.total_time > 0
        assert parallel.breakdown.get("rulegen", 0.0) > 0
        assert len(parallel) == len(parallel.rules)

    def test_work_partitioned_over_processors(self, mined):
        db, result = mined
        parallel = generate_rules_parallel(result.frequent, len(db), 0.5, 4)
        assert sum(parallel.itemsets_per_processor) == sum(
            1 for s in result.frequent if len(s) >= 2
        )
        assert max(parallel.itemsets_per_processor) < sum(
            parallel.itemsets_per_processor
        )

    def test_more_processors_reduce_time(self, mined):
        db, result = mined
        slow = generate_rules_parallel(result.frequent, len(db), 0.5, 1)
        fast = generate_rules_parallel(result.frequent, len(db), 0.5, 8)
        assert fast.total_time < slow.total_time

    def test_empty_frequent_set(self):
        parallel = generate_rules_parallel({(1,): 5}, 10, 0.5, 4)
        assert parallel.rules == []
        assert parallel.total_time >= 0
