"""Tests for the real-multiprocessing CD backend."""

import multiprocessing

import pytest

from repro.core.apriori import Apriori
from repro.parallel.native import (
    DATA_PLANES,
    NativeCountDistribution,
    validate_data_plane,
)


def _has_start_method(name: str) -> bool:
    return name in multiprocessing.get_all_start_methods()


class TestNativeCountDistribution:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            NativeCountDistribution(0.1, 0)

    def test_rejects_bad_max_k(self):
        with pytest.raises(ValueError):
            NativeCountDistribution(0.1, 2, max_k=0)

    def test_matches_serial_single_worker(self, tiny_db):
        native = NativeCountDistribution(0.3, 1).mine(tiny_db)
        serial = Apriori(0.3).mine(tiny_db)
        assert native.frequent == serial.frequent

    def test_matches_serial_multi_worker(self, medium_quest_db):
        native = NativeCountDistribution(0.05, 2).mine(medium_quest_db)
        serial = Apriori(0.05).mine(medium_quest_db)
        assert native.frequent == serial.frequent

    def test_max_k_respected(self, medium_quest_db):
        native = NativeCountDistribution(0.05, 2, max_k=2).mine(
            medium_quest_db
        )
        serial = Apriori(0.05, max_k=2).mine(medium_quest_db)
        assert native.frequent == serial.frequent

    def test_pass_traces_recorded(self, tiny_db):
        result = NativeCountDistribution(0.3, 2).mine(tiny_db)
        assert result.passes[0].k == 1
        assert [t.k for t in result.passes] == list(
            range(1, len(result.passes) + 1)
        )

    def test_empty_frequent_short_circuits(self, tiny_db):
        result = NativeCountDistribution(1.0, 2).mine(tiny_db)
        assert result.frequent == {}
        assert len(result.passes) == 1

    def test_kernels_agree_with_serial(self, medium_quest_db):
        serial = Apriori(0.05, kernel="reference").mine(medium_quest_db)
        for kernel in ("reference", "fast", "vertical"):
            native = NativeCountDistribution(0.05, 3, kernel=kernel).mine(
                medium_quest_db
            )
            assert native.frequent == serial.frequent
            assert native.min_count == serial.min_count

    def test_fast_kernel_is_default(self):
        assert NativeCountDistribution(0.1, 2).kernel == "fast"

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            NativeCountDistribution(0.1, 2, kernel="nope")

    def test_spawn_start_method(self, tiny_db):
        # Workers get their block by one-shot pickle instead of fork
        # inheritance; results must not change.
        native = NativeCountDistribution(
            0.3, 2, start_method="spawn"
        ).mine(tiny_db)
        serial = Apriori(0.3).mine(tiny_db)
        assert native.frequent == serial.frequent


class TestDataPlanes:
    """Both data planes mine identical results; shared is the default."""

    def test_shared_plane_is_default(self):
        assert NativeCountDistribution(0.1, 2).data_plane == "shared"

    def test_invalid_data_plane_rejected(self):
        with pytest.raises(ValueError, match="unknown data plane"):
            NativeCountDistribution(0.1, 2, data_plane="carrier-pigeon")

    def test_validate_data_plane(self):
        for plane in DATA_PLANES:
            assert validate_data_plane(plane) == plane
        with pytest.raises(ValueError):
            validate_data_plane("udp")

    @pytest.mark.parametrize("data_plane", DATA_PLANES)
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_planes_match_serial_under_both_start_methods(
        self, medium_quest_db, data_plane, start_method
    ):
        """Acceptance: bit-identical to serial Apriori for every plane x
        start-method combination (counts included, via ==)."""
        if not _has_start_method(start_method):
            pytest.skip(f"{start_method} start method unavailable")
        serial = Apriori(0.05).mine(medium_quest_db)
        native = NativeCountDistribution(
            0.05, 3, data_plane=data_plane, start_method=start_method
        ).mine(medium_quest_db)
        assert native.frequent == serial.frequent
        assert native.min_count == serial.min_count

    @pytest.mark.parametrize("data_plane", DATA_PLANES)
    def test_planes_agree_across_kernels(self, small_quest_db, data_plane):
        serial = Apriori(0.02, kernel="reference").mine(small_quest_db)
        for kernel in ("reference", "fast", "vertical"):
            native = NativeCountDistribution(
                0.02, 2, data_plane=data_plane, kernel=kernel
            ).mine(small_quest_db)
            assert native.frequent == serial.frequent

    @pytest.mark.parametrize("data_plane", DATA_PLANES)
    def test_pass_overheads_recorded(self, tiny_db, data_plane):
        miner = NativeCountDistribution(0.3, 2, data_plane=data_plane)
        miner.mine(tiny_db)
        overheads = miner.last_pass_overheads
        assert [o.k for o in overheads] == [2, 3]
        for overhead in overheads:
            assert overhead.num_candidates > 0
            assert overhead.broadcast_s >= 0
            assert overhead.reduce_s >= 0
            assert overhead.coordinator_s == pytest.approx(
                overhead.broadcast_s + overhead.reduce_s
            )

    @pytest.mark.parametrize("data_plane", DATA_PLANES)
    def test_vertical_overheads_recorded(self, tiny_db, data_plane):
        """The vertical kernel reports bitmap build / intersection time;
        the tree kernels leave both fields at zero."""
        miner = NativeCountDistribution(
            0.3, 2, data_plane=data_plane, kernel="vertical"
        )
        miner.mine(tiny_db)
        assert any(
            o.bitmap_build_s > 0 for o in miner.last_pass_overheads
        )
        assert all(
            o.intersect_s >= 0 for o in miner.last_pass_overheads
        )
        miner = NativeCountDistribution(0.3, 2, data_plane=data_plane)
        miner.mine(tiny_db)
        for overhead in miner.last_pass_overheads:
            assert overhead.bitmap_build_s == 0.0
            assert overhead.intersect_s == 0.0


class TestWarmPool:
    """Context-manager reuse of the worker pool across mine() calls."""

    def test_no_reuse_outside_context(self, tiny_db):
        serial = Apriori(0.3).mine(tiny_db)
        miner = NativeCountDistribution(0.3, 2)
        assert miner.mine(tiny_db).frequent == serial.frequent
        assert miner.last_pool_reused is False
        assert miner.mine(tiny_db).frequent == serial.frequent
        assert miner.last_pool_reused is False

    @pytest.mark.parametrize("kernel", ["fast", "vertical"])
    def test_reuse_within_context(self, tiny_db, kernel):
        serial = Apriori(0.3).mine(tiny_db)
        with NativeCountDistribution(0.3, 2, kernel=kernel) as miner:
            assert miner.mine(tiny_db).frequent == serial.frequent
            assert miner.last_pool_reused is False
            assert miner.mine(tiny_db).frequent == serial.frequent
            assert miner.last_pool_reused is True
            assert miner.mine(tiny_db).frequent == serial.frequent
            assert miner.last_pool_reused is True
        # Pool torn down on exit; a later mine() starts cold again.
        assert miner.mine(tiny_db).frequent == serial.frequent
        assert miner.last_pool_reused is False

    def test_different_db_rebuilds_pool(self, tiny_db, small_quest_db):
        with NativeCountDistribution(0.3, 2) as miner:
            miner.mine(tiny_db)
            miner.mine(small_quest_db)
            assert miner.last_pool_reused is False
            serial = Apriori(0.3).mine(small_quest_db)
            assert (
                miner.mine(small_quest_db).frequent == serial.frequent
            )
            assert miner.last_pool_reused is True

    def test_faulty_run_is_not_reused(self, tiny_db):
        serial = Apriori(0.3).mine(tiny_db)
        with NativeCountDistribution(
            0.3, 2, faults="kill@0:k2", backoff_base=0.01
        ) as miner:
            assert miner.mine(tiny_db).frequent == serial.frequent
            assert miner.last_pool_reused is False
            assert miner.mine(tiny_db).frequent == serial.frequent
            assert miner.last_pool_reused is False

    def test_close_is_idempotent(self, tiny_db):
        miner = NativeCountDistribution(0.3, 2)
        with miner:
            miner.mine(tiny_db)
        miner.close()
        miner.close()


class TestPoolClamping:
    """Regression: the pool must never spawn workers for empty blocks."""

    @pytest.mark.parametrize("num_workers", [1, 6, 11])
    def test_pool_clamped_to_nonempty_blocks(self, tiny_db, num_workers):
        # tiny_db has 6 transactions; 11 workers would previously spawn
        # 5 idle processes holding empty blocks.
        serial = Apriori(0.3).mine(tiny_db)
        miner = NativeCountDistribution(0.3, num_workers)
        result = miner.mine(tiny_db)
        assert result.frequent == serial.frequent
        assert miner.last_pool_size == min(num_workers, len(tiny_db))

    def test_single_transaction_many_workers(self):
        from repro.core.transaction import TransactionDB

        db = TransactionDB([(1, 2, 3)] * 3)
        serial = Apriori(0.5).mine(db)
        miner = NativeCountDistribution(0.5, 8)
        result = miner.mine(db)
        assert result.frequent == serial.frequent
        assert miner.last_pool_size == 3

    def test_num_processors_alias(self):
        assert NativeCountDistribution(0.1, 4).num_processors == 4
