"""Tests for the real-multiprocessing CD backend."""

import pytest

from repro.core.apriori import Apriori
from repro.parallel.native import NativeCountDistribution


class TestNativeCountDistribution:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            NativeCountDistribution(0.1, 0)

    def test_rejects_bad_max_k(self):
        with pytest.raises(ValueError):
            NativeCountDistribution(0.1, 2, max_k=0)

    def test_matches_serial_single_worker(self, tiny_db):
        native = NativeCountDistribution(0.3, 1).mine(tiny_db)
        serial = Apriori(0.3).mine(tiny_db)
        assert native.frequent == serial.frequent

    def test_matches_serial_multi_worker(self, medium_quest_db):
        native = NativeCountDistribution(0.05, 2).mine(medium_quest_db)
        serial = Apriori(0.05).mine(medium_quest_db)
        assert native.frequent == serial.frequent

    def test_max_k_respected(self, medium_quest_db):
        native = NativeCountDistribution(0.05, 2, max_k=2).mine(
            medium_quest_db
        )
        serial = Apriori(0.05, max_k=2).mine(medium_quest_db)
        assert native.frequent == serial.frequent

    def test_pass_traces_recorded(self, tiny_db):
        result = NativeCountDistribution(0.3, 2).mine(tiny_db)
        assert result.passes[0].k == 1
        assert [t.k for t in result.passes] == list(
            range(1, len(result.passes) + 1)
        )

    def test_empty_frequent_short_circuits(self, tiny_db):
        result = NativeCountDistribution(1.0, 2).mine(tiny_db)
        assert result.frequent == {}
        assert len(result.passes) == 1

    def test_kernels_agree_with_serial(self, medium_quest_db):
        serial = Apriori(0.05, kernel="reference").mine(medium_quest_db)
        for kernel in ("reference", "fast"):
            native = NativeCountDistribution(0.05, 3, kernel=kernel).mine(
                medium_quest_db
            )
            assert native.frequent == serial.frequent
            assert native.min_count == serial.min_count

    def test_fast_kernel_is_default(self):
        assert NativeCountDistribution(0.1, 2).kernel == "fast"

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            NativeCountDistribution(0.1, 2, kernel="nope")

    def test_spawn_start_method(self, tiny_db):
        # Workers get their block by one-shot pickle instead of fork
        # inheritance; results must not change.
        native = NativeCountDistribution(
            0.3, 2, start_method="spawn"
        ).mine(tiny_db)
        serial = Apriori(0.3).mine(tiny_db)
        assert native.frequent == serial.frequent
