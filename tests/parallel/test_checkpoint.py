"""Crash-and-resume chaos suite: the coordinator itself is killed.

PR 3's ladder recovers *worker* failures; these tests kill the whole
coordinator process with SIGKILL after every checkpointed pass in turn
(the deterministic ``coord-kill:kK`` fault), then resume from the
journal and assert the invariant that matters: frequent item-sets *and*
derived rules bit-identical to an uninterrupted serial mine, across
CD and IDD, the shared and mmap data planes, and both start methods
(the CI chaos matrix sets ``REPRO_TEST_START_METHOD``).

The torn-write tests corrupt the journal the way a kill mid-``write``
would — a truncated final frame, a garbage tail — and assert resume
falls back to the last valid checkpoint instead of failing or trusting
garbage.
"""

import glob
import json
import multiprocessing
import os
import signal
import struct
import zlib

import pytest

from repro.checkpoint import (
    JOURNAL_NAME,
    CheckpointError,
    CheckpointJournal,
)
from repro.core.apriori import Apriori
from repro.core.rules import generate_rules
from repro.core.transaction import TransactionDB
from repro.parallel.native import NativeCountDistribution
from repro.parallel.native_idd import NativeIntelligentDistribution

pytestmark = pytest.mark.timeout(180)

# At 0.3 support this db mines exactly passes k = 1, 2, 3 (pass 4
# generates no candidates), so coord-kill:k1..k3 covers every
# checkpointed pass.
CHAOS_TRANSACTIONS = [
    (1, 2, 3),
    (1, 2),
    (2, 3, 4),
    (1, 3, 4),
    (2, 4),
    (1, 2, 3, 4),
]
SUPPORT = 0.3
PASSES = (1, 2, 3)
MINERS = {
    "cd": NativeCountDistribution,
    "idd": NativeIntelligentDistribution,
}


def _start_method() -> str:
    return (
        os.environ.get("REPRO_TEST_START_METHOD")
        or multiprocessing.get_start_method()
    )


def _make_miner(algorithm, **kwargs):
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("start_method", _start_method())
    return MINERS[algorithm](SUPPORT, 3, **kwargs)


def _mine_child(kwargs) -> None:
    """One coordinator run in its own process (the SIGKILL target)."""
    db = TransactionDB(CHAOS_TRANSACTIONS)
    _make_miner(**kwargs).mine(db)


def _run_coordinator(kwargs) -> int:
    """Run ``_mine_child(kwargs)`` in a child process; return its exit code."""
    ctx = multiprocessing.get_context(_start_method())
    proc = ctx.Process(target=_mine_child, args=(kwargs,))
    proc.start()
    proc.join(120)
    alive = proc.is_alive()
    if alive:  # pragma: no cover - hang safety net
        proc.kill()
        proc.join()
    assert not alive, "coordinator child hung"
    _reap_child_segments(proc.pid)
    return proc.exitcode


def _reap_child_segments(pid) -> None:
    """Unlink shared segments a SIGKILLed coordinator left behind.

    Outside pytest the killed process tree's resource tracker reclaims
    them as soon as its workers exit; in-suite the tracker is inherited
    from (and shared with) the long-lived pytest process, so cleanup
    would be deferred to session exit — and the sibling fault suites
    assert ``/dev/shm`` is clean in absolute terms.  Segment names embed
    the owning pid in hex, so only the killed child's are touched.
    """
    for path in glob.glob(f"/dev/shm/repro-{pid:x}-*"):
        try:
            os.unlink(path)
        except FileNotFoundError:  # pragma: no cover - tracker raced us
            pass


@pytest.fixture(scope="module")
def chaos_db():
    return TransactionDB(CHAOS_TRANSACTIONS)


@pytest.fixture(scope="module")
def serial(chaos_db):
    return Apriori(SUPPORT).mine(chaos_db)


class TestCrashAndResume:
    """Acceptance: SIGKILL after every pass, resume bit-identical."""

    @pytest.mark.parametrize("kill_k", PASSES)
    @pytest.mark.parametrize("plane", ["shared", "mmap"])
    @pytest.mark.parametrize("algorithm", sorted(MINERS))
    def test_sigkill_after_every_pass(
        self, tmp_path, chaos_db, serial, algorithm, plane, kill_k
    ):
        spec = f"coord-kill:k{kill_k}"
        kwargs = dict(
            algorithm=algorithm,
            data_plane=plane,
            store_dir=str(tmp_path / "store"),
            checkpoint_dir=str(tmp_path / "ckpt"),
            faults=spec,
        )
        exitcode = _run_coordinator(kwargs)
        assert exitcode == -signal.SIGKILL

        state = CheckpointJournal.load(tmp_path / "ckpt")
        assert state.last_k == kill_k, "journal must hold the killed pass"

        # Resume under the *same* fault spec: the fired kill is behind
        # the checkpoint cursor and must not replay.
        miner = _make_miner(
            algorithm,
            data_plane=plane,
            store_dir=str(tmp_path / "store"),
            checkpoint_dir=str(tmp_path / "ckpt"),
            resume=True,
            faults=spec,
        )
        result = miner.mine(chaos_db)
        assert miner.last_resume_k == kill_k
        assert result.frequent == serial.frequent
        assert [
            (p.k, p.num_candidates, p.num_frequent) for p in result.passes
        ] == [
            (p.k, p.num_candidates, p.num_frequent) for p in serial.passes
        ]
        assert generate_rules(
            result.frequent, result.num_transactions, 0.6
        ) == generate_rules(serial.frequent, serial.num_transactions, 0.6)

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_both_start_methods(
        self, tmp_path, chaos_db, serial, monkeypatch, method
    ):
        """Explicit fork and spawn smoke, whatever the matrix leg says."""
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        monkeypatch.setenv("REPRO_TEST_START_METHOD", method)
        kwargs = dict(
            algorithm="cd",
            checkpoint_dir=str(tmp_path / "ckpt"),
            faults="coord-kill:k2",
        )
        assert _run_coordinator(kwargs) == -signal.SIGKILL
        miner = _make_miner(
            "cd",
            checkpoint_dir=str(tmp_path / "ckpt"),
            resume=True,
            faults="coord-kill:k2",
        )
        assert miner.mine(chaos_db).frequent == serial.frequent
        assert miner.last_resume_k == 2

    def test_repeated_kills_across_runs(self, tmp_path, chaos_db, serial):
        """Kill after pass 1, resume and kill after pass 2, then finish."""
        ckpt = str(tmp_path / "ckpt")
        spec = "coord-kill:k1,coord-kill:k2"
        assert (
            _run_coordinator(
                dict(algorithm="cd", checkpoint_dir=ckpt, faults=spec)
            )
            == -signal.SIGKILL
        )
        assert CheckpointJournal.load(ckpt).last_k == 1
        assert (
            _run_coordinator(
                dict(
                    algorithm="cd",
                    checkpoint_dir=ckpt,
                    resume=True,
                    faults=spec,
                )
            )
            == -signal.SIGKILL
        )
        assert CheckpointJournal.load(ckpt).last_k == 2
        miner = _make_miner(
            "cd", checkpoint_dir=ckpt, resume=True, faults=spec
        )
        assert miner.mine(chaos_db).frequent == serial.frequent
        assert miner.last_resume_k == 2

    def test_worker_faults_and_coordinator_kill_compose(
        self, tmp_path, chaos_db, serial
    ):
        """Worker kill + consumed refuse-spawn budget survive the resume.

        The interrupted run kills worker 0 at pass 2, burns one refusal
        respawning it, then the coordinator dies.  The resumed run under
        the same spec must see the remaining schedule — the pass-3
        worker kill — and not replay the consumed refusal.
        """
        ckpt = str(tmp_path / "ckpt")
        spec = "kill@0:k2,refuse-spawn:1,kill@1:k3,coord-kill:k2"
        assert (
            _run_coordinator(
                dict(algorithm="cd", checkpoint_dir=ckpt, faults=spec)
            )
            == -signal.SIGKILL
        )
        state = CheckpointJournal.load(ckpt)
        assert state.last_k == 2
        assert state.refusals_used == 1
        miner = _make_miner(
            "cd", checkpoint_dir=ckpt, resume=True, faults=spec
        )
        result = miner.mine(chaos_db)
        assert result.frequent == serial.frequent
        # Only the pass-3 kill fired on resume; its respawn succeeded
        # because the refusal budget was already spent pre-crash.
        assert [(r.k, r.worker) for r in miner.fault_log] == [(3, 1)]
        assert miner.fault_log[0].action == "respawned"


class TestTornJournal:
    """Kill-mid-write recovery: resume from the last *valid* record."""

    def _journal(self, tmp_path, chaos_db):
        ckpt = tmp_path / "ckpt"
        miner = _make_miner("cd", checkpoint_dir=str(ckpt))
        miner.mine(chaos_db)
        return ckpt / JOURNAL_NAME

    def test_truncated_final_record(self, tmp_path, chaos_db, serial):
        path = self._journal(tmp_path, chaos_db)
        assert CheckpointJournal.load(path.parent).last_k == 3
        path.write_bytes(path.read_bytes()[:-3])
        state = CheckpointJournal.load(path.parent)
        assert state.last_k == 2, "torn tail must fall back one pass"
        miner = _make_miner(
            "cd", checkpoint_dir=str(path.parent), resume=True
        )
        result = miner.mine(chaos_db)
        assert miner.last_resume_k == 2
        assert result.frequent == serial.frequent

    def test_garbage_tail_is_truncated(self, tmp_path, chaos_db, serial):
        path = self._journal(tmp_path, chaos_db)
        clean = path.read_bytes()
        path.write_bytes(clean + b"\x99\x00\x00\x00torn!")
        state = CheckpointJournal.load(path.parent)
        assert state.last_k == 3
        assert state.valid_bytes == len(clean)
        miner = _make_miner(
            "cd", checkpoint_dir=str(path.parent), resume=True
        )
        assert miner.mine(chaos_db).frequent == serial.frequent
        assert path.stat().st_size == len(clean), "tail must be cut off"

    def test_corrupt_payload_crc(self, tmp_path, chaos_db):
        path = self._journal(tmp_path, chaos_db)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the final payload
        path.write_bytes(bytes(data))
        assert CheckpointJournal.load(path.parent).last_k == 2

    def test_journal_without_meta_is_unusable(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        payload = json.dumps({"type": "pass", "k": 1}).encode()
        frame = struct.pack("<II", len(payload), zlib.crc32(payload))
        (ckpt / JOURNAL_NAME).write_bytes(b"RPROCKP1"[:8] + frame[:2])
        with pytest.raises(CheckpointError, match="no valid meta"):
            CheckpointJournal.load(ckpt)


class TestResumeGuards:
    """The refuse-to-resume edges around the happy path."""

    def test_resume_without_journal(self, tmp_path, chaos_db):
        miner = _make_miner(
            "cd", checkpoint_dir=str(tmp_path / "empty"), resume=True
        )
        with pytest.raises(CheckpointError, match="no checkpoint journal"):
            miner.mine(chaos_db)

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="requires a checkpoint_dir"):
            NativeCountDistribution(SUPPORT, 2, resume=True)

    def test_meta_mismatch_refused(self, tmp_path, chaos_db):
        ckpt = str(tmp_path / "ckpt")
        _make_miner("cd", checkpoint_dir=ckpt).mine(chaos_db)
        other = NativeCountDistribution(
            0.5, 3, checkpoint_dir=ckpt, resume=True,
            start_method=_start_method(),
        )
        with pytest.raises(CheckpointError, match="meta mismatch"):
            other.mine(chaos_db)

    def test_different_db_refused(self, tmp_path, chaos_db):
        ckpt = str(tmp_path / "ckpt")
        _make_miner("cd", checkpoint_dir=ckpt).mine(chaos_db)
        miner = _make_miner("cd", checkpoint_dir=ckpt, resume=True)
        # Same transaction count (so min_count and num_transactions agree
        # with the journal) but different contents — only the packed-bytes
        # fingerprint can tell these apart.
        altered = [tuple(item + 1 for item in t) for t in CHAOS_TRANSACTIONS]
        with pytest.raises(CheckpointError, match="db_fingerprint"):
            miner.mine(TransactionDB(altered))

    def test_resume_after_complete_run(self, tmp_path, chaos_db, serial):
        """A journal holding every pass restores without re-mining."""
        ckpt = str(tmp_path / "ckpt")
        _make_miner("cd", checkpoint_dir=ckpt).mine(chaos_db)
        miner = _make_miner("cd", checkpoint_dir=ckpt, resume=True)
        result = miner.mine(chaos_db)
        assert miner.last_resume_k == 3
        assert result.frequent == serial.frequent

    def test_cross_formulation_resume(self, tmp_path, chaos_db, serial):
        """A mine checkpointed under CD may finish under IDD.

        Every formulation produces bit-identical counts, so the meta
        identity deliberately excludes the algorithm.
        """
        ckpt = str(tmp_path / "ckpt")
        assert (
            _run_coordinator(
                dict(
                    algorithm="cd",
                    checkpoint_dir=ckpt,
                    faults="coord-kill:k2",
                )
            )
            == -signal.SIGKILL
        )
        miner = _make_miner("idd", checkpoint_dir=ckpt, resume=True)
        assert miner.mine(chaos_db).frequent == serial.frequent

    def test_checkpointing_without_faults_is_invisible(
        self, tmp_path, chaos_db, serial
    ):
        """A journaled clean mine matches an unjournaled one exactly."""
        miner = _make_miner(
            "cd", checkpoint_dir=str(tmp_path / "ckpt")
        )
        plain = _make_miner("cd")
        assert (
            miner.mine(chaos_db).frequent
            == plain.mine(chaos_db).frequent
            == serial.frequent
        )

    def test_clean_mmap_mine_leaves_store_dir_empty(
        self, tmp_path, chaos_db, serial
    ):
        store = tmp_path / "store"
        miner = _make_miner(
            "idd", data_plane="mmap", store_dir=str(store)
        )
        assert miner.mine(chaos_db).frequent == serial.frequent
        assert list(store.glob("*.packed")) == []
