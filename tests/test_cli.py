"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.transaction import TransactionDB
from repro.data.io import write_dat


@pytest.fixture
def dat_file(tmp_path):
    db = TransactionDB(
        [(1, 2, 3), (1, 2), (2, 3), (1, 3), (1, 2, 3), (2, 3)]
    )
    path = tmp_path / "db.dat"
    write_dat(db, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self, dat_file):
        args = build_parser().parse_args(["mine", str(dat_file)])
        assert args.min_support == 0.01
        assert args.algorithm is None

    def test_bad_algorithm_rejected(self, dat_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", str(dat_file), "--algorithm", "NOPE"]
            )

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])


class TestMineCommand:
    def test_serial_mine(self, dat_file, capsys):
        exit_code = main(["mine", str(dat_file), "--min-support", "0.3"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "serial Apriori" in out
        assert "frequent item-sets" in out

    def test_parallel_mine(self, dat_file, capsys):
        exit_code = main(
            [
                "mine",
                str(dat_file),
                "--min-support",
                "0.3",
                "--algorithm",
                "HD",
                "--processors",
                "2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "HD on 2 simulated processors" in out
        assert "response time" in out

    def test_mine_with_rules(self, dat_file, capsys):
        exit_code = main(
            [
                "mine",
                str(dat_file),
                "--min-support",
                "0.3",
                "--min-confidence",
                "0.6",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "rules at confidence" in out
        assert "=>" in out

    def test_mine_on_sp2(self, dat_file, capsys):
        exit_code = main(
            [
                "mine",
                str(dat_file),
                "--min-support",
                "0.3",
                "--algorithm",
                "CD",
                "--machine",
                "sp2",
            ]
        )
        assert exit_code == 0
        assert "IBM SP2" in capsys.readouterr().out


class TestNativeMineCommand:
    def test_native_mine(self, dat_file, capsys):
        exit_code = main(
            [
                "mine", str(dat_file), "--min-support", "0.3",
                "--algorithm", "native", "--processors", "2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "native CD on 2 worker processes" in out
        assert "frequent item-sets" in out

    def test_native_mine_with_fault_spec(self, dat_file, capsys):
        exit_code = main(
            [
                "mine", str(dat_file), "--min-support", "0.3",
                "--algorithm", "native", "--processors", "2",
                "--fault-spec", "kill@0:k2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "pass 2: worker 0 died -> respawned" in out

    def test_simulated_mine_with_fault_spec(self, dat_file, capsys):
        exit_code = main(
            [
                "mine", str(dat_file), "--min-support", "0.3",
                "--algorithm", "CD", "--processors", "2",
                "--fault-spec", "kill@0:k2",
            ]
        )
        assert exit_code == 0
        assert "frequent item-sets" in capsys.readouterr().out

    def test_fault_knob_defaults(self, dat_file):
        args = build_parser().parse_args(["mine", str(dat_file)])
        assert args.fault_spec is None
        assert args.recv_timeout == 30.0
        assert args.max_retries == 2

    def test_fault_spec_parsed_at_cli_edge(self, dat_file):
        from repro.faults import FaultSpec

        args = build_parser().parse_args(
            ["mine", str(dat_file), "--fault-spec", "kill@0:k2"]
        )
        assert isinstance(args.fault_spec, FaultSpec)
        assert args.fault_spec.format() == "kill@0:k2"

    def test_malformed_fault_spec_is_usage_error(self, dat_file, capsys):
        # e.g. 'kill@0' (no pass number) must be an argparse usage
        # error, not a raw ValueError traceback from miner construction.
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "mine", str(dat_file),
                    "--algorithm", "native",
                    "--fault-spec", "kill@0",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--fault-spec" in err
        assert "malformed fault event" in err


class TestKernelAndDataPlaneFlags:
    def test_flag_defaults(self, dat_file):
        args = build_parser().parse_args(["mine", str(dat_file)])
        assert args.kernel is None
        assert args.data_plane is None

    def test_bad_kernel_is_usage_error(self, dat_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(dat_file), "--kernel", "turbo"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--kernel" in err
        assert "unknown kernel" in err

    def test_bad_data_plane_is_usage_error(self, dat_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["mine", str(dat_file), "--algorithm", "native",
                 "--data-plane", "carrier-pigeon"]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--data-plane" in err
        assert "unknown data plane" in err

    def test_data_plane_without_native_is_usage_error(self, dat_file, capsys):
        # --data-plane picks the native pool's transport; the simulated
        # formulations have no worker processes for it to configure.
        for argv in (
            ["mine", str(dat_file), "--data-plane", "shared"],
            ["mine", str(dat_file), "--algorithm", "CD",
             "--data-plane", "pickle"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "--data-plane" in capsys.readouterr().err

    def test_serial_mine_with_kernel(self, dat_file, capsys):
        for kernel in ("reference", "fast"):
            exit_code = main(
                ["mine", str(dat_file), "--min-support", "0.3",
                 "--kernel", kernel]
            )
            assert exit_code == 0
            assert "serial Apriori" in capsys.readouterr().out

    def test_simulated_mine_with_kernel(self, dat_file, capsys):
        exit_code = main(
            ["mine", str(dat_file), "--min-support", "0.3",
             "--algorithm", "CD", "--processors", "2",
             "--kernel", "fast"]
        )
        assert exit_code == 0
        assert "frequent item-sets" in capsys.readouterr().out

    def test_native_mine_each_plane(self, dat_file, capsys):
        for plane in ("pickle", "shared"):
            exit_code = main(
                ["mine", str(dat_file), "--min-support", "0.3",
                 "--algorithm", "native", "--processors", "2",
                 "--data-plane", plane, "--kernel", "reference"]
            )
            assert exit_code == 0
            out = capsys.readouterr().out
            assert f"({plane} data plane)" in out
            assert "frequent item-sets" in out


class TestCheckpointFlags:
    """The out-of-core and crash-recovery flags added with the mmap plane."""

    def test_flag_defaults(self, dat_file):
        args = build_parser().parse_args(["mine", str(dat_file)])
        assert args.store_dir is None
        assert args.block_budget is None
        assert args.checkpoint_dir is None
        assert args.resume is False

    def test_resume_without_checkpoint_dir_is_usage_error(
        self, dat_file, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["mine", str(dat_file), "--algorithm", "native", "--resume"]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--resume requires --checkpoint-dir" in err

    def test_checkpoint_dir_without_native_is_usage_error(
        self, dat_file, tmp_path, capsys
    ):
        # Only the native pool journals passes; the simulated
        # formulations have no coordinator process to crash.
        for argv in (
            ["mine", str(dat_file), "--checkpoint-dir", str(tmp_path)],
            ["mine", str(dat_file), "--algorithm", "CD",
             "--checkpoint-dir", str(tmp_path)],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "--checkpoint-dir" in capsys.readouterr().err

    def test_block_budget_without_native_is_usage_error(
        self, dat_file, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(dat_file), "--block-budget", "64"])
        assert excinfo.value.code == 2
        assert "--block-budget" in capsys.readouterr().err

    def test_block_budget_on_pickle_plane_is_usage_error(
        self, dat_file, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["mine", str(dat_file), "--algorithm", "native",
                 "--data-plane", "pickle", "--block-budget", "64"]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "zero-copy data plane" in err

    def test_block_budget_must_be_positive(self, dat_file, capsys):
        for bad in ("0", "-3", "four"):
            with pytest.raises(SystemExit) as excinfo:
                main(
                    ["mine", str(dat_file), "--algorithm", "native",
                     "--data-plane", "shared", "--block-budget", bad]
                )
            assert excinfo.value.code == 2
            assert "--block-budget" in capsys.readouterr().err

    def test_store_dir_without_mmap_plane_is_usage_error(
        self, dat_file, tmp_path, capsys
    ):
        for argv in (
            ["mine", str(dat_file), "--store-dir", str(tmp_path)],
            ["mine", str(dat_file), "--algorithm", "native",
             "--data-plane", "shared", "--store-dir", str(tmp_path)],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "--store-dir" in capsys.readouterr().err

    def test_native_mine_through_mmap_plane(self, dat_file, tmp_path, capsys):
        store = tmp_path / "store"
        store.mkdir()
        exit_code = main(
            ["mine", str(dat_file), "--min-support", "0.3",
             "--algorithm", "native", "--processors", "2",
             "--data-plane", "mmap", "--store-dir", str(store),
             "--block-budget", "4", "--kernel", "reference"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "(mmap data plane)" in out
        assert "frequent item-sets" in out
        # A clean run unlinks its packed store file at pool shutdown.
        assert list(store.glob("*.packed")) == []

    def test_resume_round_trip_prints_pass(self, dat_file, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        base = [
            "mine", str(dat_file), "--min-support", "0.3",
            "--algorithm", "native", "--processors", "2",
            "--checkpoint-dir", ckpt,
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint after pass" in out
        assert "frequent item-sets" in out


class TestGenerateCommand:
    def test_generates_file(self, tmp_path, capsys):
        out_path = tmp_path / "synthetic.dat"
        exit_code = main(
            [
                "generate",
                "--transactions",
                "50",
                "--items",
                "40",
                "--out",
                str(out_path),
            ]
        )
        assert exit_code == 0
        assert out_path.exists()
        assert "wrote 50 transactions" in capsys.readouterr().out

    def test_generated_file_is_minable(self, tmp_path, capsys):
        out_path = tmp_path / "synthetic.dat"
        main(
            ["generate", "--transactions", "60", "--items", "30",
             "--out", str(out_path), "--seed", "4"]
        )
        exit_code = main(
            ["mine", str(out_path), "--min-support", "0.1"]
        )
        assert exit_code == 0


class TestScaleFlags:
    """`generate --generate-to` / `mine --attach` / `--two-phase`."""

    def test_generate_to_writes_attachable_store(self, tmp_path, capsys):
        store = tmp_path / "db.packed"
        exit_code = main(
            ["generate", "--transactions", "250", "--items", "40",
             "--seed", "5", "--generate-to", str(store),
             "--progress-every", "100"]
        )
        assert exit_code == 0
        assert store.exists()
        out = capsys.readouterr().out
        assert "generated 100/250 transactions" in out
        assert "generated 250/250 transactions" in out
        assert "wrote packed store" in out

    def test_generate_without_destination_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["generate", "--transactions", "10"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--out" in err and "--generate-to" in err

    def test_generate_both_destinations(self, tmp_path, capsys):
        exit_code = main(
            ["generate", "--transactions", "40", "--items", "30",
             "--out", str(tmp_path / "db.dat"),
             "--generate-to", str(tmp_path / "db.packed")]
        )
        assert exit_code == 0
        assert (tmp_path / "db.dat").exists()
        assert (tmp_path / "db.packed").exists()

    def test_attach_mines_the_store(self, tmp_path, capsys):
        store = tmp_path / "db.packed"
        main(
            ["generate", "--transactions", "200", "--items", "30",
             "--seed", "6", "--generate-to", str(store)]
        )
        capsys.readouterr()
        exit_code = main(
            ["mine", "--attach", str(store), "--algorithm", "native-cd",
             "--processors", "2", "--min-support", "0.1"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "attached 200 transactions" in out
        assert "(mmap data plane)" in out  # --attach defaults to mmap
        assert "frequent item-sets" in out
        # The attached store is the caller's file: still there.
        assert store.exists()

    def test_attach_with_two_phase(self, tmp_path, capsys):
        store = tmp_path / "db.packed"
        main(
            ["generate", "--transactions", "200", "--items", "30",
             "--seed", "6", "--generate-to", str(store)]
        )
        capsys.readouterr()
        exit_code = main(
            ["mine", "--attach", str(store), "--algorithm", "native-cd",
             "--processors", "2", "--min-support", "0.1", "--two-phase"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "phase 1 complete" in out
        assert "frequent item-sets" in out

    def test_database_and_attach_are_mutually_exclusive(
        self, dat_file, tmp_path, capsys
    ):
        for argv in (
            ["mine"],
            ["mine", str(dat_file), "--attach", str(tmp_path / "x.packed")],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "exactly one input" in capsys.readouterr().err

    def test_attach_without_native_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", "--attach", str(tmp_path / "x.packed")])
        assert excinfo.value.code == 2
        assert "--attach requires a native algorithm" in (
            capsys.readouterr().err
        )

    def test_attach_on_pickle_plane_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["mine", "--attach", str(tmp_path / "x.packed"),
                 "--algorithm", "native", "--data-plane", "pickle"]
            )
        assert excinfo.value.code == 2
        assert "zero-copy data plane" in capsys.readouterr().err

    def test_attach_missing_store_is_clean_error(self, tmp_path, capsys):
        exit_code = main(
            ["mine", "--attach", str(tmp_path / "gone.packed"),
             "--algorithm", "native-cd"]
        )
        assert exit_code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_two_phase_without_cd_is_usage_error(self, dat_file, capsys):
        for argv in (
            ["mine", str(dat_file), "--two-phase"],
            ["mine", str(dat_file), "--algorithm", "native-idd",
             "--two-phase"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "--two-phase" in capsys.readouterr().err

    def test_two_phase_on_pickle_plane_is_usage_error(
        self, dat_file, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["mine", str(dat_file), "--algorithm", "native",
                 "--data-plane", "pickle", "--two-phase"]
            )
        assert excinfo.value.code == 2
        assert "zero-copy data plane" in capsys.readouterr().err

    def test_two_phase_matches_single_phase(self, dat_file, capsys):
        main(
            ["mine", str(dat_file), "--min-support", "0.3",
             "--algorithm", "native", "--processors", "2"]
        )
        single = capsys.readouterr().out
        main(
            ["mine", str(dat_file), "--min-support", "0.3",
             "--algorithm", "native", "--processors", "2", "--two-phase"]
        )
        two = capsys.readouterr().out
        pick = lambda text: [  # noqa: E731
            line for line in text.splitlines()
            if "frequent item-sets" in line or "count=" in line
        ]
        assert pick(single) == pick(two)


class TestReportFlag:
    def test_serial_report(self, dat_file, capsys):
        exit_code = main(
            ["mine", str(dat_file), "--min-support", "0.3", "--report"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "serial Apriori run" in out
        assert "pass" in out

    def test_parallel_report(self, dat_file, capsys):
        exit_code = main(
            [
                "mine", str(dat_file), "--min-support", "0.3",
                "--algorithm", "CD", "--processors", "2", "--report",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "CD run on 2 simulated processors" in out
        assert "runtime decomposition" in out


class TestChartFlag:
    def test_experiment_chart(self, capsys, monkeypatch):
        from repro.experiments.common import ExperimentResult

        def fake_experiment(**kwargs):
            r = ExperimentResult("table2", "fake", "pass", "value")
            r.add_point("G", 2, 4)
            r.add_point("G", 3, 2)
            return r

        import repro.cli as cli_module

        monkeypatch.setitem(
            cli_module.EXPERIMENTS, "table2", fake_experiment
        )
        exit_code = main(["experiment", "table2", "--chart"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "legend:" in out


class TestServeAndQueryFlags:
    """Usage guards for the serving daemon's CLI surface."""

    def test_serve_defaults(self, dat_file):
        args = build_parser().parse_args(["serve", str(dat_file)])
        assert args.min_confidence == 0.5
        assert args.port == 7911
        assert args.remine_every is None
        assert args.algorithm == "native-cd"

    def test_serve_requires_exactly_one_input(self, dat_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve"])
        assert excinfo.value.code == 2
        assert "exactly one model source" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", str(dat_file), "--attach", "x.packed"])
        assert excinfo.value.code == 2
        assert "exactly one model source" in capsys.readouterr().err

    def test_serve_rejects_bad_confidence(self, dat_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", str(dat_file), "--min-confidence", "0"])
        assert excinfo.value.code == 2
        assert "--min-confidence" in capsys.readouterr().err

    def test_serve_rejects_bad_remine_every(self, dat_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", str(dat_file), "--remine-every", "0"])
        assert excinfo.value.code == 2
        assert "--remine-every" in capsys.readouterr().err

    def test_serve_two_phase_requires_attach(self, dat_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", str(dat_file), "--two-phase"])
        assert excinfo.value.code == 2
        assert "--attach" in capsys.readouterr().err

    def test_query_requires_exactly_one_action(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query"])
        assert excinfo.value.code == 2
        assert "exactly one action" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["query", "--stats", "--ping"])
        assert excinfo.value.code == 2
        assert "exactly one action" in capsys.readouterr().err

    def test_query_wait_requires_remine(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", "--stats", "--wait"])
        assert excinfo.value.code == 2
        assert "--remine" in capsys.readouterr().err

    def test_query_unreachable_daemon_is_an_error(self, capsys):
        # A port from the ephemeral range with nothing listening.
        exit_code = main(
            ["query", "--port", "1", "--timeout", "0.5", "--ping"]
        )
        assert exit_code == 1
        assert "cannot reach daemon" in capsys.readouterr().err


class TestServeEndToEnd:
    """The daemon as a subprocess, driven by the in-process query CLI."""

    @staticmethod
    def _spawn_daemon(dat_file, *extra):
        import os
        import select
        import subprocess
        import sys
        from pathlib import Path

        repo_src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(repo_src), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(dat_file),
                "--min-support", "0.2", "--min-confidence", "0.4",
                "--port", "0", *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        ready, _, _ = select.select([proc.stdout], [], [], 30.0)
        assert ready, "daemon never printed its ready line"
        line = proc.stdout.readline()
        assert "serving rules on" in line, line
        port = int(line.split("127.0.0.1:")[1].split()[0])
        return proc, port

    @pytest.mark.timeout(120)
    def test_serve_query_remine_shutdown(self, dat_file, capsys):
        proc, port = self._spawn_daemon(dat_file)
        try:
            exit_code = main(["query", "--port", str(port), "1"])
            assert exit_code == 0
            out = capsys.readouterr().out
            assert "generation 1" in out
            assert main(["query", "--port", str(port), "--remine",
                         "--wait"]) == 0
            assert "generation 2" in capsys.readouterr().out
            assert main(["query", "--port", str(port), "--stats"]) == 0
            stats_out = capsys.readouterr().out
            assert "failed_queries:     0" in stats_out
            assert "generation:         2" in stats_out
            assert main(["query", "--port", str(port), "--shutdown"]) == 0
            assert proc.wait(timeout=20) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    @pytest.mark.timeout(120)
    def test_sigterm_is_a_clean_exit(self, dat_file, capsys):
        import signal

        proc, port = self._spawn_daemon(dat_file)
        try:
            assert main(["query", "--port", str(port), "--ping"]) == 0
            capsys.readouterr()
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0
            remaining = proc.stdout.read()
            assert "shut down cleanly" in remaining
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
