"""Tests for the experiment result container."""

import pytest

from repro.core.apriori import Apriori
from repro.experiments.common import ExperimentResult, check_all_equal
from repro.parallel.runner import mine_parallel


@pytest.fixture
def result():
    r = ExperimentResult(
        name="demo",
        title="demo experiment",
        x_label="processors",
        y_label="seconds",
    )
    r.add_point("CD", 2, 1.5)
    r.add_point("CD", 4, 1.2)
    r.add_point("HD", 2, 1.0)
    return r


class TestExperimentResult:
    def test_add_and_get(self, result):
        assert result.get("CD", 2) == 1.5
        assert result.x_values == [2, 4]

    def test_get_missing_raises(self, result):
        with pytest.raises(KeyError):
            result.get("CD", 99)
        with pytest.raises(KeyError):
            result.get("ZZ", 2)

    def test_ratio(self, result):
        assert result.ratio("CD", "HD", 2) == pytest.approx(1.5)

    def test_to_table_renders_all_series(self, result):
        table = result.to_table()
        assert "demo experiment" in table
        assert "CD" in table and "HD" in table
        assert "1.5000" in table

    def test_to_table_handles_missing_cells(self, result):
        table = result.to_table()
        # HD has no reading at x=4; the row must still render.
        assert "4" in table

    def test_notes_rendered(self, result):
        result.notes.append("hello note")
        assert "note: hello note" in result.to_table()

    def test_custom_format(self, result):
        table = result.to_table("{:10.1f}")
        assert "1.5" in table


class TestCheckAllEqual:
    def test_accepts_matching_results(self, tiny_db):
        runs = [
            mine_parallel("CD", tiny_db, 0.3, 2),
            mine_parallel("IDD", tiny_db, 0.3, 2),
            Apriori(0.3).mine(tiny_db),
        ]
        check_all_equal(runs, context="test")

    def test_single_result_is_trivially_ok(self, tiny_db):
        check_all_equal([mine_parallel("CD", tiny_db, 0.3, 2)])

    def test_detects_mismatch(self, tiny_db):
        a = mine_parallel("CD", tiny_db, 0.3, 2)
        b = mine_parallel("CD", tiny_db, 0.3, 2)
        b.frequent[(42, 43)] = 1
        with pytest.raises(AssertionError, match="disagrees"):
            check_all_equal([a, b], context="mismatch")
