"""Tests for ASCII chart rendering."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.plotting import SERIES_GLYPHS, render_chart


@pytest.fixture
def result():
    r = ExperimentResult(
        name="demo",
        title="demo chart",
        x_label="processors",
        y_label="seconds",
    )
    for p, cd, hd in [(4, 0.25, 0.11), (8, 0.26, 0.09), (16, 0.30, 0.10)]:
        r.add_point("CD", p, cd)
        r.add_point("HD", p, hd)
    return r


class TestRenderChart:
    def test_contains_title_and_legend(self, result):
        chart = render_chart(result)
        assert "demo chart" in chart
        assert "* CD" in chart
        assert "o HD" in chart
        assert "(y = seconds)" in chart

    def test_axis_labels(self, result):
        chart = render_chart(result)
        assert "(processors)" in chart
        assert "4" in chart and "16" in chart

    def test_log_scale_noted(self, result):
        chart = render_chart(result, logx=True)
        assert "log scale" in chart

    def test_all_points_drawn(self, result):
        chart = render_chart(result, width=40, height=12)
        # Three CD points and three HD points.
        assert chart.count("*") >= 3
        assert chart.count("o") >= 3

    def test_dimensions(self, result):
        chart = render_chart(result, width=32, height=8)
        plot_lines = [ln for ln in chart.splitlines() if "|" in ln]
        assert len(plot_lines) == 8
        for line in plot_lines:
            assert len(line.split("|", 1)[1]) == 32

    def test_series_subset(self, result):
        chart = render_chart(result, series_names=["HD"])
        assert "HD" in chart
        assert "* HD" in chart  # first glyph goes to the only series
        assert "CD" not in chart

    def test_unknown_series_rejected(self, result):
        with pytest.raises(ValueError, match="unknown series"):
            render_chart(result, series_names=["ZZ"])

    def test_empty_result_rejected(self):
        empty = ExperimentResult("e", "t", "x", "y")
        with pytest.raises(ValueError, match="no plottable"):
            render_chart(empty)

    def test_tiny_dimensions_rejected(self, result):
        with pytest.raises(ValueError, match="at least"):
            render_chart(result, width=4, height=2)

    def test_flat_series_does_not_crash(self):
        r = ExperimentResult("flat", "flat", "x", "y")
        r.add_point("A", 1, 5.0)
        r.add_point("A", 2, 5.0)
        chart = render_chart(r)
        assert "* A" in chart

    def test_single_point_series(self):
        r = ExperimentResult("one", "one point", "x", "y")
        r.add_point("A", 3, 1.0)
        chart = render_chart(r)
        assert "*" in chart

    def test_deterministic(self, result):
        assert render_chart(result) == render_chart(result)

    def test_glyph_cycling_beyond_palette(self):
        r = ExperimentResult("many", "many series", "x", "y")
        for i in range(len(SERIES_GLYPHS) + 2):
            r.add_point(f"s{i}", 1, float(i))
            r.add_point(f"s{i}", 2, float(i) + 0.5)
        chart = render_chart(r)
        assert f"s{len(SERIES_GLYPHS) + 1}" in chart
