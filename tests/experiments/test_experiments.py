"""Small-scale runs of every experiment, asserting the paper's shapes.

Each experiment is executed with reduced parameters (fewer processors,
smaller databases) so the whole module stays fast; the assertions check
the *qualitative* claims the full-scale benchmarks reproduce.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_experiment,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
    run_figure14,
    run_figure15,
    run_imbalance,
    run_table2,
)
from repro.parallel.hybrid import choose_grid


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "figure10",
            "figure11",
            "figure12",
            "figure13",
            "figure14",
            "figure15",
            "table2",
            "imbalance",
            "hpa_comm",
            "ablation_hashtree",
            "ablation_partition",
            "ablation_bitmap",
            "ablation_hd_threshold",
            "ablation_overlap",
            "topology",
            "ablation_candgen",
        }

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("figure99")

    def test_run_experiment_dispatches(self):
        result = run_experiment(
            "table2", num_transactions=200, num_processors=4,
            switch_threshold=100, min_support=0.05,
        )
        assert result.name == "table2"


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        # The default (paper-shaped) workload at reduced processor
        # counts; the DD-vs-CD crossover needs the N-heavier regime.
        return run_figure10(
            processor_counts=(4, 8, 16),
            dd_max_processors=16,
        )

    def test_all_series_present(self, result):
        assert set(result.series) == {"CD", "DD", "DD+comm", "IDD", "HD"}

    def test_dd_is_worst_and_diverging(self, result):
        assert result.get("DD", 16) > result.get("CD", 16)
        assert result.get("DD", 16) > result.get("DD", 4)

    def test_dd_comm_improves_on_dd(self, result):
        assert result.get("DD+comm", 16) < result.get("DD", 16)

    def test_idd_beats_dd(self, result):
        for p in (4, 8, 16):
            assert result.get("IDD", p) < result.get("DD", p)

    def test_hd_competitive_with_cd(self, result):
        assert result.get("HD", 16) <= result.get("CD", 16) * 1.1

    def test_dd_cap_respected(self):
        capped = run_figure10(
            tx_per_processor=40,
            min_support=0.03,
            processor_counts=(2, 4),
            dd_max_processors=2,
            max_k=2,
        )
        assert 4 not in capped.series["DD"]
        assert 4 in capped.series["CD"]


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure11(
            tx_per_processor=60,
            min_support=0.02,
            processor_counts=(1, 2, 4, 8),
        )

    def test_idd_visits_decrease_with_p(self, result):
        series = [result.get("IDD", p) for p in (1, 2, 4, 8)]
        assert series == sorted(series, reverse=True)

    def test_idd_falls_much_faster_than_dd(self, result):
        """DD's visits must NOT drop by the full factor of P."""
        dd_ratio = result.get("DD", 1) / result.get("DD", 8)
        idd_ratio = result.get("IDD", 1) / result.get("IDD", 8)
        assert dd_ratio < 8 / 2
        assert idd_ratio > dd_ratio

    def test_curves_nearly_coincide_serially(self, result):
        assert result.get("IDD", 1) <= result.get("DD", 1)
        assert result.get("IDD", 1) == pytest.approx(
            result.get("DD", 1), rel=0.25
        )


class TestFigure12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure12(
            num_transactions=1200,
            num_processors=8,
            support_sweep=(0.03, 0.015, 0.008),
            memory_candidates=15_000,
            switch_threshold=2000,
        )

    def test_candidate_axis_is_increasing(self, result):
        assert result.x_values == sorted(result.x_values)

    def test_cd_falls_behind_as_candidates_grow(self, result):
        largest = result.x_values[-1]
        assert result.get("CD", largest) > result.get("IDD", largest)
        assert result.get("CD", largest) > result.get("HD", largest)

    def test_cd_penalty_grows_along_sweep(self, result):
        first, last = result.x_values[0], result.x_values[-1]
        assert result.ratio("CD", "IDD", last) > result.ratio(
            "CD", "IDD", first
        )

    def test_memory_forces_extra_scans(self, result):
        last = result.x_values[-1]
        assert result.extras[("CD", last, "max_scans")] > 1


class TestFigure13:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure13(
            num_transactions=1500,
            min_support=0.01,
            processor_counts=(2, 4, 8),
            switch_threshold=2000,
        )

    def test_speedups_grow_with_p(self, result):
        for algorithm in ("IDD", "HD"):
            series = [result.get(algorithm, p) for p in (2, 4, 8)]
            assert series == sorted(series)

    def test_hd_at_least_matches_cd(self, result):
        assert result.get("HD", 8) >= result.get("CD", 8)

    def test_cd_speedup_saturates(self, result):
        """CD's serial tree build must cost it speedup at higher P."""
        assert result.get("CD", 8) < 8


class TestFigure14:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure14(
            transaction_counts=(400, 800, 1600),
            min_support=0.02,
            num_processors=8,
            switch_threshold=500,
        )

    def test_times_grow_with_n(self, result):
        for algorithm in ("CD", "IDD", "HD"):
            series = [result.get(algorithm, n) for n in (400, 800, 1600)]
            assert series == sorted(series)

    def test_hd_below_cd_everywhere(self, result):
        for n in (400, 800, 1600):
            assert result.get("HD", n) <= result.get("CD", n) * 1.1


class TestFigure15:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure15(
            num_transactions=800,
            support_sweep=(0.03, 0.015, 0.008),
            num_processors=8,
            memory_candidates=400,
            switch_threshold=100,
        )

    def test_cd_grows_steeply_with_m(self, result):
        series = [result.get("CD", x) for x in result.x_values]
        assert series == sorted(series)
        assert series[-1] > series[0] * 2

    def test_idd_overtakes_cd_at_large_m(self, result):
        largest = result.x_values[-1]
        assert result.get("IDD", largest) < result.get("CD", largest)

    def test_hd_tracks_the_best(self, result):
        for x in result.x_values:
            best = min(result.get("CD", x), result.get("IDD", x))
            assert result.get("HD", x) <= best * 1.5

    def test_cd_scan_counts_grow(self, result):
        scans = [
            result.extras[("CD", x, "scans")] for x in result.x_values
        ]
        assert scans[-1] > scans[0]


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(
            num_transactions=600,
            min_support=0.02,
            num_processors=8,
            switch_threshold=200,
        )

    def test_grids_multiply_to_p(self, result):
        for k in result.x_values:
            assert result.get("G", k) * result.get("P/G", k) == 8

    def test_grid_follows_choose_grid(self, result):
        for k in result.x_values:
            expected = choose_grid(int(result.get("candidates", k)), 200, 8)
            assert result.get("G", k) == expected

    def test_final_passes_collapse_to_cd(self, result):
        last = result.x_values[-1]
        assert result.get("G", last) == 1


class TestImbalance:
    @pytest.fixture(scope="class")
    def result(self):
        return run_imbalance(
            tx_per_processor=80,
            min_support=0.02,
            processor_counts=(2, 8),
        )

    def test_imbalances_non_negative(self, result):
        for series in result.series.values():
            for value in series.values():
                assert value >= 0.0

    def test_time_imbalance_exceeds_candidate_imbalance(self, result):
        """The paper's Section III-C observation, at the larger P."""
        assert result.get("compute_time", 8) >= result.get("candidates", 8)


class TestHpaComm:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import run_hpa_comm

        return run_hpa_comm(
            num_transactions=300, num_processors=8, pass_numbers=(2, 3, 4)
        )

    def test_idd_volume_is_flat_in_k(self, result):
        values = {result.get("IDD", k) for k in (2, 3, 4)}
        assert len(values) == 1

    def test_hpa_volume_explodes_with_k(self, result):
        """Section III-E: beyond k=2 HPA's volume grows combinatorially."""
        assert result.get("HPA", 3) > 2 * result.get("HPA", 2)
        assert result.get("HPA", 4) > 2 * result.get("HPA", 3)

    def test_hpa_relative_cost_grows(self, result):
        ratios = [
            result.get("HPA", k) / result.get("IDD", k) for k in (2, 3, 4)
        ]
        assert ratios == sorted(ratios)


class TestTopology:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.cluster.topology import FULLY_CONNECTED, RING
        from repro.experiments import run_topology

        return run_topology(
            num_transactions=800,
            num_processors=16,
            topologies=(RING, FULLY_CONNECTED),
        )

    def test_ring_slower_than_fully_connected(self, result):
        assert result.get("DD", 0) > result.get("DD", 1)

    def test_idd_flat(self, result):
        assert result.get("IDD", 0) == result.get("IDD", 1)

    def test_contention_factors_recorded(self, result):
        assert result.extras[("DD", 0, "contention_factor")] > result.extras[
            ("DD", 1, "contention_factor")
        ]
