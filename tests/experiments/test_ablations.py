"""Small-scale runs of the ablation studies."""

import pytest

from repro.experiments.ablations import (
    run_ablation_bitmap,
    run_ablation_hashtree,
    run_ablation_hd_threshold,
    run_ablation_overlap,
    run_ablation_partition,
)


class TestHashTreeAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_hashtree(
            num_transactions=300,
            min_support=0.02,
            branchings=(4, 64),
            leaf_capacities=(4, 32),
        )

    def test_all_geometries_reported(self, result):
        assert set(result.series) == {
            "traversals@S=4",
            "traversals@S=32",
            "checks@S=4",
            "checks@S=32",
        }

    def test_wider_branching_cuts_checking_work(self, result):
        assert result.get("checks@S=32", 64) < result.get("checks@S=32", 4)

    def test_smaller_leaves_cut_checking_work(self, result):
        assert result.get("checks@S=4", 4) <= result.get("checks@S=32", 4)


class TestPartitionAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_partition(
            tx_per_processor=60,
            min_support=0.015,
            processor_counts=(4, 8),
        )

    def test_bin_packing_beats_contiguous(self, result):
        """Section III-C's claim: naive contiguous ranges imbalance."""
        assert result.get("bin_pack", 8) < result.get("contiguous", 8)

    def test_contiguous_idles_more(self, result):
        assert result.extras[("contiguous", 8, "idle")] > result.extras[
            ("bin_pack", 8, "idle")
        ]

    def test_refinement_improves_balance_at_scale(self, result):
        """Second-item splitting exists to fix balance; it trades some
        redundant root expansions for less idle time, so the claim to
        check is the idle reduction at the larger processor count."""
        assert (
            result.extras[("refined", 8, "idle")]
            <= result.extras[("bin_pack", 8, "idle")] * 1.05
        )


class TestBitmapAblation:
    def test_bitmap_always_helps(self):
        result = run_ablation_bitmap(
            tx_per_processor=60,
            min_support=0.015,
            processor_counts=(4, 8),
        )
        for p in (4, 8):
            assert result.get("bitmap", p) < result.get("no_bitmap", p)


class TestHDThresholdAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_hd_threshold(
            num_transactions=800,
            min_support=0.01,
            num_processors=8,
            thresholds=(1, 500, 10**9),
        )

    def test_all_thresholds_reported(self, result):
        assert result.x_values == [1, 500, 10**9]

    def test_intermediate_threshold_not_dominated(self, result):
        """Equation 8: some interior G beats at least one extreme."""
        middle = result.get("HD", 500)
        extremes = max(result.get("HD", 1), result.get("HD", 10**9))
        assert middle <= extremes


class TestOverlapAblation:
    def test_async_never_slower(self):
        result = run_ablation_overlap(
            tx_per_processor=60,
            min_support=0.015,
            processor_counts=(4, 8),
        )
        for p in (4, 8):
            assert result.get("async", p) <= result.get("blocking", p)
