"""Tests for run-report formatting."""

from repro import Apriori, format_report
from repro.parallel.runner import mine_parallel


class TestSerialReport:
    def test_sections_present(self, tiny_db):
        report = format_report(Apriori(0.3).mine(tiny_db))
        assert "serial Apriori run" in report
        assert "min support: 0.3" in report
        assert "pass" in report

    def test_one_row_per_pass(self, tiny_db):
        result = Apriori(0.3).mine(tiny_db)
        report = format_report(result)
        table_rows = [
            ln for ln in report.splitlines() if ln.strip() and ln.strip()[0].isdigit()
        ]
        assert len(table_rows) == len(result.passes)

    def test_size_histogram(self, tiny_db):
        report = format_report(Apriori(0.3).mine(tiny_db))
        assert "|F1|=" in report


class TestParallelReport:
    def test_sections_present(self, tiny_db):
        result = mine_parallel("HD", tiny_db, 0.3, 2, switch_threshold=3)
        report = format_report(result)
        assert "HD run on 2 simulated processors" in report
        assert "response time" in report
        assert "runtime decomposition" in report

    def test_grid_column(self, tiny_db):
        result = mine_parallel("IDD", tiny_db, 0.3, 4)
        report = format_report(result)
        assert "4x1" in report

    def test_decomposition_fractions(self, medium_quest_db):
        result = mine_parallel("CD", medium_quest_db, 0.05, 4)
        report = format_report(result)
        assert "subset" in report
        assert "% of response time" in report

    def test_multi_scan_column(self, medium_quest_db):
        from repro.cluster.machine import CRAY_T3E

        result = mine_parallel(
            "CD",
            medium_quest_db,
            0.05,
            2,
            machine=CRAY_T3E.with_memory(20),
        )
        report = format_report(result)
        scan_values = {
            int(ln.split()[4])
            for ln in report.splitlines()
            if ln.strip() and ln.strip()[0].isdigit()
        }
        assert max(scan_values) > 1
