"""Unit tests for the in-memory transaction database."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.transaction import TransactionDB


def make_db(rows):
    return TransactionDB(rows)


class TestConstruction:
    def test_accepts_canonical_rows(self):
        db = make_db([(1, 2), (3,)])
        assert len(db) == 2
        assert db[0] == (1, 2)

    def test_rejects_unsorted_rows(self):
        with pytest.raises(ValueError):
            make_db([(2, 1)])

    def test_rejects_empty_transaction(self):
        with pytest.raises(ValueError):
            make_db([()])

    def test_from_canonical_skips_validation(self):
        db = TransactionDB.from_canonical([(1, 2), (2, 3)])
        assert list(db) == [(1, 2), (2, 3)]

    def test_equality(self):
        assert make_db([(1, 2)]) == make_db([(1, 2)])
        assert make_db([(1, 2)]) != make_db([(1, 3)])

    def test_repr_contains_size(self):
        assert "n=2" in repr(make_db([(1,), (2,)]))


class TestStats:
    def test_empty_db(self):
        db = TransactionDB([])
        stats = db.stats()
        assert stats.num_transactions == 0
        assert stats.avg_length == 0.0

    def test_basic_stats(self):
        db = make_db([(1, 2, 3), (4,)])
        stats = db.stats()
        assert stats.num_transactions == 2
        assert stats.num_items == 4
        assert stats.min_length == 1
        assert stats.max_length == 3
        assert stats.avg_length == 2.0
        assert stats.total_item_occurrences == 4

    def test_item_universe_sorted(self):
        db = make_db([(5, 9), (1, 5)])
        assert db.item_universe() == (1, 5, 9)


class TestPartition:
    def test_rejects_non_positive_parts(self):
        with pytest.raises(ValueError):
            make_db([(1,)]).partition(0)

    def test_partition_preserves_order_and_content(self):
        db = make_db([(i,) for i in range(10)])
        parts = db.partition(3)
        assert [len(p) for p in parts] == [4, 3, 3]
        merged = [t for p in parts for t in p]
        assert merged == list(db)

    def test_more_parts_than_transactions(self):
        db = make_db([(1,), (2,)])
        parts = db.partition(5)
        assert [len(p) for p in parts] == [1, 1, 0, 0, 0]

    def test_single_part_is_whole_db(self):
        db = make_db([(1,), (2,)])
        (part,) = db.partition(1)
        assert list(part) == list(db)

    @given(
        st.lists(
            st.sets(st.integers(0, 20), min_size=1).map(
                lambda s: tuple(sorted(s))
            ),
            max_size=30,
        ),
        st.integers(1, 8),
    )
    def test_partition_sizes_differ_by_at_most_one(self, rows, parts):
        db = TransactionDB.from_canonical(rows)
        sizes = [len(p) for p in db.partition(parts)]
        assert sum(sizes) == len(db)
        assert max(sizes) - min(sizes) <= 1


class TestSizeInBytes:
    def test_header_plus_items(self):
        db = make_db([(1, 2, 3)])
        assert db.size_in_bytes(bytes_per_item=4) == 4 + 12

    def test_scales_with_transactions(self):
        db = make_db([(1,), (2,)])
        assert db.size_in_bytes() == 2 * (4 + 4)
