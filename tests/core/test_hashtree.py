"""Unit and property tests for the candidate hash tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap import ItemBitmap
from repro.core.counting import count_naive
from repro.core.hashtree import HashTree, HashTreeStats


def build(candidates, k=None, branching=4, leaf_capacity=2):
    tree = HashTree(
        k or len(candidates[0]), branching=branching, leaf_capacity=leaf_capacity
    )
    tree.insert_all(candidates)
    return tree


class TestConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            HashTree(0)

    def test_rejects_bad_branching(self):
        with pytest.raises(ValueError):
            HashTree(2, branching=1)

    def test_rejects_bad_leaf_capacity(self):
        with pytest.raises(ValueError):
            HashTree(2, leaf_capacity=0)

    def test_insert_wrong_size_raises(self):
        tree = HashTree(3)
        with pytest.raises(ValueError, match="size"):
            tree.insert((1, 2))

    def test_duplicate_insert_is_idempotent(self):
        tree = HashTree(2)
        tree.insert((1, 2))
        tree.insert((1, 2))
        assert len(tree) == 1
        assert tree.get_count((1, 2)) == 0

    def test_contains_and_iteration(self):
        tree = build([(1, 2), (3, 4)])
        assert (1, 2) in tree
        assert (9, 10) not in tree
        assert sorted(tree.candidates()) == [(1, 2), (3, 4)]

    def test_leaf_splits_under_pressure(self):
        # 5 candidates with distinct first-item hashes force splits under
        # leaf_capacity=2.
        candidates = [(i, i + 1, i + 2) for i in range(5)]
        tree = build(candidates, leaf_capacity=2)
        shape = tree.shape()
        assert shape.num_candidates == 5
        assert shape.num_internal >= 1
        assert shape.max_depth >= 1

    def test_leaf_at_depth_k_never_splits(self):
        # All candidates share both hash buckets (items congruent mod 2),
        # so they pile into one depth-k leaf regardless of capacity.
        candidates = [(0, 2), (2, 4), (4, 6), (0, 6), (2, 6)]
        tree = build(candidates, branching=2, leaf_capacity=2)
        shape = tree.shape()
        assert shape.max_depth <= 2
        assert shape.num_candidates == 5

    def test_shape_counts_leaves(self):
        tree = build([(1, 2)], leaf_capacity=4)
        shape = tree.shape()
        assert shape.num_leaves == 1
        assert shape.num_internal == 0
        assert shape.avg_candidates_per_leaf == 1.0


class TestCounting:
    def test_counts_simple_containment(self):
        tree = build([(1, 2), (2, 3), (3, 4)])
        tree.count_transaction((1, 2, 3))
        assert tree.get_count((1, 2)) == 1
        assert tree.get_count((2, 3)) == 1
        assert tree.get_count((3, 4)) == 0

    def test_short_transaction_is_skipped(self):
        tree = build([(1, 2, 3)])
        tree.count_transaction((1, 2))
        assert tree.stats.leaf_visits == 0
        assert all(c == 0 for c in tree.counts().values())

    def test_count_database_accumulates(self):
        tree = build([(1, 2)])
        tree.count_database([(1, 2), (1, 2, 5), (2, 5)])
        assert tree.get_count((1, 2)) == 2

    def test_matches_naive_oracle_on_example(self):
        candidates = [(1, 2, 4), (1, 2, 5), (1, 5, 9), (1, 3, 6), (3, 5, 7)]
        transactions = [(1, 2, 3, 5, 6), (1, 2, 4, 5, 9), (3, 5, 6, 7)]
        tree = build(candidates, branching=3, leaf_capacity=2)
        tree.count_database(transactions)
        assert tree.counts() == count_naive(candidates, transactions)

    def test_k1_tree(self):
        tree = build([(1,), (5,)], k=1)
        tree.count_database([(1, 5), (5,), (2,)])
        assert tree.get_count((1,)) == 1
        assert tree.get_count((5,)) == 2

    def test_get_count_unknown_raises(self):
        tree = build([(1, 2)])
        with pytest.raises(KeyError):
            tree.get_count((9, 9))

    def test_frequent_filters_by_count(self):
        tree = build([(1, 2), (3, 4)])
        tree.count_database([(1, 2), (1, 2, 3, 4)])
        assert tree.frequent(2) == {(1, 2): 2}

    def test_reset_counts(self):
        tree = build([(1, 2)])
        tree.count_transaction((1, 2))
        tree.reset_counts()
        assert tree.get_count((1, 2)) == 0

    def test_add_counts_merges(self):
        tree = build([(1, 2), (2, 3)])
        tree.count_transaction((1, 2))
        tree.add_counts({(1, 2): 5, (2, 3): 2})
        assert tree.get_count((1, 2)) == 6
        assert tree.get_count((2, 3)) == 2

    def test_add_counts_unknown_candidate_raises(self):
        tree = build([(1, 2)])
        with pytest.raises(KeyError):
            tree.add_counts({(9, 9): 1})

    def test_add_counts_error_names_diverging_candidate(self):
        tree = build([(1, 2)])
        with pytest.raises(KeyError, match=r"\(9, 9\)"):
            tree.add_counts({(9, 9): 1})


class TestRootFilter:
    def test_filter_skips_unowned_first_items(self):
        tree = build([(1, 2), (3, 4)])
        tree.count_transaction((1, 2, 3, 4), root_filter=ItemBitmap([1]))
        assert tree.get_count((1, 2)) == 1
        # (3,4) is in the tree but its first item is filtered at the root;
        # it may only be reached through a hash-collision path, in which
        # case the leaf check also filters it.
        assert tree.get_count((3, 4)) == 0

    def test_filter_with_set_object(self):
        tree = build([(1, 2), (3, 4)])
        tree.count_transaction((1, 2, 3, 4), root_filter={3})
        assert tree.get_count((3, 4)) == 1
        assert tree.get_count((1, 2)) == 0

    def test_disjoint_filters_partition_the_work(self):
        candidates = [(1, 2), (1, 3), (2, 3), (3, 4)]
        transactions = [(1, 2, 3, 4), (1, 3, 4), (2, 3, 4)]
        expected = count_naive(candidates, transactions)

        merged = {c: 0 for c in candidates}
        for owned_first_items in ({1, 3}, {2}):
            tree = build(candidates)
            tree.count_database(
                transactions, root_filter=ItemBitmap(owned_first_items)
            )
            for candidate, count in tree.counts().items():
                if candidate[0] in owned_first_items:
                    merged[candidate] += count
        assert merged == expected

    def test_filter_reduces_root_expansions(self):
        candidates = [(i, i + 1) for i in range(0, 12, 2)]
        transactions = [tuple(range(12))] * 4
        unfiltered = build(candidates, branching=8, leaf_capacity=2)
        unfiltered.count_database(transactions)
        filtered = build(candidates, branching=8, leaf_capacity=2)
        filtered.count_database(transactions, root_filter=ItemBitmap([0, 2]))
        assert (
            filtered.stats.root_items_expanded
            < unfiltered.stats.root_items_expanded
        )


class TestStatsCounters:
    def test_transactions_processed(self):
        tree = build([(1, 2)])
        tree.count_database([(1, 2), (3, 4), (5,)])
        assert tree.stats.transactions_processed == 3

    def test_leaf_memoization_counts_distinct_leaves_once(self):
        # One leaf holding both candidates: two root paths reach it but it
        # must be checked once.
        tree = HashTree(2, branching=2, leaf_capacity=10)
        tree.insert_all([(0, 2), (2, 4)])
        tree.count_transaction((0, 2, 4))
        assert tree.stats.leaf_visits == 1

    def test_snapshot_and_delta(self):
        tree = build([(1, 2)])
        tree.count_transaction((1, 2))
        before = tree.stats.snapshot()
        tree.count_transaction((1, 2))
        delta = tree.stats.delta_since(before)
        assert delta.transactions_processed == 1
        assert delta.leaf_visits == before.leaf_visits

    def test_merged_with_adds_counters(self):
        a = HashTreeStats(transactions_processed=1, hash_steps=2)
        b = HashTreeStats(transactions_processed=3, hash_steps=5)
        merged = a.merged_with(b)
        assert merged.transactions_processed == 4
        assert merged.hash_steps == 7

    def test_reset_zeroes_everything(self):
        tree = build([(1, 2)])
        tree.count_transaction((1, 2))
        tree.stats.reset()
        assert tree.stats.transactions_processed == 0
        assert tree.stats.leaf_visits == 0

    def test_avg_leaf_visits_empty_is_zero(self):
        assert HashTreeStats().avg_leaf_visits_per_transaction == 0.0


# Property-based cross-check against the naive oracle.
items = st.integers(min_value=0, max_value=25)


@st.composite
def candidates_and_transactions(draw):
    k = draw(st.integers(min_value=1, max_value=4))
    candidates = draw(
        st.lists(
            st.sets(items, min_size=k, max_size=k).map(
                lambda s: tuple(sorted(s))
            ),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    transactions = draw(
        st.lists(
            st.sets(items, min_size=1, max_size=12).map(
                lambda s: tuple(sorted(s))
            ),
            max_size=20,
        )
    )
    return candidates, transactions


class TestHashTreeProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        candidates_and_transactions(),
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=1, max_value=8),
    )
    def test_counts_equal_naive_for_any_tree_geometry(
        self, data, branching, leaf_capacity
    ):
        candidates, transactions = data
        tree = HashTree(
            len(candidates[0]), branching=branching, leaf_capacity=leaf_capacity
        )
        tree.insert_all(candidates)
        tree.count_database(transactions)
        assert tree.counts() == count_naive(candidates, transactions)

    @settings(max_examples=30, deadline=None)
    @given(candidates_and_transactions())
    def test_leaf_visits_never_exceed_checks_or_leaves(self, data):
        candidates, transactions = data
        tree = HashTree(len(candidates[0]), branching=4, leaf_capacity=2)
        tree.insert_all(candidates)
        tree.count_database(transactions)
        shape = tree.shape()
        assert tree.stats.leaf_visits <= shape.num_leaves * max(
            1, len(transactions)
        )


class TestInsertionOrderInvariance:
    @settings(max_examples=30, deadline=None)
    @given(candidates_and_transactions(), st.randoms(use_true_random=False))
    def test_counts_independent_of_insertion_order(self, data, rng):
        """The tree's counting behaviour must not depend on the order
        candidates were inserted (the parallel formulations insert in
        partition order, serial in generation order)."""
        candidates, transactions = data
        shuffled = list(candidates)
        rng.shuffle(shuffled)

        ordered_tree = HashTree(len(candidates[0]), branching=4, leaf_capacity=2)
        ordered_tree.insert_all(candidates)
        ordered_tree.count_database(transactions)

        shuffled_tree = HashTree(len(candidates[0]), branching=4, leaf_capacity=2)
        shuffled_tree.insert_all(shuffled)
        shuffled_tree.count_database(transactions)

        assert ordered_tree.counts() == shuffled_tree.counts()

    @settings(max_examples=30, deadline=None)
    @given(candidates_and_transactions(), st.randoms(use_true_random=False))
    def test_shape_independent_of_insertion_order(self, data, rng):
        candidates, __ = data
        shuffled = list(candidates)
        rng.shuffle(shuffled)
        a = HashTree(len(candidates[0]), branching=4, leaf_capacity=2)
        a.insert_all(candidates)
        b = HashTree(len(candidates[0]), branching=4, leaf_capacity=2)
        b.insert_all(shuffled)
        assert a.shape() == b.shape()
