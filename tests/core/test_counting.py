"""Tests for the counting front-ends (naive oracle and hash-tree path)."""

import pytest

from repro.core.counting import count_naive, count_with_hashtree, support_count


class TestCountNaive:
    def test_simple(self):
        counts = count_naive([(1, 2), (2, 3)], [(1, 2, 3), (2, 3)])
        assert counts == {(1, 2): 1, (2, 3): 2}

    def test_no_transactions(self):
        assert count_naive([(1,)], []) == {(1,): 0}

    def test_no_candidates(self):
        assert count_naive([], [(1, 2)]) == {}


class TestCountWithHashtree:
    def test_matches_naive(self, tiny_db):
        candidates = [(1, 2), (2, 3), (1, 4), (3, 4)]
        counts, tree = count_with_hashtree(candidates, tiny_db)
        assert counts == count_naive(candidates, tiny_db)
        assert tree.stats.transactions_processed == len(tiny_db)

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError, match="at least one candidate"):
            count_with_hashtree([], [(1, 2)])

    def test_custom_geometry(self, tiny_db):
        candidates = [(1, 2, 3), (2, 3, 4)]
        counts, tree = count_with_hashtree(
            candidates, tiny_db, branching=2, leaf_capacity=1
        )
        assert counts == count_naive(candidates, tiny_db)
        assert tree.branching == 2


class TestSupportCount:
    def test_paper_worked_example(self, supermarket_db):
        """Section II: sigma(Diaper, Milk) = 3, sigma(D, M, Beer) = 2."""
        diaper_milk = (3, 4)
        diaper_milk_beer = (0, 3, 4)
        assert support_count(diaper_milk, supermarket_db) == 3
        assert support_count(diaper_milk_beer, supermarket_db) == 2

    def test_absent_itemset(self, supermarket_db):
        # No transaction contains all five items.
        assert support_count((0, 1, 2, 3, 4), supermarket_db) == 0
