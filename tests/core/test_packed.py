"""Tests for the packed columnar store and its binary codecs.

Covers the round-trip guarantees the zero-copy data plane rests on:
randomized encode/decode property tests (including the empty-block,
singleton-transaction, and max-item-id edges), the shared-memory buffer
codecs, and the equivalence suite asserting that counting packed slices
matches :class:`~repro.core.hashtree.HashTree` counts
itemset-for-itemset on seeded Quest data for every kernel.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apriori import Apriori
from repro.core.candidates import generate_candidates
from repro.core.hashtree import HashTree
from repro.core.kernels import KERNELS, count_packed_into, make_counter
from repro.core.packed import (
    INT32_MAX,
    PackedDB,
    candidates_from_bytes,
    candidates_nbytes,
    pack_candidates,
    packed_from_buffer,
    packed_nbytes,
    unpack_candidates,
    write_candidates_into,
    write_packed_into,
)
# Transactions here are raw item sequences (possibly empty, possibly
# huge ids) — the packed layer is more permissive than TransactionDB's
# canonical form, and must round-trip anything in int32 range.
transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=INT32_MAX), max_size=12
    ).map(tuple),
    max_size=30,
)


class TestPackRoundTrip:
    @given(transactions=transactions_strategy)
    @settings(max_examples=200, deadline=None)
    def test_unpack_inverts_pack(self, transactions):
        packed = PackedDB.pack(transactions)
        assert len(packed) == len(transactions)
        assert packed.total_items == sum(len(t) for t in transactions)
        assert packed.unpack() == list(transactions)

    @given(transactions=transactions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_transaction_accessor_matches_unpack(self, transactions):
        packed = PackedDB.pack(transactions)
        for i, transaction in enumerate(transactions):
            assert packed.transaction(i) == transaction

    @given(transactions=transactions_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_slices_cover_any_range_exactly_once(self, transactions, data):
        packed = PackedDB.pack(transactions)
        lo = data.draw(st.integers(0, len(transactions)))
        hi = data.draw(st.integers(lo, len(transactions)))
        decoded = [tuple(s) for s in packed.slices(lo, hi)]
        assert decoded == list(transactions)[lo:hi]

    def test_empty_db(self):
        packed = PackedDB.pack([])
        assert len(packed) == 0
        assert packed.total_items == 0
        assert packed.unpack() == []

    def test_empty_transactions_survive(self):
        # Empty blocks keep their place: offsets distinguish () () (5,)
        # from (5,) () ().
        transactions = [(), (), (5,), ()]
        assert PackedDB.pack(transactions).unpack() == transactions

    def test_singleton_transactions(self):
        transactions = [(7,), (0,), (INT32_MAX,)]
        packed = PackedDB.pack(transactions)
        assert packed.unpack() == transactions
        assert packed.transaction(2) == (INT32_MAX,)

    def test_max_item_id_round_trips(self):
        packed = PackedDB.pack([(INT32_MAX - 1, INT32_MAX)])
        assert packed.unpack() == [(INT32_MAX - 1, INT32_MAX)]

    def test_item_above_int32_rejected(self):
        with pytest.raises(ValueError, match="int32"):
            PackedDB.pack([(INT32_MAX + 1,)])

    def test_negative_item_rejected(self):
        with pytest.raises(ValueError, match="int32"):
            PackedDB.pack([(-1,)])

    def test_transaction_index_bounds(self):
        packed = PackedDB.pack([(1, 2)])
        with pytest.raises(IndexError):
            packed.transaction(1)
        with pytest.raises(IndexError):
            packed.transaction(-1)

    def test_inconsistent_buffers_rejected(self):
        with pytest.raises(ValueError):
            PackedDB([0, 3], [1, 2])  # offsets[-1] != len(items)
        with pytest.raises(ValueError):
            PackedDB([1, 2], [7])  # offsets[0] != 0
        with pytest.raises(ValueError):
            PackedDB([], [])

    def test_equality(self):
        a = PackedDB.pack([(1, 2), (3,)])
        b = PackedDB.pack([(1, 2), (3,)])
        c = PackedDB.pack([(1, 2)])
        assert a == b
        assert a != c

    def test_db_round_trip(self, small_quest_db):
        assert small_quest_db.to_packed().to_db() == small_quest_db

    def test_partition_bounds_tile_the_db(self, small_quest_db):
        packed = small_quest_db.to_packed()
        for parts in (1, 3, 7, len(small_quest_db) + 5):
            bounds = small_quest_db.partition_bounds(parts)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == len(packed)
            decoded = [
                t for lo, hi in bounds for t in (
                    tuple(s) for s in packed.slices(lo, hi)
                )
            ]
            assert decoded == list(small_quest_db.transactions)


class TestBufferCodecs:
    @given(transactions=transactions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_store_codec_round_trips(self, transactions):
        packed = PackedDB.pack(transactions)
        buf = bytearray(packed_nbytes(packed))
        write_packed_into(packed, buf)
        decoded = packed_from_buffer(buf)
        assert decoded == packed
        assert decoded.unpack() == list(transactions)

    def test_packed_from_buffer_is_zero_copy(self):
        packed = PackedDB.pack([(1, 2, 3), (4,)])
        buf = bytearray(packed_nbytes(packed))
        write_packed_into(packed, buf)
        view = packed_from_buffer(buf)
        assert isinstance(view.items, memoryview)
        # A write through the buffer is visible in the wrapped store:
        # the views alias the buffer rather than copying it.
        offset = 16 + 4 * 3  # header + offsets[3] -> items[0]
        buf[offset:offset + 4] = (9).to_bytes(4, "little")
        assert view.transaction(0) == (9, 2, 3)

    @given(
        candidates=st.lists(
            st.tuples(
                st.integers(0, INT32_MAX),
                st.integers(0, INT32_MAX),
                st.integers(0, INT32_MAX),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_candidate_codec_round_trips(self, candidates):
        k = 3
        buf = bytearray(candidates_nbytes(len(candidates), k))
        write_candidates_into(candidates, k, buf)
        decoded_k, decoded = candidates_from_bytes(bytes(buf))
        assert decoded_k == k
        assert decoded == list(candidates)

    def test_flat_candidate_round_trip(self):
        candidates = [(1, 2), (3, 4), (5, INT32_MAX)]
        flat = pack_candidates(candidates, 2)
        assert unpack_candidates(flat, 2) == candidates

    def test_pack_candidates_size_mismatch(self):
        with pytest.raises(ValueError, match="size"):
            pack_candidates([(1, 2, 3)], 2)

    def test_unpack_candidates_validates(self):
        with pytest.raises(ValueError):
            unpack_candidates([1, 2, 3], 2)  # not a multiple of k
        with pytest.raises(ValueError):
            unpack_candidates([1, 2], 0)


class TestPackedCountingEquivalence:
    """Packed-slice counting == HashTree counting, itemset for itemset."""

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_kernels_match_hashtree_on_quest_data(
        self, small_quest_db, kernel
    ):
        packed = small_quest_db.to_packed()
        frequent_prev = sorted(
            Apriori(0.05, max_k=1).mine(small_quest_db).frequent
        )
        for k in (2, 3):
            candidates = generate_candidates(frequent_prev)
            if not candidates:
                break
            oracle = HashTree(k, branching=8, leaf_capacity=4)
            oracle.insert_all(candidates)
            oracle.count_database(small_quest_db)
            counter = make_counter(k, candidates, kernel=kernel)
            count_packed_into(counter, packed)
            assert counter.counts() == oracle.counts()
            frequent_prev = sorted(oracle.frequent(3))

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_range_counts_sum_to_whole(self, small_quest_db, kernel):
        # Counting disjoint (lo, hi) ranges and summing equals counting
        # the whole store — the CD reduction in miniature.
        packed = small_quest_db.to_packed()
        frequent_1 = sorted(Apriori(0.05, max_k=1).mine(small_quest_db).frequent)
        candidates = generate_candidates(frequent_1)[:50]
        whole = make_counter(2, candidates, kernel=kernel)
        count_packed_into(whole, packed)
        totals = {c: 0 for c in candidates}
        for lo, hi in small_quest_db.partition_bounds(4):
            part = make_counter(2, candidates, kernel=kernel)
            count_packed_into(part, packed, lo, hi)
            for c, n in part.counts().items():
                totals[c] += n
        assert totals == whole.counts()

    def test_shared_memory_backed_store_counts_identically(
        self, small_quest_db
    ):
        # The full data-plane path in miniature: write the store into a
        # real shared-memory segment, attach a zero-copy view, count.
        from multiprocessing import shared_memory

        packed = small_quest_db.to_packed()
        frequent_1 = sorted(Apriori(0.05, max_k=1).mine(small_quest_db).frequent)
        candidates = generate_candidates(frequent_1)[:40]
        oracle = HashTree(2, branching=8, leaf_capacity=4)
        oracle.insert_all(candidates)
        oracle.count_database(small_quest_db)
        segment = shared_memory.SharedMemory(
            create=True, size=packed_nbytes(packed)
        )
        try:
            write_packed_into(packed, segment.buf)
            view = packed_from_buffer(segment.buf)
            counter = make_counter(2, candidates, kernel="fast")
            count_packed_into(counter, view)
            assert counter.counts() == oracle.counts()
            del view, counter  # release exported views before close()
        finally:
            segment.close()
            segment.unlink()
