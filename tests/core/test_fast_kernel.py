"""Randomized equivalence tests for the fast counting kernel.

The contract under test: the flat-array hash tree, the triangular
pass-2 counter and the ``kernel="fast"`` drivers produce counts
*identical* to the reference ``HashTree``/``Apriori`` on every input —
including degenerate cases (single-leaf root, transactions shorter than
k, IDD ``root_filter`` pruning) — and the instrumented flat tree keeps
bit-identical work counters.
"""

import pytest

from repro.core.apriori import Apriori
from repro.core.candidates import generate_candidates
from repro.core.hashtree import HashTree
from repro.core.hashtree_flat import FlatHashTree
from repro.core.kernels import KERNELS, make_counter, validate_kernel
from repro.core.pass2 import PairCounter
from repro.core.streaming import StreamingApriori
from repro.data.corpus import t5_i2, t15_i6
from repro.data.quest import generate


def random_db(seed, num_transactions=150, num_items=120, dense=False):
    """Seeded random Quest database."""
    spec = t15_i6 if dense else t5_i2
    return generate(spec(num_transactions, seed=seed, num_items=num_items))


def candidates_for_pass(db, k, min_support=0.02):
    """The reference C_k of a mining run on ``db`` (may be empty)."""
    if k == 2:
        result = Apriori(min_support, max_k=1, kernel="reference").mine(db)
        return generate_candidates(sorted(result.frequent))
    result = Apriori(min_support, max_k=k - 1, kernel="reference").mine(db)
    return generate_candidates(sorted(result.itemsets_of_size(k - 1)))


def reference_counts(k, candidates, db, root_filter=None):
    tree = HashTree(k)
    tree.insert_all(candidates)
    tree.count_database(db, root_filter=root_filter)
    return tree


class TestFlatHashTreeEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 91])
    @pytest.mark.parametrize("k", [2, 3])
    def test_counts_identical_on_random_dbs(self, seed, k):
        db = random_db(seed, dense=(k == 3))
        candidates = candidates_for_pass(db, k)
        if not candidates:
            pytest.skip("no candidates at this support level")
        reference = reference_counts(k, candidates, db)
        flat = FlatHashTree(k)
        flat.insert_all(candidates)
        flat.count_database(db)
        assert flat.counts() == reference.counts()

    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_instrumented_stats_bit_identical(self, seed):
        db = random_db(seed, dense=True)
        candidates = candidates_for_pass(db, 3)
        reference = reference_counts(3, candidates, db)
        flat = FlatHashTree(3, instrumented=True)
        flat.insert_all(candidates)
        flat.count_database(db)
        assert flat.counts() == reference.counts()
        assert flat.stats == reference.stats

    @pytest.mark.parametrize("seed", [5, 23])
    def test_root_filter_matches_reference(self, seed):
        """IDD's first-item pruning (Figure 8) on both kernels."""
        db = random_db(seed)
        candidates = candidates_for_pass(db, 2)
        first_items = sorted({c[0] for c in candidates})
        root_filter = set(first_items[:: 2])  # own every other first item
        reference = reference_counts(2, candidates, db, root_filter)
        for instrumented in (False, True):
            flat = FlatHashTree(2, instrumented=instrumented)
            flat.insert_all(candidates)
            flat.count_database(db, root_filter=root_filter)
            assert flat.counts() == reference.counts()
        instrumented_flat = FlatHashTree(2, instrumented=True)
        instrumented_flat.insert_all(candidates)
        instrumented_flat.count_database(db, root_filter=root_filter)
        assert instrumented_flat.stats == reference.stats

    def test_single_leaf_root(self):
        """Few candidates: the tree degenerates to one root leaf."""
        candidates = [(1, 2), (2, 5), (3, 4)]
        db = [(1, 2, 3), (2, 3, 4, 5), (1,), (2, 5)]
        reference = HashTree(2, leaf_capacity=16)
        reference.insert_all(candidates)
        reference.count_database(db)
        for instrumented in (False, True):
            flat = FlatHashTree(2, leaf_capacity=16, instrumented=instrumented)
            flat.insert_all(candidates)
            flat.count_database(db)
            assert flat.counts() == reference.counts()
        assert flat.shape().num_internal == 0
        assert flat.shape() == reference.shape()

    def test_single_leaf_root_with_root_filter(self):
        candidates = [(1, 2), (2, 5), (3, 4)]
        db = [(1, 2, 3), (2, 3, 4, 5), (2, 5)]
        root_filter = {2, 3}
        reference = HashTree(2, leaf_capacity=16)
        reference.insert_all(candidates)
        reference.count_database(db, root_filter=root_filter)
        flat = FlatHashTree(2, leaf_capacity=16, instrumented=True)
        flat.insert_all(candidates)
        flat.count_database(db, root_filter=root_filter)
        assert flat.counts() == reference.counts()
        assert flat.stats == reference.stats

    def test_transactions_shorter_than_k(self):
        candidates = [(1, 2, 3)]
        db = [(1,), (1, 2), (), (1, 2, 3)]
        reference = reference_counts(3, candidates, db)
        flat = FlatHashTree(3, instrumented=True)
        flat.insert_all(candidates)
        flat.count_database(db)
        assert flat.counts() == reference.counts() == {(1, 2, 3): 1}
        # Short transactions still count as processed (reference semantics).
        assert flat.stats.transactions_processed == 4
        assert flat.stats == reference.stats

    def test_empty_tree(self):
        flat = FlatHashTree(2)
        flat.count_database([(1, 2, 3)])
        assert flat.counts() == {}
        assert len(flat) == 0

    def test_shape_matches_reference(self):
        db = random_db(41, dense=True)
        candidates = candidates_for_pass(db, 2)
        reference = HashTree(2)
        reference.insert_all(candidates)
        flat = FlatHashTree(2)
        flat.insert_all(candidates)
        assert flat.shape() == reference.shape()

    def test_duplicate_insert_idempotent(self):
        flat = FlatHashTree(2)
        flat.insert((1, 2))
        flat.insert((1, 2))
        assert len(flat) == 1
        assert (1, 2) in flat

    def test_wrong_size_insert_rejected(self):
        with pytest.raises(ValueError):
            FlatHashTree(2).insert((1, 2, 3))

    def test_insert_after_counting_preserves_counts(self):
        flat = FlatHashTree(2)
        flat.insert((1, 2))
        flat.count_database([(1, 2), (1, 2, 3)])
        flat.insert((2, 3))
        flat.count_database([(2, 3)])
        assert flat.counts() == {(1, 2): 2, (2, 3): 1}

    def test_add_counts_and_reset(self):
        flat = FlatHashTree(2)
        flat.insert_all([(1, 2), (2, 3)])
        flat.add_counts({(1, 2): 5})
        assert flat.get_count((1, 2)) == 5
        flat.reset_counts()
        assert flat.get_count((1, 2)) == 0

    def test_add_counts_unknown_candidate_names_it(self):
        flat = FlatHashTree(2)
        flat.insert((1, 2))
        with pytest.raises(KeyError, match=r"\(9, 9\)"):
            flat.add_counts({(9, 9): 1})


class TestPairCounterEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_counts_identical_on_random_dbs(self, seed):
        db = random_db(seed)
        candidates = candidates_for_pass(db, 2)
        if not candidates:
            pytest.skip("no candidates at this support level")
        reference = reference_counts(2, candidates, db)
        counter = PairCounter(candidates)
        counter.count_database(db)
        assert counter.counts() == reference.counts()

    def test_short_and_foreign_transactions(self):
        counter = PairCounter([(1, 2), (2, 3)])
        counter.count_database([(1,), (), (7, 8), (1, 2, 9)])
        assert counter.counts() == {(1, 2): 1, (2, 3): 0}

    def test_rejects_non_pairs(self):
        with pytest.raises(ValueError):
            PairCounter([(1, 2, 3)])

    def test_rejects_root_filter(self):
        counter = PairCounter([(1, 2)])
        with pytest.raises(ValueError):
            counter.count_transaction((1, 2), root_filter={1})

    def test_add_counts_unknown_candidate_names_it(self):
        counter = PairCounter([(1, 2)])
        with pytest.raises(KeyError, match=r"\(3, 4\)"):
            counter.add_counts({(3, 4): 1})

    def test_add_counts_and_reset(self):
        counter = PairCounter([(1, 2)])
        counter.count_database([(1, 2)])
        counter.add_counts({(1, 2): 4})
        assert counter.get_count((1, 2)) == 5
        counter.reset_counts()
        assert counter.get_count((1, 2)) == 0


class TestKernelFacade:
    def test_validate_kernel(self):
        for kernel in KERNELS:
            assert validate_kernel(kernel) == kernel
        with pytest.raises(ValueError):
            validate_kernel("turbo")

    def test_reference_kernel_is_hashtree(self):
        counter = make_counter(2, [(1, 2)], kernel="reference")
        assert isinstance(counter, HashTree)

    def test_fast_kernel_pass2_is_pair_counter(self):
        candidates = generate_candidates([(i,) for i in range(10)])
        counter = make_counter(2, candidates, kernel="fast")
        assert isinstance(counter, PairCounter)

    def test_fast_kernel_higher_pass_is_flat_tree(self):
        counter = make_counter(3, [(1, 2, 3)], kernel="fast")
        assert isinstance(counter, FlatHashTree)

    def test_root_filter_need_forces_tree(self):
        candidates = generate_candidates([(i,) for i in range(10)])
        counter = make_counter(
            2, candidates, kernel="fast", needs_root_filter=True
        )
        assert isinstance(counter, FlatHashTree)

    def test_sparse_pairs_fall_back_to_tree(self):
        # Pairs spanning a wide item universe but covering few slots.
        sparse = [(i, i + 1) for i in range(0, 400, 40)]
        counter = make_counter(2, sparse, kernel="fast")
        assert isinstance(counter, FlatHashTree)


class TestFastApriori:
    @pytest.mark.parametrize("seed", [7, 29, 63])
    def test_full_mine_identical(self, seed):
        db = random_db(seed, dense=True)
        reference = Apriori(0.02, kernel="reference").mine(db)
        fast = Apriori(0.02, kernel="fast").mine(db)
        assert fast.frequent == reference.frequent
        assert fast.min_count == reference.min_count
        assert [p.k for p in fast.passes] == [p.k for p in reference.passes]
        assert [p.num_candidates for p in fast.passes] == [
            p.num_candidates for p in reference.passes
        ]

    def test_fast_is_default(self):
        assert Apriori(0.1).kernel == "fast"

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            Apriori(0.1, kernel="warp")

    def test_fast_passes_have_shape_but_no_stats(self, tiny_db):
        result = Apriori(0.3, kernel="fast").mine(tiny_db)
        for trace in result.passes[1:]:
            assert trace.tree_shape is not None
            assert trace.tree_stats is None

    def test_reference_passes_keep_stats(self, tiny_db):
        result = Apriori(0.3, kernel="reference").mine(tiny_db)
        for trace in result.passes[1:]:
            assert trace.tree_stats is not None
            assert trace.tree_stats.transactions_processed == len(tiny_db)


class TestFastStreaming:
    def test_streaming_kernels_identical(self):
        db = random_db(13)
        rows = list(db.transactions)
        reference = StreamingApriori(0.05, kernel="reference").mine(
            lambda: iter(rows)
        )
        fast = StreamingApriori(0.05, kernel="fast").mine(lambda: iter(rows))
        assert fast.frequent == reference.frequent
        assert StreamingApriori(0.05).kernel == "reference"
