"""Tests for serial Apriori against oracles and pinned paper values."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apriori import Apriori, min_support_count
from repro.core.transaction import TransactionDB
from tests.conftest import brute_force_frequent


class TestMinSupportCount:
    def test_exact_fraction(self):
        assert min_support_count(0.4, 5) == 2

    def test_rounds_up(self):
        assert min_support_count(0.5, 5) == 3

    def test_floor_at_one(self):
        assert min_support_count(0.001, 10) == 1

    def test_full_support(self):
        assert min_support_count(1.0, 7) == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            min_support_count(0.0, 10)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            min_support_count(1.5, 10)


class TestSupermarketExample:
    """Pin the paper's Table I example at 40% support."""

    def test_frequent_itemsets(self, supermarket_db):
        result = Apriori(min_support=0.4).mine(supermarket_db)
        # sigma(Diaper, Milk) = 3 and sigma(Diaper, Milk, Beer) = 2, both
        # frequent at min count 2.
        assert result.frequent[(3, 4)] == 3
        assert result.frequent[(0, 3, 4)] == 2
        assert result.min_count == 2

    def test_supports(self, supermarket_db):
        result = Apriori(min_support=0.4).mine(supermarket_db)
        # Support of {Diaper, Milk, Beer} is 40% (Section II).
        assert result.support((0, 3, 4)) == pytest.approx(0.4)

    def test_matches_brute_force(self, supermarket_db):
        result = Apriori(min_support=0.4).mine(supermarket_db)
        assert result.frequent == brute_force_frequent(supermarket_db, 2)

    def test_max_size(self, supermarket_db):
        result = Apriori(min_support=0.4).mine(supermarket_db)
        assert result.max_size == 3


class TestAprioriMechanics:
    def test_empty_db(self):
        result = Apriori(0.5).mine(TransactionDB([]))
        assert result.frequent == {}
        assert result.num_transactions == 0

    def test_max_k_caps_passes(self, tiny_db):
        capped = Apriori(0.3, max_k=2).mine(tiny_db)
        assert all(len(s) <= 2 for s in capped.frequent)
        full = Apriori(0.3).mine(tiny_db)
        assert {s: c for s, c in full.frequent.items() if len(s) <= 2} == (
            capped.frequent
        )

    def test_max_k_one(self, tiny_db):
        result = Apriori(0.3, max_k=1).mine(tiny_db)
        assert all(len(s) == 1 for s in result.frequent)

    def test_invalid_max_k(self):
        with pytest.raises(ValueError):
            Apriori(0.3, max_k=0)

    def test_pass_traces_are_recorded(self, tiny_db):
        result = Apriori(0.3).mine(tiny_db)
        assert result.passes[0].k == 1
        assert result.passes[0].tree_shape is None
        for trace in result.passes[1:]:
            assert trace.tree_shape is not None
            assert trace.num_frequent <= trace.num_candidates

    def test_pass_k_values_consecutive(self, tiny_db):
        result = Apriori(0.2).mine(tiny_db)
        ks = [t.k for t in result.passes]
        assert ks == list(range(1, len(ks) + 1))

    def test_itemsets_of_size(self, tiny_db):
        result = Apriori(0.3).mine(tiny_db)
        for k in (1, 2):
            for itemset in result.itemsets_of_size(k):
                assert len(itemset) == k

    def test_support_of_unknown_raises(self, tiny_db):
        result = Apriori(0.9).mine(tiny_db)
        with pytest.raises(KeyError):
            result.support((1, 2, 3, 4))

    def test_high_support_keeps_nothing(self, tiny_db):
        result = Apriori(1.0).mine(tiny_db)
        assert result.frequent == {}

    def test_quest_db_matches_brute_force(self, small_quest_db):
        min_support = 0.05
        result = Apriori(min_support).mine(small_quest_db)
        expected = brute_force_frequent(small_quest_db, result.min_count)
        assert result.frequent == expected


# Anti-monotonicity and oracle equivalence on random databases.
transactions_strategy = st.lists(
    st.sets(st.integers(0, 15), min_size=1, max_size=8).map(
        lambda s: tuple(sorted(s))
    ),
    min_size=1,
    max_size=25,
)


class TestAprioriProperties:
    @settings(max_examples=40, deadline=None)
    @given(transactions_strategy, st.floats(min_value=0.05, max_value=0.9))
    def test_equals_brute_force(self, rows, min_support):
        db = TransactionDB.from_canonical(rows)
        result = Apriori(min_support).mine(db)
        assert result.frequent == brute_force_frequent(db, result.min_count)

    @settings(max_examples=40, deadline=None)
    @given(transactions_strategy, st.floats(min_value=0.05, max_value=0.9))
    def test_support_antimonotone(self, rows, min_support):
        db = TransactionDB.from_canonical(rows)
        result = Apriori(min_support).mine(db)
        for itemset, count in result.frequent.items():
            if len(itemset) < 2:
                continue
            for drop in range(len(itemset)):
                subset = itemset[:drop] + itemset[drop + 1:]
                assert subset in result.frequent
                assert result.frequent[subset] >= count

    @settings(max_examples=30, deadline=None)
    @given(transactions_strategy)
    def test_lower_support_is_superset(self, rows):
        db = TransactionDB.from_canonical(rows)
        loose = Apriori(0.1).mine(db).frequent
        strict = Apriori(0.5).mine(db).frequent
        assert set(strict) <= set(loose)
