"""Tests for the disk-backed packed store (the out-of-core data plane).

The mmap store must be indistinguishable from an in-RAM
:class:`~repro.core.packed.PackedDB` to everything above it: randomized
round-trip properties (write → attach → unpack), byte-identity between
the bulk and streaming writers, counting-kernel equivalence on seeded
Quest data (including the empty, singleton, and duplicate-transaction
edges), the ``block_bounds`` streaming-split invariants, and the
attach/close failure modes (missing file, truncated header, corrupt
dimensions, unlink-while-mapped).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apriori import Apriori
from repro.core.candidates import generate_candidates
from repro.core.kernels import KERNELS, count_packed_into, make_counter
from repro.core.mmapdb import (
    MmapPackedDB,
    PackedFileWriter,
    attach_packed_file,
    packed_file_nbytes,
    write_packed_file,
)
from repro.core.packed import INT32_MAX, PackedDB
from repro.core.transaction import TransactionDB

# Same permissive shape as the packed round-trip suite: raw item
# sequences, possibly empty, ids anywhere in int32 range.
transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=INT32_MAX), max_size=12
    ).map(tuple),
    max_size=30,
)


class TestFileRoundTrip:
    @given(transactions=transactions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_write_attach_inverts(self, tmp_path_factory, transactions):
        path = tmp_path_factory.mktemp("store") / "db.packed"
        packed = PackedDB.pack(transactions)
        write_packed_file(packed, path)
        assert path.stat().st_size == packed_file_nbytes(
            len(packed), packed.total_items
        )
        with MmapPackedDB.attach(path) as db:
            assert len(db) == len(transactions)
            assert db.total_items == packed.total_items
            assert db.unpack() == list(transactions)

    @given(transactions=transactions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_streaming_writer_matches_bulk_bytes(
        self, tmp_path_factory, transactions
    ):
        root = tmp_path_factory.mktemp("store")
        bulk, streamed = root / "bulk.packed", root / "streamed.packed"
        write_packed_file(PackedDB.pack(transactions), bulk)
        # A tiny flush threshold forces many sidecar spills.
        with PackedFileWriter(streamed, flush_items=3) as writer:
            writer.extend(transactions)
        assert streamed.read_bytes() == bulk.read_bytes()
        assert not streamed.with_name("streamed.packed.items.tmp").exists()

    def test_iterable_source_streams(self, tmp_path):
        db = TransactionDB([(1, 2, 3), (2, 3), (1,)])
        path = write_packed_file(db, tmp_path / "db.packed")
        with attach_packed_file(path) as mapped:
            assert mapped.unpack() == [(1, 2, 3), (2, 3), (1,)]

    def test_empty_db(self, tmp_path):
        path = write_packed_file(PackedDB.pack([]), tmp_path / "empty.packed")
        with MmapPackedDB.attach(path) as db:
            assert len(db) == 0
            assert db.total_items == 0
            assert db.unpack() == []

    def test_writer_abort_removes_both_files(self, tmp_path):
        path = tmp_path / "aborted.packed"
        writer = PackedFileWriter(path)
        writer.append((1, 2))
        writer.abort()
        assert list(tmp_path.iterdir()) == []
        with pytest.raises(ValueError, match="already aborted"):
            writer.append((3,))

    def test_writer_aborts_on_exception(self, tmp_path):
        path = tmp_path / "broken.packed"
        with pytest.raises(RuntimeError):
            with PackedFileWriter(path) as writer:
                writer.append((1, 2))
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []


class TestWriterHardening:
    """The streaming writer's state machine and validation edges."""

    def test_double_finalize_is_descriptive(self, tmp_path):
        writer = PackedFileWriter(tmp_path / "db.packed")
        writer.append((1, 2, 3))
        writer.finalize()
        with pytest.raises(ValueError, match="already finalized"):
            writer.finalize()
        with pytest.raises(ValueError, match="already finalized"):
            writer.append((4,))

    def test_abort_is_idempotent(self, tmp_path):
        writer = PackedFileWriter(tmp_path / "db.packed")
        writer.append((1,))
        writer.abort()
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_abort_after_finalize_preserves_the_store(self, tmp_path):
        """Belt-and-braces cleanup must never destroy finished data."""
        path = tmp_path / "db.packed"
        writer = PackedFileWriter(path)
        writer.append((1, 2))
        writer.finalize()
        writer.abort()
        assert path.exists()
        with MmapPackedDB.attach(path) as db:
            assert db.unpack() == [(1, 2)]

    @pytest.mark.parametrize("bad_item", [-1, INT32_MAX + 1])
    def test_append_rejects_out_of_range_items_like_pack(
        self, tmp_path, bad_item
    ):
        """Streamed and in-memory packing fail with the same message."""
        with pytest.raises(ValueError) as packed_exc:
            PackedDB.pack([(0, bad_item)])
        writer = PackedFileWriter(tmp_path / "db.packed")
        try:
            with pytest.raises(ValueError) as writer_exc:
                writer.append((0, bad_item))
        finally:
            writer.abort()
        assert str(writer_exc.value) == str(packed_exc.value)

    def test_rejected_append_leaves_no_partial_file(self, tmp_path):
        writer = PackedFileWriter(tmp_path / "db.packed")
        writer.append((7,))
        with pytest.raises(ValueError):
            writer.append((-3,))
        writer.abort()
        assert list(tmp_path.iterdir()) == []


class TestCountingEquivalence:
    """Counting through the mapping == counting the in-RAM store."""

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_kernels_match_in_ram_on_quest_data(
        self, small_quest_db, tmp_path, kernel
    ):
        packed = small_quest_db.to_packed()
        path = write_packed_file(packed, tmp_path / "quest.packed")
        frequent_prev = sorted(
            Apriori(0.05, max_k=1).mine(small_quest_db).frequent
        )
        with MmapPackedDB.attach(path) as mapped:
            for k in (2, 3):
                candidates = generate_candidates(frequent_prev)
                if not candidates:
                    break
                ram = make_counter(k, candidates, kernel=kernel)
                count_packed_into(ram, packed)
                disk = make_counter(k, candidates, kernel=kernel)
                count_packed_into(disk, mapped)
                assert disk.counts() == ram.counts()
                frequent_prev = sorted(
                    c for c, n in ram.counts().items() if n >= 3
                )

    @pytest.mark.parametrize(
        "transactions",
        [
            [],
            [()],
            [(7,)],
            [(1, 2), (1, 2), (1, 2)],
            [(), (1, 2, 3), (), (2, 3)],
        ],
        ids=["empty", "one-empty-txn", "singleton", "duplicates", "gaps"],
    )
    def test_edge_shapes_count_identically(self, tmp_path, transactions):
        packed = PackedDB.pack(transactions)
        path = write_packed_file(packed, tmp_path / "edge.packed")
        candidates = [(1, 2), (2, 3), (7, 9)]
        with MmapPackedDB.attach(path) as mapped:
            ram = make_counter(2, candidates, kernel="fast")
            count_packed_into(ram, packed)
            disk = make_counter(2, candidates, kernel="fast")
            count_packed_into(disk, mapped)
            assert disk.counts() == ram.counts()

    def test_blockwise_counts_sum_to_whole(self, small_quest_db, tmp_path):
        # Streaming the store through a tiny block budget and summing
        # equals one whole-store pass — the out-of-core loop in miniature.
        packed = small_quest_db.to_packed()
        path = write_packed_file(packed, tmp_path / "quest.packed")
        frequent_1 = sorted(
            Apriori(0.05, max_k=1).mine(small_quest_db).frequent
        )
        candidates = generate_candidates(frequent_1)[:50]
        whole = make_counter(2, candidates, kernel="fast")
        count_packed_into(whole, packed)
        with MmapPackedDB.attach(path) as mapped:
            totals = {c: 0 for c in candidates}
            for lo, hi in mapped.block_bounds(64):
                part = make_counter(2, candidates, kernel="fast")
                count_packed_into(part, mapped, lo, hi)
                for c, n in part.counts().items():
                    totals[c] += n
        assert totals == whole.counts()


class TestBlockBounds:
    @given(transactions=transactions_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_blocks_partition_the_range(self, transactions, data):
        packed = PackedDB.pack(transactions)
        lo = data.draw(st.integers(0, len(transactions)))
        hi = data.draw(st.integers(lo, len(transactions)))
        budget = data.draw(st.integers(1, 20))
        blocks = packed.block_bounds(budget, lo, hi)
        # Concatenation reconstructs [lo, hi) exactly, in order.
        cursor = lo
        for block_lo, block_hi in blocks:
            assert block_lo == cursor
            assert block_hi > block_lo
            cursor = block_hi
        assert cursor == hi or (lo == hi and blocks == [])
        # Each block respects the budget unless a single transaction
        # alone exceeds it (then it must be that lone transaction).
        for block_lo, block_hi in blocks:
            size = packed.offsets[block_hi] - packed.offsets[block_lo]
            assert size <= budget or block_hi == block_lo + 1

    def test_budget_validation(self):
        packed = PackedDB.pack([(1, 2)])
        with pytest.raises(ValueError, match="max_items must be >= 1"):
            packed.block_bounds(0)
        with pytest.raises(ValueError, match="out of bounds"):
            packed.block_bounds(4, 0, 2)


class TestAttachFailureModes:
    def test_attach_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="does not exist"):
            MmapPackedDB.attach(tmp_path / "never-written.packed")

    def test_attach_sub_header_file(self, tmp_path):
        path = tmp_path / "stub.packed"
        path.write_bytes(b"\x00" * 8)
        with pytest.raises(ValueError, match="not a packed store file"):
            MmapPackedDB.attach(path)

    def test_attach_truncated_store(self, tmp_path):
        path = write_packed_file(
            PackedDB.pack([(1, 2, 3), (4, 5)]), tmp_path / "cut.packed"
        )
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            MmapPackedDB.attach(path)

    def test_unlink_while_mapped(self, tmp_path):
        # POSIX semantics: attached readers outlive the unlink; fresh
        # attaches fail with the coordinator-unlinked message.
        path = write_packed_file(
            PackedDB.pack([(1, 2), (2, 3)]), tmp_path / "gone.packed"
        )
        db = MmapPackedDB.attach(path)
        os.unlink(path)
        assert db.unpack() == [(1, 2), (2, 3)]
        db.close()
        with pytest.raises(FileNotFoundError, match="already unlinked"):
            MmapPackedDB.attach(path)

    def test_close_is_idempotent_and_empties(self, tmp_path):
        path = write_packed_file(
            PackedDB.pack([(1, 2, 3)]), tmp_path / "db.packed"
        )
        db = MmapPackedDB.attach(path)
        assert not db.closed
        db.close()
        db.close()
        assert db.closed
        assert len(db) == 0
        assert db.unpack() == []
        assert "closed" in repr(db)
