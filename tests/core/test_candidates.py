"""Unit and property tests for apriori_gen candidate generation."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    count_candidates_per_first_item,
    first_item_histogram,
    generate_candidates,
    generate_candidates_2,
)


class TestGenerateCandidates:
    def test_empty_input(self):
        assert generate_candidates([]) == []

    def test_pairs_from_singletons(self):
        assert generate_candidates([(1,), (3,), (2,)]) == [
            (1, 2),
            (1, 3),
            (2, 3),
        ]

    def test_classic_join_and_prune(self):
        # {1,2},{1,3},{2,3} join to {1,2,3}; {2,4} cannot extend because
        # {3,4} and {1,4} are infrequent.
        frequent = [(1, 2), (1, 3), (2, 3), (2, 4)]
        assert generate_candidates(frequent) == [(1, 2, 3)]

    def test_prune_removes_unsupported_subset(self):
        # Join of (1,2,3) and (1,2,4) gives (1,2,3,4); pruned because
        # (1,3,4) missing.
        frequent = [(1, 2, 3), (1, 2, 4), (2, 3, 4)]
        assert generate_candidates(frequent) == []

    def test_full_closure_survives_prune(self):
        frequent = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)]
        assert generate_candidates(frequent) == [(1, 2, 3, 4)]

    def test_mixed_sizes_raise(self):
        with pytest.raises(ValueError, match="mixed sizes"):
            generate_candidates([(1,), (1, 2)])

    def test_output_is_sorted_and_unique(self):
        frequent = [(i,) for i in range(6)]
        result = generate_candidates(frequent)
        assert result == sorted(set(result))

    @settings(max_examples=60, deadline=None)
    @given(
        st.sets(
            st.tuples(
                st.integers(0, 12), st.integers(0, 12)
            ).filter(lambda t: t[0] < t[1]),
            max_size=25,
        )
    )
    def test_candidates_contain_all_joinable_supersets(self, frequent_pairs):
        """Every 3-set whose all 2-subsets are frequent must be generated."""
        frequent = set(frequent_pairs)
        generated = set(generate_candidates(frequent)) if frequent else set()
        universe = sorted({i for pair in frequent for i in pair})
        for triple in combinations(universe, 3):
            all_subsets_frequent = all(
                pair in frequent for pair in combinations(triple, 2)
            )
            assert (triple in generated) == all_subsets_frequent

    @settings(max_examples=40, deadline=None)
    @given(
        st.sets(
            st.tuples(st.integers(0, 10), st.integers(0, 10)).filter(
                lambda t: t[0] < t[1]
            ),
            max_size=20,
        )
    )
    def test_every_candidate_subset_is_frequent(self, frequent_pairs):
        for candidate in generate_candidates(frequent_pairs):
            for pair in combinations(candidate, 2):
                assert pair in frequent_pairs


class TestGenerateCandidates2:
    def test_matches_generic_path(self):
        items = [4, 1, 7]
        via_items = generate_candidates_2(items)
        via_sets = generate_candidates([(i,) for i in items])
        assert via_items == via_sets

    def test_empty(self):
        assert generate_candidates_2([]) == []


class TestFirstItemHistogram:
    def test_counts_by_first_item(self):
        histogram = first_item_histogram([(1, 2), (1, 3), (2, 3)])
        assert histogram == {1: 2, 2: 1}

    def test_count_without_materializing_matches(self):
        frequent = [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]
        assert count_candidates_per_first_item(
            frequent
        ) == first_item_histogram(generate_candidates(frequent))
