"""Stateful model-based test: HashTree vs a naive reference counter.

Hypothesis drives an arbitrary interleaving of inserts and transaction
counts against both the hash tree and a trivially-correct model; the
count tables must agree after every step.  This catches interaction
bugs (counting between inserts, split-during-count artifacts) that
scenario tests miss.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.hashtree import HashTree
from repro.core.items import is_subset

K = 3
items = st.integers(min_value=0, max_value=12)
candidate_strategy = st.sets(items, min_size=K, max_size=K).map(
    lambda s: tuple(sorted(s))
)
transaction_strategy = st.sets(items, min_size=1, max_size=9).map(
    lambda s: tuple(sorted(s))
)


class HashTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = HashTree(K, branching=3, leaf_capacity=2)
        self.model = {}
        self.transactions = []

    @rule(candidate=candidate_strategy)
    def insert_candidate(self, candidate):
        self.tree.insert(candidate)
        if candidate not in self.model:
            # A late-inserted candidate has missed earlier transactions,
            # exactly as the tree's zero-initialized count does.
            self.model[candidate] = 0

    @rule(transaction=transaction_strategy)
    def count_transaction(self, transaction):
        self.tree.count_transaction(transaction)
        self.transactions.append(transaction)
        for candidate in self.model:
            if is_subset(candidate, transaction):
                self.model[candidate] += 1

    @rule()
    def reset_counts(self):
        self.tree.reset_counts()
        self.model = {c: 0 for c in self.model}

    @invariant()
    def counts_agree(self):
        assert self.tree.counts() == self.model

    @invariant()
    def size_agrees(self):
        assert len(self.tree) == len(self.model)


HashTreeMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestHashTreeStateful = HashTreeMachine.TestCase
