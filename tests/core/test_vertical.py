"""Property tests for the vertical TID-bitmap kernel.

Mirrors ``tests/core/test_packed.py``: randomized databases drive the
bitmap builders and the :class:`~repro.core.vertical.VerticalCounter`,
asserting bit-for-bit equivalence with the reference
:class:`~repro.core.hashtree.HashTree` — including the empty-database,
empty-transaction, singleton, and duplicate-transaction edges, the
range-sum (CD reduction) invariant, and the IDD ``root_filter``
contract.  The per-process :class:`TidBitmapCache` is covered last:
cached and uncached counting must be indistinguishable.
"""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apriori import Apriori
from repro.core.candidates import generate_candidates
from repro.core.hashtree import HashTree
from repro.core.kernels import KERNELS, count_packed_into, make_counter
from repro.core.packed import PackedDB
from repro.core.vertical import TidBitmapCache, TidBitmaps, VerticalCounter

# Canonical transactions over a small alphabet so random candidates
# actually hit: sorted unique items, empty transactions allowed,
# duplicate *transactions* allowed (lists may repeat the same set).
transactions_strategy = st.lists(
    st.frozensets(st.integers(0, 12), max_size=8).map(
        lambda s: tuple(sorted(s))
    ),
    max_size=40,
)

candidates_2_strategy = st.sets(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
        lambda c: c[0] < c[1]
    ),
    max_size=30,
).map(sorted)

candidates_3_strategy = st.sets(
    st.tuples(
        st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)
    ).filter(lambda c: c[0] < c[1] < c[2]),
    max_size=30,
).map(sorted)


def _oracle_counts(k, candidates, transactions, root_filter=None):
    tree = HashTree(k, branching=4, leaf_capacity=2)
    tree.insert_all(candidates)
    tree.count_database(transactions, root_filter)
    return tree.counts()


class TestTidBitmaps:
    @given(transactions=transactions_strategy)
    @settings(max_examples=150, deadline=None)
    def test_bit_t_set_iff_item_in_transaction_t(self, transactions):
        bitmaps = TidBitmaps.from_transactions(transactions)
        assert bitmaps.num_transactions == len(transactions)
        items = {i for t in transactions for i in t}
        assert set(bitmaps.bits) == items
        for item in items:
            expected = sum(
                1 << t for t, tx in enumerate(transactions) if item in tx
            )
            assert bitmaps.bits_for(item) == expected

    @given(transactions=transactions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_from_packed_matches_from_transactions(self, transactions):
        packed = PackedDB.pack(transactions)
        from_packed = TidBitmaps.from_packed(packed)
        from_lists = TidBitmaps.from_transactions(transactions)
        assert from_packed.bits == from_lists.bits
        assert from_packed.num_transactions == from_lists.num_transactions

    @given(transactions=transactions_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_packed_range_matches_slice(self, transactions, data):
        packed = PackedDB.pack(transactions)
        lo = data.draw(st.integers(0, len(transactions)))
        hi = data.draw(st.integers(lo, len(transactions)))
        ranged = TidBitmaps.from_packed(packed, lo, hi)
        sliced = TidBitmaps.from_transactions(transactions[lo:hi])
        assert ranged.bits == sliced.bits
        assert ranged.num_transactions == hi - lo

    def test_empty_database(self):
        for bitmaps in (
            TidBitmaps.from_transactions([]),
            TidBitmaps.from_packed(PackedDB.pack([])),
        ):
            assert bitmaps.bits == {}
            assert bitmaps.num_transactions == 0

    def test_absent_item_is_zero(self):
        bitmaps = TidBitmaps.from_transactions([(1, 2)])
        assert bitmaps.bits_for(99) == 0

    def test_late_first_appearance_grows_buffer(self):
        # Item 7 first appears past the initial 64-byte buffer of item
        # 1, exercising the extend path of the streaming builder.
        transactions = [(1,)] * 600 + [(1, 7)]
        bitmaps = TidBitmaps.from_transactions(transactions)
        assert bitmaps.bits_for(7) == 1 << 600
        assert bitmaps.bits_for(1) == (1 << 601) - 1


class TestVerticalEquivalence:
    """VerticalCounter == HashTree, itemset for itemset."""

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
    )
    @settings(max_examples=150, deadline=None)
    def test_pairs_match_hashtree(self, transactions, candidates):
        counter = VerticalCounter(2, candidates)
        counter.count_database(transactions)
        assert counter.counts() == _oracle_counts(2, candidates, transactions)

    @given(
        transactions=transactions_strategy,
        candidates=candidates_3_strategy,
    )
    @settings(max_examples=150, deadline=None)
    def test_triples_match_hashtree(self, transactions, candidates):
        counter = VerticalCounter(3, candidates)
        counter.count_database(transactions)
        assert counter.counts() == _oracle_counts(3, candidates, transactions)

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
    )
    @settings(max_examples=100, deadline=None)
    def test_count_packed_matches_count_database(
        self, transactions, candidates
    ):
        packed = PackedDB.pack(transactions)
        via_packed = VerticalCounter(2, candidates)
        via_packed.count_packed(packed)
        via_lists = VerticalCounter(2, candidates)
        via_lists.count_database(transactions)
        assert via_packed.counts() == via_lists.counts()

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
        parts=st.integers(1, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_range_counts_sum_to_whole(
        self, transactions, candidates, parts
    ):
        # The CD reduction invariant: disjoint ranges sum to the whole.
        packed = PackedDB.pack(transactions)
        whole = VerticalCounter(2, candidates)
        whole.count_packed(packed)
        totals = {c: 0 for c in candidates}
        n = len(transactions)
        step = max(1, -(-n // parts))
        for lo in range(0, n, step):
            part = VerticalCounter(2, candidates)
            part.count_packed(packed, lo, min(lo + step, n))
            for c, count in part.counts().items():
                totals[c] += count
        assert totals == whole.counts()

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
        roots=st.sets(st.integers(0, 12)),
    )
    @settings(max_examples=100, deadline=None)
    def test_root_filter_contract(self, transactions, candidates, roots):
        # IDD ownership: owned candidates get full counts, the rest
        # stay untouched — exactly the hash-tree contract.
        counter = VerticalCounter(2, candidates)
        counter.count_database(transactions, root_filter=roots)
        full = _oracle_counts(2, candidates, transactions)
        for candidate, count in counter.counts().items():
            expected = full[candidate] if candidate[0] in roots else 0
            assert count == expected

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
    )
    @settings(max_examples=75, deadline=None)
    def test_count_transaction_fallback_agrees(
        self, transactions, candidates
    ):
        counter = VerticalCounter(2, candidates)
        for transaction in transactions:
            counter.count_transaction(transaction)
        assert counter.counts() == _oracle_counts(2, candidates, transactions)

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
    )
    @settings(max_examples=75, deadline=None)
    def test_duplicate_database_doubles_counts(
        self, transactions, candidates
    ):
        # Counts accumulate across calls; a duplicated database (every
        # transaction twice) must double every count.
        once = VerticalCounter(2, candidates)
        once.count_database(transactions)
        twice = VerticalCounter(2, candidates)
        twice.count_database(transactions)
        twice.count_database(transactions)
        assert twice.counts() == {
            c: 2 * n for c, n in once.counts().items()
        }

    def test_empty_database_counts_zero(self):
        counter = VerticalCounter(2, [(1, 2), (2, 3)])
        counter.count_database([])
        assert counter.counts() == {(1, 2): 0, (2, 3): 0}

    def test_empty_and_singleton_transactions(self):
        counter = VerticalCounter(2, [(1, 2)])
        counter.count_database([(), (1,), (2,), (1, 2)])
        assert counter.get_count((1, 2)) == 1

    def test_quest_data_full_mining_matches_reference(self, small_quest_db):
        reference = Apriori(0.02, kernel="reference").mine(small_quest_db)
        vertical = Apriori(0.02, kernel="vertical").mine(small_quest_db)
        assert vertical.frequent == reference.frequent


class TestVerticalCounterSurface:
    """The shared counter surface the kernel facade relies on."""

    def test_registered_in_kernels(self):
        assert "vertical" in KERNELS
        counter = make_counter(2, [(1, 2)], kernel="vertical")
        assert isinstance(counter, VerticalCounter)

    def test_count_packed_into_facade(self, small_quest_db):
        packed = small_quest_db.to_packed()
        frequent_1 = sorted(
            Apriori(0.05, max_k=1).mine(small_quest_db).frequent
        )
        candidates = generate_candidates(frequent_1)[:40]
        oracle = make_counter(2, candidates, kernel="reference")
        count_packed_into(oracle, packed)
        vertical = make_counter(2, candidates, kernel="vertical")
        count_packed_into(vertical, packed)
        assert vertical.counts() == oracle.counts()

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            VerticalCounter(0)

    def test_rejects_wrong_size_candidate(self):
        with pytest.raises(ValueError, match="size"):
            VerticalCounter(2, [(1, 2, 3)])

    def test_duplicate_candidates_ignored(self):
        counter = VerticalCounter(2, [(1, 2), (1, 2)])
        assert len(counter) == 1
        counter.count_database([(1, 2)])
        assert counter.get_count((1, 2)) == 1

    def test_membership_and_iteration(self):
        counter = VerticalCounter(2, [(1, 2), (3, 4)])
        assert (1, 2) in counter
        assert (9, 9) not in counter
        assert list(counter.candidates()) == [(1, 2), (3, 4)]

    def test_frequent_threshold(self):
        counter = VerticalCounter(2, [(1, 2), (3, 4)])
        counter.count_database([(1, 2), (1, 2), (3, 4)])
        assert counter.frequent(2) == {(1, 2): 2}

    def test_add_counts_and_reset(self):
        counter = VerticalCounter(2, [(1, 2)])
        counter.add_counts({(1, 2): 5})
        assert counter.get_count((1, 2)) == 5
        with pytest.raises(KeyError, match="diverged"):
            counter.add_counts({(7, 8): 1})
        counter.reset_counts()
        assert counter.get_count((1, 2)) == 0

    def test_insert_after_counting(self):
        # Late inserts invalidate the sorted order without corrupting
        # already-accumulated counts.
        counter = VerticalCounter(2, [(2, 3)])
        counter.count_database([(2, 3)])
        counter.insert((1, 2))
        counter.count_database([(1, 2), (2, 3)])
        assert counter.counts() == {(2, 3): 2, (1, 2): 1}

    def test_shape_is_degenerate(self):
        shape = VerticalCounter(2, [(1, 2), (3, 4)]).shape()
        assert shape.num_candidates == 2
        assert shape.num_leaves == 1
        assert shape.num_internal == 0
        assert shape.max_depth == 0

    def test_timing_counters_accumulate(self, small_quest_db):
        counter = VerticalCounter(2, list(combinations(range(10), 2)))
        counter.count_packed(small_quest_db.to_packed())
        assert counter.build_s > 0
        assert counter.intersect_s > 0


class TestTidBitmapCache:
    def test_block_built_at_most_once(self):
        cache = TidBitmapCache()
        block = [(1, 2), (2, 3)]
        first = cache.for_block(block)
        assert cache.for_block(block) is first
        assert cache.for_block([(1, 2), (2, 3)]) is not first

    def test_packed_keyed_by_range(self, small_quest_db):
        cache = TidBitmapCache()
        packed = small_quest_db.to_packed()
        whole = cache.for_packed(packed)
        half = cache.for_packed(packed, 0, len(packed) // 2)
        assert cache.for_packed(packed) is whole
        assert cache.for_packed(packed, 0, len(packed) // 2) is half
        assert whole is not half

    def test_clear_forgets_entries(self):
        cache = TidBitmapCache()
        block = [(1, 2)]
        first = cache.for_block(block)
        cache.clear()
        assert cache.for_block(block) is not first

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
    )
    @settings(max_examples=75, deadline=None)
    def test_cached_counting_is_indistinguishable(
        self, transactions, candidates
    ):
        packed = PackedDB.pack(transactions)
        cache = TidBitmapCache()
        cached = VerticalCounter(2, candidates)
        cached.use_cache(cache)
        cached.count_packed(packed)
        uncached = VerticalCounter(2, candidates)
        uncached.count_packed(packed)
        assert cached.counts() == uncached.counts()
        # A second pass over the same store reuses the same bitmaps.
        again = VerticalCounter(2, candidates)
        again.use_cache(cache)
        again.count_packed(packed)
        assert again.counts() == uncached.counts()
