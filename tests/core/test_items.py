"""Unit tests for canonical item-set helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.items import (
    first_item,
    is_canonical,
    is_subset,
    itemset,
    prefix,
    validate_itemset,
)


class TestItemset:
    def test_sorts_and_dedups(self):
        assert itemset([3, 1, 2, 3]) == (1, 2, 3)

    def test_empty_input_gives_empty_tuple(self):
        assert itemset([]) == ()

    def test_single_item(self):
        assert itemset([7]) == (7,)

    @given(st.lists(st.integers(min_value=0, max_value=100)))
    def test_always_canonical(self, items):
        assert is_canonical(itemset(items))


class TestIsCanonical:
    def test_sorted_unique_is_canonical(self):
        assert is_canonical((1, 2, 5))

    def test_duplicates_are_not_canonical(self):
        assert not is_canonical((1, 1, 2))

    def test_unsorted_is_not_canonical(self):
        assert not is_canonical((2, 1))

    def test_empty_is_canonical(self):
        assert is_canonical(())


class TestValidateItemset:
    def test_accepts_canonical(self):
        assert validate_itemset([1, 4, 9]) == (1, 4, 9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one item"):
            validate_itemset([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_itemset([-1, 2])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="not sorted"):
            validate_itemset([2, 1])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="not sorted"):
            validate_itemset([1, 1])


class TestIsSubset:
    def test_positive(self):
        assert is_subset((2, 4), (1, 2, 3, 4, 5))

    def test_negative(self):
        assert not is_subset((2, 6), (1, 2, 3, 4, 5))

    def test_empty_candidate_is_subset(self):
        assert is_subset((), (1, 2))

    def test_candidate_longer_than_transaction(self):
        assert not is_subset((1, 2, 3), (1, 2))

    def test_equal_sets(self):
        assert is_subset((1, 2), (1, 2))

    def test_item_past_end(self):
        assert not is_subset((9,), (1, 2, 3))

    @given(
        st.sets(st.integers(min_value=0, max_value=30)),
        st.sets(st.integers(min_value=0, max_value=30)),
    )
    def test_matches_set_semantics(self, a, b):
        candidate = tuple(sorted(a))
        transaction = tuple(sorted(b))
        assert is_subset(candidate, transaction) == a.issubset(b)


class TestAccessors:
    def test_first_item(self):
        assert first_item((3, 5, 9)) == 3

    def test_prefix(self):
        assert prefix((1, 2, 3, 4), 2) == (1, 2)

    def test_prefix_full_length(self):
        assert prefix((1, 2), 5) == (1, 2)
