"""Tests for the first-item bitmap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitmap import ItemBitmap


class TestItemBitmap:
    def test_membership(self):
        bitmap = ItemBitmap([1, 5, 9])
        assert 1 in bitmap
        assert 5 in bitmap
        assert 2 not in bitmap
        assert 100 not in bitmap

    def test_empty(self):
        bitmap = ItemBitmap()
        assert 0 not in bitmap
        assert len(bitmap) == 0
        assert list(bitmap) == []

    def test_len_and_iter(self):
        bitmap = ItemBitmap([4, 1, 4, 2])
        assert len(bitmap) == 3
        assert list(bitmap) == [1, 2, 4]

    def test_add(self):
        bitmap = ItemBitmap()
        bitmap.add(7)
        assert 7 in bitmap
        bitmap.add(7)
        assert len(bitmap) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ItemBitmap([-1])
        bitmap = ItemBitmap()
        with pytest.raises(ValueError):
            bitmap.add(-3)

    def test_union(self):
        merged = ItemBitmap([1, 2]) | ItemBitmap([2, 3])
        assert list(merged) == [1, 2, 3]

    def test_equality(self):
        assert ItemBitmap([1, 2]) == ItemBitmap([2, 1])
        assert ItemBitmap([1]) != ItemBitmap([2])

    def test_repr(self):
        assert "1" in repr(ItemBitmap([1]))

    def test_size_in_bytes(self):
        bitmap = ItemBitmap([0])
        assert bitmap.size_in_bytes(8) == 1
        assert bitmap.size_in_bytes(9) == 2
        assert bitmap.size_in_bytes(1000) == 125

    @given(st.sets(st.integers(0, 200)))
    def test_behaves_like_a_set(self, items):
        bitmap = ItemBitmap(items)
        assert len(bitmap) == len(items)
        assert set(bitmap) == items
        for probe in range(0, 210, 7):
            assert (probe in bitmap) == (probe in items)
