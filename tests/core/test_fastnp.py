"""Property tests for the numpy-vectorized fast-np kernel.

Mirrors ``tests/core/test_vertical.py``: randomized databases drive
:class:`~repro.core.fastnp.PackedBitmaps` and
:class:`~repro.core.fastnp.FastNumpyCounter`, asserting bit-for-bit
equivalence with the reference :class:`~repro.core.hashtree.HashTree` —
including the empty-database, empty-transaction, singleton and
duplicate-transaction edges, the range-sum (CD reduction) invariant and
the IDD ``root_filter`` contract — plus the plane-specific surface the
native pool relies on: zero-copy :meth:`from_flat` decoding of the
shared candidate frame, :meth:`first_item_mask` / :meth:`counts_for`
shard views, and the :func:`make_counter` / :func:`make_cache` fallback
when numpy is absent (forced by monkeypatching ``fastnp.HAVE_NUMPY``).
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastnp
from repro.core.apriori import Apriori
from repro.core.bitmap import ItemBitmap
from repro.core.fastnp import FastNumpyCounter, PackedBitmapCache, PackedBitmaps
from repro.core.hashtree import HashTree
from repro.core.kernels import KERNELS, count_packed_into, make_counter
from repro.core.packed import (
    PackedDB,
    candidates_nbytes,
    write_candidates_into,
)
from repro.core.vertical import TidBitmapCache, VerticalCounter

# Same canonical shapes as the vertical suite: sorted unique items,
# empty transactions allowed, duplicate transactions allowed.
transactions_strategy = st.lists(
    st.frozensets(st.integers(0, 12), max_size=8).map(
        lambda s: tuple(sorted(s))
    ),
    max_size=40,
)

candidates_2_strategy = st.sets(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
        lambda c: c[0] < c[1]
    ),
    max_size=30,
).map(sorted)

candidates_3_strategy = st.sets(
    st.tuples(
        st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)
    ).filter(lambda c: c[0] < c[1] < c[2]),
    max_size=30,
).map(sorted)


def _oracle_counts(k, candidates, transactions, root_filter=None):
    tree = HashTree(k, branching=4, leaf_capacity=2)
    tree.insert_all(candidates)
    tree.count_database(transactions, root_filter)
    return tree.counts()


def _flat_frame(candidates, k):
    buf = bytearray(candidates_nbytes(len(candidates), k))
    write_candidates_into(candidates, k, buf)
    return buf


class TestPackedBitmaps:
    @given(transactions=transactions_strategy)
    @settings(max_examples=150, deadline=None)
    def test_bit_t_set_iff_item_in_transaction_t(self, transactions):
        bitmaps = PackedBitmaps.from_transactions(transactions)
        assert bitmaps.num_transactions == len(transactions)
        items = {i for t in transactions for i in t}
        assert set(bitmaps.item_ids.tolist()) == items
        for item in items:
            expected = sum(
                1 << t for t, tx in enumerate(transactions) if item in tx
            )
            row = bitmaps.bits_for(item)
            assert int.from_bytes(row.tobytes(), "little") == expected

    @given(transactions=transactions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_from_packed_matches_from_transactions(self, transactions):
        packed = PackedDB.pack(transactions)
        from_packed = PackedBitmaps.from_packed(packed)
        from_lists = PackedBitmaps.from_transactions(transactions)
        assert np.array_equal(from_packed.item_ids, from_lists.item_ids)
        assert np.array_equal(from_packed.rows, from_lists.rows)

    @given(transactions=transactions_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_packed_range_matches_slice(self, transactions, data):
        packed = PackedDB.pack(transactions)
        lo = data.draw(st.integers(0, len(transactions)))
        hi = data.draw(st.integers(lo, len(transactions)))
        ranged = PackedBitmaps.from_packed(packed, lo, hi)
        sliced = PackedBitmaps.from_transactions(transactions[lo:hi])
        assert np.array_equal(ranged.item_ids, sliced.item_ids)
        assert np.array_equal(ranged.rows, sliced.rows)
        assert ranged.num_transactions == hi - lo

    def test_empty_database(self):
        for bitmaps in (
            PackedBitmaps.from_transactions([]),
            PackedBitmaps.from_packed(PackedDB.pack([])),
        ):
            assert bitmaps.item_ids.size == 0
            assert bitmaps.num_transactions == 0

    def test_absent_item_is_zero(self):
        bitmaps = PackedBitmaps.from_transactions([(1, 2)])
        assert not bitmaps.bits_for(99).any()


class TestFastNumpyEquivalence:
    """FastNumpyCounter == HashTree, itemset for itemset."""

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
    )
    @settings(max_examples=150, deadline=None)
    def test_pairs_match_hashtree(self, transactions, candidates):
        counter = FastNumpyCounter(2, candidates)
        counter.count_database(transactions)
        assert counter.counts() == _oracle_counts(2, candidates, transactions)

    @given(
        transactions=transactions_strategy,
        candidates=candidates_3_strategy,
    )
    @settings(max_examples=150, deadline=None)
    def test_triples_match_hashtree(self, transactions, candidates):
        counter = FastNumpyCounter(3, candidates)
        counter.count_database(transactions)
        assert counter.counts() == _oracle_counts(3, candidates, transactions)

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
    )
    @settings(max_examples=100, deadline=None)
    def test_count_packed_matches_count_database(
        self, transactions, candidates
    ):
        packed = PackedDB.pack(transactions)
        via_packed = FastNumpyCounter(2, candidates)
        via_packed.count_packed(packed)
        via_lists = FastNumpyCounter(2, candidates)
        via_lists.count_database(transactions)
        assert via_packed.counts() == via_lists.counts()

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
        parts=st.integers(1, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_range_counts_sum_to_whole(
        self, transactions, candidates, parts
    ):
        # The CD reduction invariant: disjoint ranges sum to the whole.
        packed = PackedDB.pack(transactions)
        whole = FastNumpyCounter(2, candidates)
        whole.count_packed(packed)
        totals = {c: 0 for c in candidates}
        n = len(transactions)
        step = max(1, -(-n // parts))
        for lo in range(0, n, step):
            part = FastNumpyCounter(2, candidates)
            part.count_packed(packed, lo, min(lo + step, n))
            for c, count in part.counts().items():
                totals[c] += count
        assert totals == whole.counts()

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
        roots=st.sets(st.integers(0, 12)),
    )
    @settings(max_examples=100, deadline=None)
    def test_root_filter_contract(self, transactions, candidates, roots):
        # IDD ownership: owned candidates get full counts, the rest
        # stay untouched — exactly the hash-tree contract.
        counter = FastNumpyCounter(2, candidates)
        counter.count_database(transactions, root_filter=roots)
        full = _oracle_counts(2, candidates, transactions)
        for candidate, count in counter.counts().items():
            expected = full[candidate] if candidate[0] in roots else 0
            assert count == expected

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
        roots=st.sets(st.integers(0, 12)),
    )
    @settings(max_examples=75, deadline=None)
    def test_mask_root_filter_matches_container(
        self, transactions, candidates, roots
    ):
        # The native IDD path hands count_packed a precomputed boolean
        # row mask (first_item_mask) instead of a container; both views
        # must count identically, and counts_for(mask) must equal the
        # mask-restricted slot order.
        packed = PackedDB.pack(transactions)
        via_set = FastNumpyCounter(2, candidates)
        via_set.count_packed(packed, root_filter=roots)
        via_mask = FastNumpyCounter(2, candidates)
        mask = via_mask.first_item_mask(ItemBitmap(roots))
        via_mask.count_packed(packed, root_filter=mask)
        assert via_mask.counts() == via_set.counts()
        owned = [c for c in candidates if c[0] in roots]
        expected = [via_set.counts()[c] for c in owned]
        assert via_mask.counts_for(mask) == expected

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
    )
    @settings(max_examples=75, deadline=None)
    def test_count_transaction_fallback_agrees(
        self, transactions, candidates
    ):
        counter = FastNumpyCounter(2, candidates)
        for transaction in transactions:
            counter.count_transaction(transaction)
        assert counter.counts() == _oracle_counts(2, candidates, transactions)

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
    )
    @settings(max_examples=75, deadline=None)
    def test_duplicate_database_doubles_counts(
        self, transactions, candidates
    ):
        once = FastNumpyCounter(2, candidates)
        once.count_database(transactions)
        twice = FastNumpyCounter(2, candidates)
        twice.count_database(transactions)
        twice.count_database(transactions)
        assert twice.counts() == {
            c: 2 * n for c, n in once.counts().items()
        }

    @given(
        transactions=transactions_strategy,
        candidates=candidates_3_strategy,
    )
    @settings(max_examples=75, deadline=None)
    def test_from_flat_counts_match_tuple_counter(
        self, transactions, candidates
    ):
        # The shared candidate plane: a counter decoded zero-copy from
        # the binary frame counts exactly like one built from tuples,
        # and its vector is in frame (slot) order.
        packed = PackedDB.pack(transactions)
        frame = _flat_frame(candidates, 3)
        decoded = FastNumpyCounter.from_flat(frame)
        decoded.count_packed(packed)
        reference = FastNumpyCounter(3, candidates)
        reference.count_packed(packed)
        assert decoded.counts() == reference.counts()
        assert decoded.counts_vector() == [
            reference.counts()[c] for c in candidates
        ]

    def test_empty_database_counts_zero(self):
        counter = FastNumpyCounter(2, [(1, 2), (2, 3)])
        counter.count_database([])
        assert counter.counts() == {(1, 2): 0, (2, 3): 0}

    def test_empty_and_singleton_transactions(self):
        counter = FastNumpyCounter(2, [(1, 2)])
        counter.count_database([(), (1,), (2,), (1, 2)])
        assert counter.get_count((1, 2)) == 1

    def test_singleton_candidates(self):
        counter = FastNumpyCounter(1, [(1,), (3,)])
        counter.count_database([(1, 2), (1, 3), (2,)])
        assert counter.counts() == {(1,): 2, (3,): 1}

    def test_quest_data_full_mining_matches_reference(self, small_quest_db):
        reference = Apriori(0.02, kernel="reference").mine(small_quest_db)
        fast_np = Apriori(0.02, kernel="fast-np").mine(small_quest_db)
        assert fast_np.frequent == reference.frequent


class TestFastNumpyCounterSurface:
    """The shared counter surface plus the plane-only extensions."""

    def test_registered_in_kernels(self):
        assert "fast-np" in KERNELS
        counter = make_counter(2, [(1, 2)], kernel="fast-np")
        assert isinstance(counter, FastNumpyCounter)

    def test_count_packed_into_facade(self, small_quest_db):
        packed = small_quest_db.to_packed()
        frequent_1 = sorted(
            Apriori(0.05, max_k=1).mine(small_quest_db).frequent
        )
        from repro.core.candidates import generate_candidates

        candidates = generate_candidates(frequent_1)[:40]
        oracle = make_counter(2, candidates, kernel="reference")
        count_packed_into(oracle, packed)
        fast_np = make_counter(2, candidates, kernel="fast-np")
        count_packed_into(fast_np, packed)
        assert fast_np.counts() == oracle.counts()

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            FastNumpyCounter(0)

    def test_rejects_wrong_size_candidate(self):
        with pytest.raises(ValueError, match="size"):
            FastNumpyCounter(2, [(1, 2, 3)])

    def test_duplicate_candidates_ignored(self):
        counter = FastNumpyCounter(2, [(1, 2), (1, 2)])
        assert len(counter) == 1
        counter.count_database([(1, 2)])
        assert counter.get_count((1, 2)) == 1

    def test_membership_and_iteration(self):
        counter = FastNumpyCounter(2, [(1, 2), (3, 4)])
        assert (1, 2) in counter
        assert (9, 9) not in counter
        assert list(counter.candidates()) == [(1, 2), (3, 4)]

    def test_frequent_threshold(self):
        counter = FastNumpyCounter(2, [(1, 2), (3, 4)])
        counter.count_database([(1, 2), (1, 2), (3, 4)])
        assert counter.frequent(2) == {(1, 2): 2}

    def test_add_counts_and_reset(self):
        counter = FastNumpyCounter(2, [(1, 2)])
        counter.add_counts({(1, 2): 5})
        assert counter.get_count((1, 2)) == 5
        with pytest.raises(KeyError, match="diverged"):
            counter.add_counts({(7, 8): 1})
        counter.reset_counts()
        assert counter.get_count((1, 2)) == 0

    def test_insert_after_counting(self):
        # Late inserts keep already-accumulated counts.
        counter = FastNumpyCounter(2, [(2, 3)])
        counter.count_database([(2, 3)])
        counter.insert((1, 2))
        counter.count_database([(1, 2), (2, 3)])
        assert counter.counts() == {(2, 3): 2, (1, 2): 1}

    def test_shape_is_degenerate(self):
        shape = FastNumpyCounter(2, [(1, 2), (3, 4)]).shape()
        assert shape.num_candidates == 2
        assert shape.num_leaves == 1
        assert shape.num_internal == 0
        assert shape.max_depth == 0

    def test_timing_counters_accumulate(self, small_quest_db):
        from itertools import combinations

        counter = FastNumpyCounter(2, list(combinations(range(10), 2)))
        counter.count_packed(small_quest_db.to_packed())
        assert counter.build_s > 0
        assert counter.intersect_s > 0

    def test_first_item_mask_tests_each_distinct_root_once(self):
        counter = FastNumpyCounter(
            2, [(1, 2), (1, 3), (1, 4), (2, 3), (5, 6)]
        )

        class Tally:
            def __init__(self, owned):
                self.owned = owned
                self.checked = []

            def __contains__(self, item):
                self.checked.append(item)
                return item in self.owned

        tally = Tally({1, 5})
        mask = counter.first_item_mask(tally)
        assert sorted(tally.checked) == [1, 2, 5]  # distinct roots only
        assert mask.tolist() == [True, True, True, False, True]

    def test_from_flat_rejects_nothing_but_counts_lazily(self):
        # A matrix-only counter materializes tuples only when a
        # dict-shaped method needs them.
        frame = _flat_frame([(1, 2), (3, 4)], 2)
        counter = FastNumpyCounter.from_flat(frame)
        assert len(counter) == 2
        assert counter._tuples is None  # still zero-copy
        assert (1, 2) in counter  # forces materialization
        assert list(counter.candidates()) == [(1, 2), (3, 4)]


class TestPackedBitmapCache:
    def test_block_built_at_most_once(self):
        cache = PackedBitmapCache()
        block = [(1, 2), (2, 3)]
        first = cache.for_block(block)
        assert cache.for_block(block) is first
        assert cache.for_block([(1, 2), (2, 3)]) is not first

    def test_packed_keyed_by_range(self, small_quest_db):
        cache = PackedBitmapCache()
        packed = small_quest_db.to_packed()
        whole = cache.for_packed(packed)
        half = cache.for_packed(packed, 0, len(packed) // 2)
        assert cache.for_packed(packed) is whole
        assert cache.for_packed(packed, 0, len(packed) // 2) is half
        assert whole is not half

    def test_clear_forgets_entries(self):
        cache = PackedBitmapCache()
        block = [(1, 2)]
        first = cache.for_block(block)
        cache.clear()
        assert cache.for_block(block) is not first

    @given(
        transactions=transactions_strategy,
        candidates=candidates_2_strategy,
    )
    @settings(max_examples=75, deadline=None)
    def test_cached_counting_is_indistinguishable(
        self, transactions, candidates
    ):
        packed = PackedDB.pack(transactions)
        cache = PackedBitmapCache()
        cached = FastNumpyCounter(2, candidates)
        cached.use_cache(cache)
        cached.count_packed(packed)
        uncached = FastNumpyCounter(2, candidates)
        uncached.count_packed(packed)
        assert cached.counts() == uncached.counts()
        # A second pass over the same store reuses the same bit-matrix.
        again = FastNumpyCounter(2, candidates)
        again.use_cache(cache)
        again.count_packed(packed)
        assert again.counts() == uncached.counts()


class TestNumpyAbsentFallback:
    """Without numpy the facade degrades to the vertical machinery."""

    def test_make_counter_falls_back(self, monkeypatch):
        monkeypatch.setattr(fastnp, "HAVE_NUMPY", False)
        counter = make_counter(2, [(1, 2)], kernel="fast-np")
        assert isinstance(counter, VerticalCounter)

    def test_make_cache_falls_back(self, monkeypatch):
        monkeypatch.setattr(fastnp, "HAVE_NUMPY", False)
        assert isinstance(fastnp.make_cache(), TidBitmapCache)

    def test_direct_construction_raises(self, monkeypatch):
        monkeypatch.setattr(fastnp, "HAVE_NUMPY", False)
        with pytest.raises(RuntimeError, match="requires numpy"):
            FastNumpyCounter(2, [(1, 2)])

    def test_fallback_counts_match(self, monkeypatch, small_quest_db):
        packed = small_quest_db.to_packed()
        with_np = make_counter(2, [(1, 2), (2, 3)], kernel="fast-np")
        count_packed_into(with_np, packed)
        monkeypatch.setattr(fastnp, "HAVE_NUMPY", False)
        without = make_counter(2, [(1, 2), (2, 3)], kernel="fast-np")
        count_packed_into(without, packed)
        assert without.counts() == with_np.counts()
