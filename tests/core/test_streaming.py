"""Tests for disk-resident streaming Apriori."""

import pytest

from repro.core.apriori import Apriori
from repro.core.streaming import StreamingApriori
from repro.data.io import stream_dat, write_dat


class TestStreamingApriori:
    def test_rejects_bad_max_k(self):
        with pytest.raises(ValueError):
            StreamingApriori(0.3, max_k=0)

    def test_matches_in_memory_on_tiny_db(self, tiny_db):
        in_memory = Apriori(0.3).mine(tiny_db)
        streamed = StreamingApriori(0.3).mine(lambda: iter(tiny_db))
        assert streamed.frequent == in_memory.frequent
        assert streamed.num_transactions == len(tiny_db)

    def test_matches_in_memory_on_quest_db(self, medium_quest_db):
        in_memory = Apriori(0.05).mine(medium_quest_db)
        streamed = StreamingApriori(0.05).mine(
            lambda: iter(medium_quest_db)
        )
        assert streamed.frequent == in_memory.frequent

    def test_mines_from_file_without_loading(self, tmp_path, medium_quest_db):
        path = tmp_path / "db.dat"
        write_dat(medium_quest_db, path)
        streamed = StreamingApriori(0.05).mine(lambda: stream_dat(path))
        in_memory = Apriori(0.05).mine(medium_quest_db)
        assert streamed.frequent == in_memory.frequent

    def test_mines_from_gzip_file(self, tmp_path, tiny_db):
        path = tmp_path / "db.dat.gz"
        write_dat(tiny_db, path)
        streamed = StreamingApriori(0.3).mine(lambda: stream_dat(path))
        assert streamed.frequent == Apriori(0.3).mine(tiny_db).frequent

    def test_max_k_respected(self, tiny_db):
        streamed = StreamingApriori(0.3, max_k=2).mine(lambda: iter(tiny_db))
        assert all(len(s) <= 2 for s in streamed.frequent)

    def test_unstable_source_detected(self, tiny_db):
        scans = []

        def shrinking_source():
            scans.append(None)
            transactions = list(tiny_db)
            # Second and later scans silently lose a transaction.
            if len(scans) > 1:
                transactions = transactions[:-1]
            return iter(transactions)

        with pytest.raises(ValueError, match="not stable"):
            StreamingApriori(0.3).mine(shrinking_source)

    def test_empty_source(self):
        streamed = StreamingApriori(0.5).mine(lambda: iter(()))
        assert streamed.frequent == {}
        assert streamed.num_transactions == 0

    def test_pass_traces_recorded(self, tiny_db):
        streamed = StreamingApriori(0.3).mine(lambda: iter(tiny_db))
        assert streamed.passes[0].k == 1
        assert streamed.passes[1].tree_shape is not None
