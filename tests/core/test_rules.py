"""Tests for association-rule generation."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apriori import Apriori
from repro.core.rules import generate_rules, rules_from_result
from repro.core.transaction import TransactionDB


def brute_force_rules(frequent, num_transactions, min_confidence):
    """All-subsets rule enumeration, the oracle for ap-genrules."""
    rules = set()
    for itemset, joint in frequent.items():
        if len(itemset) < 2:
            continue
        for size in range(1, len(itemset)):
            for consequent in combinations(itemset, size):
                antecedent = tuple(
                    i for i in itemset if i not in set(consequent)
                )
                confidence = joint / frequent[antecedent]
                if confidence + 1e-12 >= min_confidence:
                    rules.add((antecedent, consequent))
    return rules


class TestPaperExample:
    def test_diaper_milk_implies_beer(self, supermarket_db):
        """Section II: {Diaper, Milk} => {Beer} has support 40%, confidence 66%."""
        result = Apriori(0.4).mine(supermarket_db)
        rules = rules_from_result(result, min_confidence=0.6)
        target = next(
            r
            for r in rules
            if r.antecedent == (3, 4) and r.consequent == (0,)
        )
        assert target.support == pytest.approx(0.4)
        assert target.confidence == pytest.approx(2 / 3)
        assert target.count == 2

    def test_rule_str_rendering(self, supermarket_db):
        result = Apriori(0.4).mine(supermarket_db)
        rules = rules_from_result(result, 0.6)
        text = str(rules[0])
        assert "=>" in text
        assert "confidence=" in text


class TestGenerateRules:
    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            generate_rules({}, 10, 0.0)
        with pytest.raises(ValueError):
            generate_rules({}, 10, 1.5)

    def test_rejects_bad_transaction_count(self):
        with pytest.raises(ValueError):
            generate_rules({}, 0, 0.5)

    def test_no_rules_from_singletons(self):
        rules = generate_rules({(1,): 5, (2,): 3}, 10, 0.1)
        assert rules == []

    def test_antecedent_and_consequent_disjoint_and_cover(self):
        frequent = {(1,): 4, (2,): 4, (3,): 3, (1, 2): 3, (1, 3): 2,
                    (2, 3): 2, (1, 2, 3): 2}
        for rule in generate_rules(frequent, 5, 0.1):
            overlap = set(rule.antecedent) & set(rule.consequent)
            assert not overlap
            union = tuple(sorted(rule.antecedent + rule.consequent))
            assert union in frequent

    def test_sorted_by_confidence_then_support(self):
        frequent = {(1,): 4, (2,): 2, (3,): 4, (1, 2): 2, (1, 3): 4}
        rules = generate_rules(frequent, 4, 0.1)
        keys = [(-r.confidence, -r.support) for r in rules]
        assert keys == sorted(keys)

    def test_confidence_threshold_filters(self):
        frequent = {(1,): 10, (2,): 2, (1, 2): 2}
        # {1} => {2} has confidence 0.2; {2} => {1} has 1.0.
        strict = generate_rules(frequent, 10, 0.9)
        assert {(r.antecedent, r.consequent) for r in strict} == {((2,), (1,))}

    def test_missing_subset_raises_keyerror(self):
        # Not downward closed: (1,2) present without (1,).
        with pytest.raises(KeyError):
            generate_rules({(1, 2): 2, (2,): 3}, 10, 0.1)

    def test_matches_brute_force_on_supermarket(self, supermarket_db):
        result = Apriori(0.4).mine(supermarket_db)
        for min_confidence in (0.3, 0.6, 0.9):
            rules = generate_rules(
                result.frequent, len(supermarket_db), min_confidence
            )
            produced = {(r.antecedent, r.consequent) for r in rules}
            expected = brute_force_rules(
                result.frequent, len(supermarket_db), min_confidence
            )
            assert produced == expected


transactions_strategy = st.lists(
    st.sets(st.integers(0, 10), min_size=1, max_size=6).map(
        lambda s: tuple(sorted(s))
    ),
    min_size=1,
    max_size=20,
)


class TestRulesProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        transactions_strategy,
        st.floats(min_value=0.1, max_value=0.9),
        st.floats(min_value=0.1, max_value=1.0),
    )
    def test_ap_genrules_equals_brute_force(
        self, rows, min_support, min_confidence
    ):
        db = TransactionDB.from_canonical(rows)
        result = Apriori(min_support).mine(db)
        rules = generate_rules(result.frequent, len(db), min_confidence)
        produced = {(r.antecedent, r.consequent) for r in rules}
        expected = brute_force_rules(result.frequent, len(db), min_confidence)
        assert produced == expected

    @settings(max_examples=30, deadline=None)
    @given(transactions_strategy)
    def test_rule_measures_are_consistent(self, rows):
        db = TransactionDB.from_canonical(rows)
        result = Apriori(0.2).mine(db)
        for rule in generate_rules(result.frequent, len(db), 0.2):
            assert 0 < rule.support <= 1
            assert 0 < rule.confidence <= 1
            # confidence >= support always (sigma(X) <= |T|).
            assert rule.confidence >= rule.support - 1e-12


class TestSingletonOnlyResults:
    def test_result_with_only_singletons_yields_no_rules(self):
        """A mine whose threshold leaves only single items must derive
        [] — the serving daemon's re-mine path hits this whenever drift
        pushes every pair below support."""
        from repro.core.apriori import AprioriResult

        result = AprioriResult(
            frequent={(1,): 9, (7,): 8, (42,): 5},
            min_support=0.5,
            min_count=5,
            num_transactions=10,
        )
        assert rules_from_result(result, 0.1) == []
        assert rules_from_result(result, 1.0) == []

    def test_empty_result_yields_no_rules(self):
        from repro.core.apriori import AprioriResult

        result = AprioriResult(
            frequent={}, min_support=0.5, min_count=5, num_transactions=10
        )
        assert rules_from_result(result, 0.5) == []


class _CountingTable(dict):
    """A frequent table that counts per-key __getitem__ fetches."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fetches = {}

    def __getitem__(self, key):
        self.fetches[key] = self.fetches.get(key, 0) + 1
        return super().__getitem__(key)


class TestSupportMemoization:
    def test_each_antecedent_support_fetched_at_most_once(self, supermarket_db):
        result = Apriori(0.2).mine(supermarket_db)
        table = _CountingTable(result.frequent)
        generate_rules(table, result.num_transactions, 0.1)
        repeated = {k: n for k, n in table.fetches.items() if n > 1}
        assert repeated == {}, (
            "ap-genrules must memoize support lookups: these antecedents "
            f"were fetched more than once: {repeated}"
        )

    def test_memoized_rules_identical_to_plain_dict(self, supermarket_db):
        result = Apriori(0.2).mine(supermarket_db)
        plain = generate_rules(result.frequent, result.num_transactions, 0.3)
        counted = generate_rules(
            _CountingTable(result.frequent), result.num_transactions, 0.3
        )
        assert plain == counted
