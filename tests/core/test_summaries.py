"""Tests for maximal/closed item-set condensations."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apriori import Apriori
from repro.core.summaries import (
    closed_itemsets,
    maximal_itemsets,
    support_histogram,
)
from repro.core.transaction import TransactionDB


FREQUENT = {
    (1,): 5,
    (2,): 4,
    (3,): 4,
    (1, 2): 4,
    (1, 3): 3,
    (2, 3): 3,
    (1, 2, 3): 3,
}


class TestMaximal:
    def test_empty(self):
        assert maximal_itemsets({}) == {}

    def test_single_maximal(self):
        assert maximal_itemsets(FREQUENT) == {(1, 2, 3): 3}

    def test_incomparable_maximals(self):
        frequent = {(1,): 3, (2,): 3, (3,): 3, (1, 2): 2, (3,): 3}
        assert maximal_itemsets(frequent) == {(1, 2): 2, (3,): 3}

    def test_all_singletons(self):
        frequent = {(1,): 2, (2,): 2}
        assert maximal_itemsets(frequent) == frequent

    def test_determines_frequency(self, supermarket_db):
        """Every frequent set is a subset of some maximal set."""
        result = Apriori(0.4).mine(supermarket_db)
        maximal = maximal_itemsets(result.frequent)
        for itemset in result.frequent:
            covered = any(
                set(itemset) <= set(m) for m in maximal
            )
            assert covered


class TestClosed:
    def test_empty(self):
        assert closed_itemsets({}) == {}

    def test_absorbed_subsets_removed(self):
        # (2,) has the same support as (1, 2): not closed.
        frequent = {(1,): 5, (2,): 4, (1, 2): 4}
        closed = closed_itemsets(frequent)
        assert (2,) not in closed
        assert closed[(1,)] == 5
        assert closed[(1, 2)] == 4

    def test_closed_superset_of_maximal(self, supermarket_db):
        result = Apriori(0.4).mine(supermarket_db)
        closed = closed_itemsets(result.frequent)
        maximal = maximal_itemsets(result.frequent)
        assert set(maximal) <= set(closed)

    def test_closed_preserve_all_supports(self, supermarket_db):
        """sigma(X) = max over closed supersets of X — the defining
        property of the closed condensation."""
        result = Apriori(0.4).mine(supermarket_db)
        closed = closed_itemsets(result.frequent)
        for itemset, count in result.frequent.items():
            recovered = max(
                c for s, c in closed.items() if set(itemset) <= set(s)
            )
            assert recovered == count


class TestSupportHistogram:
    def test_counts_by_size(self):
        assert support_histogram(FREQUENT) == {1: 3, 2: 3, 3: 1}

    def test_empty(self):
        assert support_histogram({}) == {}


transactions_strategy = st.lists(
    st.sets(st.integers(0, 8), min_size=1, max_size=5).map(
        lambda s: tuple(sorted(s))
    ),
    min_size=1,
    max_size=15,
)


class TestCondensationProperties:
    @settings(max_examples=40, deadline=None)
    @given(transactions_strategy)
    def test_maximal_within_closed_within_frequent(self, rows):
        db = TransactionDB.from_canonical(rows)
        frequent = Apriori(0.2).mine(db).frequent
        closed = closed_itemsets(frequent)
        maximal = maximal_itemsets(frequent)
        assert set(maximal) <= set(closed) <= set(frequent)

    @settings(max_examples=40, deadline=None)
    @given(transactions_strategy)
    def test_maximal_antichain(self, rows):
        db = TransactionDB.from_canonical(rows)
        frequent = Apriori(0.2).mine(db).frequent
        maximal = list(maximal_itemsets(frequent))
        for a, b in combinations(maximal, 2):
            assert not (set(a) <= set(b) or set(b) <= set(a))
