"""Tests for the candidate-set partitioners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    bin_pack,
    partition_by_first_item,
    partition_contiguous_first_items,
    partition_round_robin,
)


def flatten(partition):
    merged = []
    for assignment in partition.assignments:
        merged.extend(assignment)
    return sorted(merged)


CANDIDATES = [
    (1, 2), (1, 3), (1, 4), (1, 5),
    (2, 3), (2, 4),
    (3, 4), (3, 5), (3, 6),
    (4, 5),
    (7, 8),
]


class TestRoundRobin:
    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            partition_round_robin(CANDIDATES, 0)

    def test_covers_all_candidates_exactly_once(self):
        partition = partition_round_robin(CANDIDATES, 3)
        assert flatten(partition) == sorted(CANDIDATES)

    def test_loads_are_balanced(self):
        partition = partition_round_robin(CANDIDATES, 4)
        loads = partition.loads
        assert max(loads) - min(loads) <= 1

    def test_no_filters(self):
        assert partition_round_robin(CANDIDATES, 2).filters is None

    def test_imbalance_metric(self):
        partition = partition_round_robin(CANDIDATES, 2)
        assert partition.load_imbalance() == pytest.approx(
            max(partition.loads) / (len(CANDIDATES) / 2) - 1
        )


class TestBinPack:
    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            bin_pack({(1,): 3}, 0)

    def test_single_bin_takes_everything(self):
        bins = bin_pack({(1,): 3, (2,): 5}, 1)
        assert sorted(bins[0]) == [(1,), (2,)]

    def test_heaviest_items_spread_first(self):
        weights = {(1,): 10, (2,): 9, (3,): 1, (4,): 1}
        bins = bin_pack(weights, 2)
        loads = [sum(weights[k] for k in b) for b in bins]
        assert sorted(loads) == [10, 11]

    def test_deterministic(self):
        weights = {(i,): 5 for i in range(10)}
        assert bin_pack(weights, 3) == bin_pack(weights, 3)

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.tuples(st.integers(0, 30)),
            st.integers(1, 20),
            max_size=20,
        ),
        st.integers(1, 6),
    )
    def test_pack_covers_all_keys(self, weights, bins_count):
        bins = bin_pack(weights, bins_count)
        packed = sorted(k for b in bins for k in b)
        assert packed == sorted(weights)

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.tuples(st.integers(0, 30)),
            st.integers(1, 20),
            min_size=1,
            max_size=20,
        ),
        st.integers(1, 6),
    )
    def test_lpt_bound(self, weights, bins_count):
        """Greedy LPT is within 4/3 OPT; check the weaker bound
        max_load <= mean + max_weight, which LPT always satisfies."""
        bins = bin_pack(weights, bins_count)
        loads = [sum(weights[k] for k in b) for b in bins]
        mean = sum(weights.values()) / bins_count
        assert max(loads) <= mean + max(weights.values()) + 1e-9


class TestPartitionByFirstItem:
    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            partition_by_first_item(CANDIDATES, -1)

    def test_covers_all_candidates_exactly_once(self):
        partition = partition_by_first_item(CANDIDATES, 3)
        assert flatten(partition) == sorted(CANDIDATES)

    def test_first_items_stay_together(self):
        partition = partition_by_first_item(CANDIDATES, 3)
        owner_of = {}
        for pid, assignment in enumerate(partition.assignments):
            for candidate in assignment:
                assert owner_of.setdefault(candidate[0], pid) == pid

    def test_filters_match_assignments(self):
        partition = partition_by_first_item(CANDIDATES, 3)
        assert partition.filters is not None
        for assignment, bitmap in zip(partition.assignments, partition.filters):
            for candidate in assignment:
                assert candidate[0] in bitmap

    def test_single_processor(self):
        partition = partition_by_first_item(CANDIDATES, 1)
        assert partition.loads == [len(CANDIDATES)]

    def test_more_processors_than_first_items(self):
        partition = partition_by_first_item([(1, 2), (2, 3)], 5)
        assert sum(partition.loads) == 2
        assert partition.loads.count(0) == 3

    def test_refinement_splits_heavy_first_item(self):
        heavy = [(1, j) for j in range(2, 12)] + [(2, 3), (3, 4)]
        coarse = partition_by_first_item(heavy, 3)
        refined = partition_by_first_item(heavy, 3, refine_threshold=4)
        # Without refinement one processor owns all ten (1, *) candidates.
        assert max(coarse.loads) == 10
        # With refinement the (1, *) group is split by second item.
        assert max(refined.loads) < 10
        assert flatten(refined) == sorted(heavy)

    def test_refinement_bitmap_still_covers_first_items(self):
        heavy = [(1, j) for j in range(2, 12)]
        refined = partition_by_first_item(heavy, 2, refine_threshold=3)
        assert refined.filters is not None
        for assignment, bitmap in zip(refined.assignments, refined.filters):
            for candidate in assignment:
                assert candidate[0] in bitmap

    def test_refinement_ignores_singleton_candidates(self):
        singles = [(i,) for i in range(6)]
        partition = partition_by_first_item(singles, 2, refine_threshold=1)
        assert flatten(partition) == singles

    @settings(max_examples=50, deadline=None)
    @given(
        st.sets(
            st.tuples(st.integers(0, 15), st.integers(16, 31)),
            min_size=1,
            max_size=40,
        ),
        st.integers(1, 8),
    )
    def test_partition_is_exact_cover(self, candidate_set, processors):
        candidates = sorted(candidate_set)
        partition = partition_by_first_item(candidates, processors)
        assert flatten(partition) == candidates


class TestPartitionContiguous:
    def test_covers_all_candidates_exactly_once(self):
        partition = partition_contiguous_first_items(CANDIDATES, 3)
        assert flatten(partition) == sorted(CANDIDATES)

    def test_first_items_stay_together(self):
        partition = partition_contiguous_first_items(CANDIDATES, 3)
        owner_of = {}
        for pid, assignment in enumerate(partition.assignments):
            for candidate in assignment:
                assert owner_of.setdefault(candidate[0], pid) == pid

    def test_owners_are_contiguous_ranges(self):
        partition = partition_contiguous_first_items(CANDIDATES, 3)
        previous_owner = -1
        for first_item in sorted({c[0] for c in CANDIDATES}):
            owner = next(
                pid
                for pid, assignment in enumerate(partition.assignments)
                if any(c[0] == first_item for c in assignment)
            )
            assert owner >= previous_owner
            previous_owner = owner

    def test_filters_cover_assignments(self):
        partition = partition_contiguous_first_items(CANDIDATES, 3)
        assert partition.filters is not None
        for assignment, bitmap in zip(partition.assignments, partition.filters):
            for candidate in assignment:
                assert candidate[0] in bitmap

    def test_skewed_candidates_imbalance_worse_than_bin_packing(self):
        """Section III-C's 1-to-50 example: contiguous ranges pile the
        heavy half of the item space on one processor."""
        skewed = [(i, j) for i in range(10) for j in range(i + 1, 12)]
        contiguous = partition_contiguous_first_items(skewed + [(90, 91)], 2)
        packed = partition_by_first_item(skewed + [(90, 91)], 2)
        assert contiguous.load_imbalance() > packed.load_imbalance()

    def test_empty_candidates(self):
        partition = partition_contiguous_first_items([], 3)
        assert partition.loads == [0, 0, 0]

    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            partition_contiguous_first_items(CANDIDATES, 0)
