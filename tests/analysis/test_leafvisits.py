"""Tests for the V(i, j) distinct-leaf-visit model (Equations 1-2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.leafvisits import (
    dd_checking_ratio,
    expected_leaf_visits,
    expected_leaf_visits_limit,
    monte_carlo_leaf_visits,
)


class TestClosedForm:
    def test_base_case_one_probe(self):
        """V(1, j) = 1 for any j (Equation 1's base case)."""
        for j in (1, 2, 10, 1000):
            assert expected_leaf_visits(1, j) == pytest.approx(1.0)

    def test_single_leaf_tree(self):
        """V(i, 1) = 1: every probe hits the only leaf."""
        for i in (1, 5, 100):
            assert expected_leaf_visits(i, 1) == pytest.approx(1.0)

    def test_zero_probes(self):
        assert expected_leaf_visits(0, 10) == 0.0

    def test_rejects_negative_probes(self):
        with pytest.raises(ValueError):
            expected_leaf_visits(-1, 10)

    def test_exact_small_case(self):
        """V(2, 2) = (2^2 - 1^2) / 2^1 = 1.5."""
        assert expected_leaf_visits(2, 2) == pytest.approx(1.5)

    def test_recurrence(self):
        """V(i, j) = 1 + (j-1)/j * V(i-1, j) (the paper's derivation)."""
        for j in (3, 7, 50):
            for i in range(2, 8):
                recurrence = 1 + (j - 1) / j * expected_leaf_visits(i - 1, j)
                assert expected_leaf_visits(i, j) == pytest.approx(recurrence)

    def test_limit_equals_probe_count(self):
        """Equation 2: V(i, j) -> i as j -> infinity."""
        for i in (1, 10, 455):
            assert expected_leaf_visits(i, 10**12) == pytest.approx(
                expected_leaf_visits_limit(i), rel=1e-6
            )

    def test_monotone_in_probes(self):
        values = [expected_leaf_visits(i, 100) for i in range(1, 20)]
        assert values == sorted(values)

    def test_monotone_in_leaves(self):
        values = [expected_leaf_visits(50, j) for j in (1, 5, 20, 100, 1000)]
        assert values == sorted(values)

    def test_never_exceeds_either_bound(self):
        for i in (1, 7, 100):
            for j in (1, 10, 200):
                v = expected_leaf_visits(i, j)
                assert v <= i + 1e-9
                assert v <= j + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 500))
    def test_matches_explicit_formula(self, i, j):
        """Cross-check the stable form against the paper's literal formula."""
        literal = (j**i - (j - 1) ** i) / j ** (i - 1)
        assert expected_leaf_visits(i, j) == pytest.approx(literal, rel=1e-9)


class TestMonteCarlo:
    def test_agrees_with_closed_form(self):
        for i, j in ((5, 10), (20, 8), (50, 100)):
            estimate = monte_carlo_leaf_visits(i, j, trials=4000, seed=1)
            exact = expected_leaf_visits(i, j)
            assert estimate == pytest.approx(exact, rel=0.05)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            monte_carlo_leaf_visits(-1, 5)
        with pytest.raises(ValueError):
            monte_carlo_leaf_visits(5, 0)
        with pytest.raises(ValueError):
            monte_carlo_leaf_visits(5, 5, trials=0)

    def test_deterministic_under_seed(self):
        a = monte_carlo_leaf_visits(10, 10, trials=100, seed=7)
        b = monte_carlo_leaf_visits(10, 10, trials=100, seed=7)
        assert a == b


class TestDDCheckingRatio:
    def test_no_redundancy_at_one_processor(self):
        assert dd_checking_ratio(100, 1000, 1) == pytest.approx(1.0)

    def test_redundancy_grows_with_processors(self):
        ratios = [dd_checking_ratio(455, 2000, p) for p in (1, 2, 4, 8, 16)]
        assert ratios == sorted(ratios)

    def test_approaches_p_for_large_trees(self):
        """Section IV: when L is very large, V(C, L/P) ~ C and
        V(C, L)/P ~ C/P, so the ratio approaches P."""
        ratio = dd_checking_ratio(100, 10**9, 8)
        assert ratio == pytest.approx(8.0, rel=1e-3)

    def test_rejects_bad_processors(self):
        with pytest.raises(ValueError):
            dd_checking_ratio(10, 10, 0)

    def test_zero_probes_is_neutral(self):
        assert dd_checking_ratio(0, 100, 4) == 1.0
