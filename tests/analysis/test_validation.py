"""Tests for model-vs-simulation validation."""

import pytest

from repro.analysis.validation import ValidationReport, validate_pass_model
from repro.data.corpus import t15_i6
from repro.data.quest import generate


@pytest.fixture(scope="module")
def report():
    db = generate(t15_i6(800, seed=13, num_items=1000))
    return validate_pass_model(db, 0.01, k=3, num_processors=8)


class TestValidationReport:
    def test_all_algorithms_present(self, report):
        assert set(report.timings) == {"CD", "DD", "IDD", "HD"}

    def test_all_times_positive(self, report):
        for measured, predicted in report.timings.values():
            assert measured > 0
            assert predicted > 0

    def test_orderings(self, report):
        assert set(report.measured_order()) == set(report.timings)
        assert set(report.predicted_order()) == set(report.timings)

    def test_model_ranks_like_simulation(self, report):
        """The Section IV claim: the model predicts who wins."""
        assert report.agreement_pairs() >= 0.8

    def test_dd_is_last_both_ways(self, report):
        assert report.measured_order()[-1] == "DD"
        assert report.predicted_order()[-1] == "DD"

    def test_to_table_renders(self, report):
        table = report.to_table()
        assert "measured order" in table
        assert "pairwise agreement" in table
        for algorithm in report.timings:
            assert algorithm in table

    def test_workload_captured(self, report):
        assert report.workload is not None
        assert report.workload.k == 3
        assert report.workload.num_transactions == 800


class TestAgreementMetric:
    def test_perfect_agreement(self):
        report = ValidationReport(k=2, num_processors=2)
        report.timings = {"A": (1.0, 10.0), "B": (2.0, 20.0)}
        assert report.orders_agree()
        assert report.agreement_pairs() == 1.0

    def test_total_disagreement(self):
        report = ValidationReport(k=2, num_processors=2)
        report.timings = {"A": (1.0, 20.0), "B": (2.0, 10.0)}
        assert not report.orders_agree()
        assert report.agreement_pairs() == 0.0

    def test_empty_report(self):
        report = ValidationReport(k=2, num_processors=2)
        assert report.agreement_pairs() == 1.0
