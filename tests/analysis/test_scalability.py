"""Tests for scalability metrics."""

import pytest

from repro.analysis.scalability import (
    efficiency,
    scaleup_degradation,
    speedup,
    speedup_series,
)


class TestSpeedup:
    def test_basic(self):
        assert speedup(100.0, 25.0) == 4.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestEfficiency:
    def test_perfect(self):
        assert efficiency(100.0, 25.0, 4) == pytest.approx(1.0)

    def test_sublinear(self):
        assert efficiency(100.0, 50.0, 4) == pytest.approx(0.5)

    def test_rejects_bad_processors(self):
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)


class TestSpeedupSeries:
    def test_maps_pairs(self):
        series = speedup_series(100.0, [(2, 60.0), (4, 30.0)])
        assert series == [(2, pytest.approx(100 / 60)), (4, pytest.approx(100 / 30))]


class TestScaleupDegradation:
    def test_normalizes_by_smallest_p(self):
        degradation = scaleup_degradation([(8, 12.0), (2, 10.0), (4, 11.0)])
        assert degradation[2] == pytest.approx(1.0)
        assert degradation[4] == pytest.approx(1.1)
        assert degradation[8] == pytest.approx(1.2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            scaleup_degradation([])

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            scaleup_degradation([(2, 0.0)])
