"""Tests for the Section IV cost equations (3-7) and Equation 8."""

import pytest

from repro.analysis.model import PassModel, hd_beneficial_range
from repro.cluster.machine import CRAY_T3E


def model(**overrides):
    base = dict(
        num_transactions=100_000,
        num_candidates=50_000,
        avg_transaction_length=15,
        k=3,
        leaf_size=16.0,
        avg_transaction_bytes=64.0,
    )
    base.update(overrides)
    return PassModel(**base)


class TestPassModel:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            model(k=0)

    def test_rejects_non_positive_parameters(self):
        with pytest.raises(ValueError):
            model(num_transactions=0)
        with pytest.raises(ValueError):
            model(num_candidates=-5)

    def test_potential_candidates_is_binomial(self):
        assert model(k=2).potential_candidates == 105  # C(15, 2)
        assert model(k=3).potential_candidates == 455  # C(15, 3)

    def test_short_transactions_have_no_candidates(self):
        assert model(avg_transaction_length=2, k=3).potential_candidates == 0

    def test_num_leaves(self):
        assert model().num_leaves == pytest.approx(50_000 / 16.0)


class TestEquationShapes:
    def test_cd_equals_serial_at_one_processor_up_to_reduction(self):
        m = model()
        assert m.cd_time(CRAY_T3E, 1) == pytest.approx(
            m.serial_time(CRAY_T3E)
        )

    def test_cd_subset_scales_down_but_build_does_not(self):
        """Equation 4: the O(M) term survives any P (CD's bottleneck)."""
        m = model()
        floor = m.num_candidates * CRAY_T3E.t_insert
        assert m.cd_time(CRAY_T3E, 10**6) > floor

    def test_dd_does_not_reduce_traversal(self):
        """Equation 5: DD's traversal cost is N*C*t_travers at any P."""
        m = model()
        traversal = (
            m.num_transactions * m.potential_candidates * CRAY_T3E.t_travers
        )
        for p in (2, 8, 64):
            assert m.dd_time(CRAY_T3E, p) >= traversal

    def test_dd_slower_than_cd_for_large_n(self):
        m = model(num_transactions=10**7, num_candidates=10**5)
        for p in (4, 16, 64):
            assert m.dd_time(CRAY_T3E, p) > m.cd_time(CRAY_T3E, p)

    def test_idd_faster_than_dd(self):
        m = model()
        for p in (2, 8, 32):
            assert m.idd_time(CRAY_T3E, p) < m.dd_time(CRAY_T3E, p)

    def test_idd_beats_cd_when_m_dominates(self):
        """Figure 15's crossover: IDD wins at large M, loses at small M."""
        small_m = model(num_candidates=2_000, num_transactions=10**6)
        large_m = model(num_candidates=5 * 10**6, num_transactions=10**5)
        p = 64
        assert small_m.idd_time(CRAY_T3E, p) > small_m.cd_time(CRAY_T3E, p)
        assert large_m.idd_time(CRAY_T3E, p) < large_m.cd_time(CRAY_T3E, p)

    def test_hd_interpolates_cd_and_idd(self):
        m = model()
        p = 64
        hd_as_cd = m.hd_time(CRAY_T3E, p, 1)
        hd_as_idd = m.hd_time(CRAY_T3E, p, p)
        best_mid = min(m.hd_time(CRAY_T3E, p, g) for g in (2, 4, 8, 16, 32))
        assert best_mid <= max(hd_as_cd, hd_as_idd)

    def test_hd_g1_close_to_cd(self):
        m = model()
        assert m.hd_time(CRAY_T3E, 64, 1) == pytest.approx(
            m.cd_time(CRAY_T3E, 64), rel=0.25
        )

    def test_hd_rejects_non_divisor_groups(self):
        with pytest.raises(ValueError):
            model().hd_time(CRAY_T3E, 64, 3)

    def test_all_times_positive(self):
        m = model()
        assert m.serial_time(CRAY_T3E) > 0
        for p in (1, 2, 64):
            assert m.cd_time(CRAY_T3E, p) > 0
            assert m.dd_time(CRAY_T3E, p) > 0
            assert m.idd_time(CRAY_T3E, p) > 0

    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            model().cd_time(CRAY_T3E, 0)


class TestEquation8:
    def test_range_bounds(self):
        low, high = hd_beneficial_range(10**6, 10**5, 64)
        assert low == 1.0
        assert high == pytest.approx(10**5 * 64 / 10**6)

    def test_large_m_widens_range(self):
        _, narrow = hd_beneficial_range(10**6, 10**4, 64)
        _, wide = hd_beneficial_range(10**6, 10**6, 64)
        assert wide > narrow

    def test_large_n_closes_range(self):
        """When N >> M*P the upper bound drops below 1: HD should pick
        G = 1 and become CD (the paper's closing remark on Eq. 8)."""
        _, high = hd_beneficial_range(10**9, 10**4, 16)
        assert high < 1.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            hd_beneficial_range(0, 10, 4)
        with pytest.raises(ValueError):
            hd_beneficial_range(10, 0, 4)
        with pytest.raises(ValueError):
            hd_beneficial_range(10, 10, 0)
