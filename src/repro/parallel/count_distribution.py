"""Count Distribution (CD) — Agrawal & Shafer's formulation (Section III-A).

Each processor holds N/P transactions and a *complete replica* of the
candidate hash tree.  A pass is: build the full tree (un-parallelized —
the bottleneck the paper attacks), count the local transactions, then
global-sum the count vector with an all-reduce.

When the candidate set exceeds the per-processor memory capacity, the
tree is split into ``ceil(M / capacity)`` partitions and the local
database is scanned once per partition (charged as I/O when the run
models disk-resident data), reproducing the behaviour behind Figures 12
and 15.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..cluster.cluster import VirtualCluster
from ..cluster.machine import subset_time
from ..cluster.memory import partition_for_memory
from ..core.hashtree import HashTreeStats
from ..core.items import Itemset
from ..core.transaction import TransactionDB
from .base import ParallelMiner, ParallelPassStats

__all__ = ["CountDistribution"]


class CountDistribution(ParallelMiner):
    """The CD parallel formulation."""

    name = "CD"

    def _run_pass(
        self,
        cluster: VirtualCluster,
        k: int,
        candidates: Sequence[Itemset],
        local_parts: Sequence[TransactionDB],
        min_count: int,
    ) -> Tuple[Dict[Itemset, int], ParallelPassStats]:
        spec = self.machine
        num_processors = self.num_processors

        chunks = partition_for_memory(candidates, spec.memory_candidates)
        global_counts: Dict[Itemset, int] = {}
        subset_total = HashTreeStats()

        for chunk in chunks:
            # Every processor builds the identical (chunk of the) tree.
            # One physical tree stands in for the P replicas; each
            # processor is charged the full build.
            tree = self.build_tree(k, chunk)
            build_time = len(chunk) * spec.t_insert
            for pid in range(num_processors):
                cluster.advance(pid, build_time, "tree_build")

            for pid, part in enumerate(local_parts):
                if self.charge_io:
                    cluster.charge_io(
                        pid, part.size_in_bytes(spec.bytes_per_item)
                    )
                before = tree.stats.snapshot()
                tree.count_database(part)
                delta = tree.stats.delta_since(before)
                cluster.advance(pid, subset_time(delta, spec), "subset")
                subset_total = subset_total.merged_with(delta)

            # Global reduction of this chunk's count vector.  The single
            # physical tree already accumulated counts from every
            # partition, so its counts *are* the reduced values.
            cluster.all_reduce(
                len(chunk) * spec.bytes_per_count, combine_ops=len(chunk)
            )
            global_counts.update(tree.counts())

        frequent_k = {
            c: n for c, n in global_counts.items() if n >= min_count
        }
        stats = ParallelPassStats(
            k=k,
            num_candidates=len(candidates),
            num_frequent=len(frequent_k),
            grid=(1, num_processors),
            tree_partitions=len(chunks),
            candidate_imbalance=0.0,
            subset_stats=subset_total,
        )
        return frequent_k, stats
