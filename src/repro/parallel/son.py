"""SON/partition two-phase candidate generation (phase 1 of ``--two-phase``).

Savasere, Omiecinski & Navathe's partition algorithm — the formulation
the distributed-Apriori literature converges on — bounds a pass's
candidate memory by splitting the work in two:

* **Phase 1** mines each database partition *locally* at a support
  threshold scaled to the partition's size
  (:func:`~repro.core.apriori.min_support_count` over the partition's
  transaction count).  Any itemset that is globally frequent must be
  locally frequent in at least one partition — if it missed every local
  threshold, its global count would sum to strictly less than
  ``s * N`` — so the union of the local frequent sets is a **superset**
  of every global F_k.
* **Phase 2** counts that superset exactly, partition by partition,
  with the ordinary counting kernels, and filters at the global
  threshold.  The result is bit-identical to single-phase Apriori; what
  changed is that no pass ever materializes ``generate_candidates``'s
  full C_k — only the (typically far smaller) locally-frequent union.

This module is the phase-1 kernel: pure functions over a packed store
and ``(lo, hi)`` transaction ranges, called by the native pool's
workers (each worker mines its own holdings — one partition per
worker), by the coordinator's in-process fallback rung, and directly by
tests.  Phase 2 *is* the existing pool pass machinery; see
``NativeCountDistribution(two_phase=True)`` in
:mod:`repro.parallel.native`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.apriori import min_support_count
from ..core.candidates import generate_candidates
from ..core.items import Itemset
from ..core.kernels import count_packed_into, make_counter

__all__ = ["merge_candidates", "mine_blocks", "superset_size"]


def mine_blocks(
    packed,
    blocks: Sequence[Tuple[int, int]],
    min_support: float,
    *,
    kernel: str = "fast",
    branching: int = 64,
    leaf_capacity: int = 16,
    max_k: Optional[int] = None,
    cache=None,
) -> Dict[int, List[Itemset]]:
    """Mine one partition (a set of packed ranges) at local support.

    The ``blocks`` — ``(lo, hi)`` transaction ranges into ``packed`` —
    are treated as **one** partition: the local threshold is
    ``min_support_count(min_support, total_transactions)`` over their
    combined size.  (A holder whose ranges were split by a block budget
    still forms a single SON partition; splitting it further would only
    inflate the superset.)

    Returns ``{k: sorted local frequent k-itemsets}`` for ``k >= 2`` —
    pass 1 is counted globally (and exactly) by the coordinator's
    serial scan, so locally-frequent 1-sets never leave the partition.

    ``cache`` is the holder's cross-pass bitmap cache; the bitmap
    kernels (``vertical`` / ``fast-np``) reuse the same per-range
    bitmaps phase 2 will intersect, so phase 1 warms exactly the state
    phase 2 needs.
    """
    total = sum(hi - lo for lo, hi in blocks)
    if total == 0:
        return {}
    local_count = min_support_count(min_support, total)

    item_counts: Counter = Counter()
    for lo, hi in blocks:
        for transaction in packed.slices(lo, hi):
            item_counts.update(transaction)
    frequent_prev: List[Itemset] = sorted(
        (item,)
        for item, count in item_counts.items()
        if count >= local_count
    )

    local: Dict[int, List[Itemset]] = {}
    k = 2
    while frequent_prev and (max_k is None or k <= max_k):
        candidates = generate_candidates(frequent_prev)
        if not candidates:
            break
        counter = make_counter(
            k,
            candidates,
            kernel=kernel,
            branching=branching,
            leaf_capacity=leaf_capacity,
        )
        if cache is not None and kernel in ("vertical", "fast-np"):
            counter.use_cache(cache)
        for lo, hi in blocks:
            count_packed_into(counter, packed, lo, hi)
        counts = counter.counts()
        frequent_k = sorted(
            c for c in candidates if counts[c] >= local_count
        )
        if not frequent_k:
            break
        local[k] = frequent_k
        frequent_prev = frequent_k
        k += 1
    return local


def merge_candidates(
    parts: Iterable[Dict[int, List[Itemset]]],
) -> Dict[int, List[Itemset]]:
    """Union per-partition local frequent sets into the global superset.

    Accepts the dicts :func:`mine_blocks` returns — including ones that
    round-tripped through a pipe or a JSON checkpoint record, where
    keys may have become strings and itemsets lists — and produces
    canonical ``{k: sorted tuple itemsets}``.
    """
    merged: Dict[int, set] = {}
    for part in parts:
        for k, itemsets in part.items():
            merged.setdefault(int(k), set()).update(
                tuple(itemset) for itemset in itemsets
            )
    return {k: sorted(merged[k]) for k in sorted(merged)}


def superset_size(candidates_by_k: Dict[int, List[Itemset]]) -> int:
    """Total candidates across all pass sizes (the phase-1 yield)."""
    return sum(len(itemsets) for itemsets in candidates_by_k.values())
