"""Hash Partitioned Apriori (HPA) — Section III-E's related formulation.

Shintani & Kitsuregawa's HPA (the paper's reference [11]) partitions the
candidate set by a *hash of the whole candidate*, not by first item.  In
pass k each processor enumerates, for every local transaction of I
items, all C = (I choose k) potential candidates, hashes each one to its
owning processor, and ships it there; the owner checks the received
potential candidates against its locally stored candidate hash table.

The paper's qualitative comparison, which this implementation lets the
experiments verify quantitatively:

* like IDD, HPA eliminates DD's redundant computation (each candidate
  is checked on exactly one processor);
* the hash placement cannot guarantee equal candidate counts per
  processor ("this may make it difficult to ensure that each processor
  receives equal number of candidates");
* the communication volume is O((I choose k)) *per transaction* — far
  larger than IDD's O(I) transaction shipping for k > 2, though
  possibly smaller for k = 2.

Because HPA checks membership against a flat hash table rather than
walking a hash tree, the work counters here count generated potential
candidates and table probes; the probes are priced at ``t_check``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from ..cluster.cluster import VirtualCluster
from ..cluster.collectives import all_to_all_personalized_time
from ..core.hashtree import HashTreeStats
from ..core.items import Itemset
from ..core.transaction import TransactionDB
from .base import ParallelMiner, ParallelPassStats

__all__ = ["HashPartitionedApriori", "hpa_owner"]


def hpa_owner(candidate: Itemset, num_processors: int) -> int:
    """The processor owning ``candidate`` under HPA's hash placement.

    A deterministic boost-style hash combine over the candidate's items;
    an explicit hash (rather than Python's builtin) keeps the placement
    reproducible across runs and mixes the low bits well, so ``mod P``
    spreads structured candidates (e.g. consecutive pairs) evenly.
    """
    value = 0x9E3779B9
    for item in candidate:
        value ^= (
            item + 0x9E3779B9 + ((value << 6) & 0xFFFFFFFF) + (value >> 2)
        )
        value &= 0xFFFFFFFF
    return value % num_processors


class HashPartitionedApriori(ParallelMiner):
    """The HPA parallel formulation (implemented as a comparison baseline)."""

    name = "HPA"

    def _run_pass(
        self,
        cluster: VirtualCluster,
        k: int,
        candidates: Sequence[Itemset],
        local_parts: Sequence[TransactionDB],
        min_count: int,
    ) -> Tuple[Dict[Itemset, int], ParallelPassStats]:
        spec = self.machine
        num_processors = self.num_processors

        # Hash-partition the candidate set; each owner stores its share
        # in a flat hash table (HPA does not use the candidate hash tree).
        owned: List[Dict[Itemset, int]] = [
            {} for _ in range(num_processors)
        ]
        for candidate in candidates:
            owned[hpa_owner(candidate, num_processors)][candidate] = 0
        for pid in range(num_processors):
            cluster.advance(
                pid, len(owned[pid]) * spec.t_insert, "tree_build"
            )
            if self.charge_io:
                cluster.charge_io(
                    pid, local_parts[pid].size_in_bytes(spec.bytes_per_item)
                )

        # Each processor enumerates potential candidates from its local
        # transactions and routes them to their owners.  The enumeration
        # and the membership probes are both executed for real.
        subset_total = HashTreeStats()
        outgoing_bytes = [0.0] * num_processors
        for pid, part in enumerate(local_parts):
            generated = 0
            probes_by_owner = [0] * num_processors
            for transaction in part:
                if len(transaction) < k:
                    continue
                for potential in combinations(transaction, k):
                    generated += 1
                    owner = hpa_owner(potential, num_processors)
                    probes_by_owner[owner] += 1
                    table = owned[owner]
                    if potential in table:
                        table[potential] += 1
            # Generation cost is local; probe cost lands on the owner.
            cluster.advance(pid, generated * spec.t_travers, "subset")
            for owner, probes in enumerate(probes_by_owner):
                cluster.advance(owner, probes * spec.t_check, "subset")
            remote = generated - probes_by_owner[pid]
            outgoing_bytes[pid] = remote * k * spec.bytes_per_item
            subset_total = subset_total.merged_with(
                HashTreeStats(
                    transactions_processed=len(part),
                    hash_steps=generated,
                    candidates_checked=generated,
                )
            )

        # All-to-all personalized exchange of the routed potential
        # candidates (the communication volume the paper warns about).
        mean_pair_bytes = sum(outgoing_bytes) / max(
            1, num_processors * max(1, num_processors - 1)
        )
        comm = all_to_all_personalized_time(
            num_processors, mean_pair_bytes, spec
        )
        for pid in range(num_processors):
            cluster.advance(pid, comm, "comm")
        cluster.synchronize()

        frequent_k: Dict[Itemset, int] = {}
        for table in owned:
            frequent_k.update(
                {c: n for c, n in table.items() if n >= min_count}
            )

        frequent_bytes = self._frequent_set_bytes(len(frequent_k), k) / max(
            1, num_processors
        )
        cluster.all_to_all_broadcast(frequent_bytes)

        loads = [len(table) for table in owned]
        mean_load = sum(loads) / num_processors
        imbalance = (max(loads) / mean_load - 1.0) if mean_load else 0.0
        stats = ParallelPassStats(
            k=k,
            num_candidates=len(candidates),
            num_frequent=len(frequent_k),
            grid=(num_processors, 1),
            candidate_imbalance=imbalance,
            subset_stats=subset_total,
        )
        return frequent_k, stats

    def communication_bytes_per_pass(
        self, db: TransactionDB, k: int
    ) -> float:
        """Model HPA's routed-candidate volume for one pass (no mining).

        Used by the communication-volume comparison experiment: the
        expected wire bytes are (P-1)/P of all generated potential
        candidates at k items each.
        """
        total = 0
        for transaction in db:
            if len(transaction) >= k:
                n = len(transaction)
                binomial = 1
                for offset in range(k):
                    binomial = binomial * (n - offset) // (offset + 1)
                total += binomial
        remote_fraction = (self.num_processors - 1) / max(
            1, self.num_processors
        )
        return total * remote_fraction * k * self.machine.bytes_per_item
