"""Hybrid Distribution (HD) — the paper's second contribution
(Section III-D, Figure 9, Table II).

The P processors are viewed as a G x (P/G) grid:

* the candidate set is partitioned (IDD-style, by first item with bin
  packing) among the **G rows** — processors in a row hold identical
  candidates;
* the transactions are partitioned among all P processors; each of the
  **P/G columns** acts as one "hypothetical processor" of a CD run.

A pass is then: (1) IDD inside every column — the column's G blocks
shift around a G-ring while each processor counts its row's candidates
under its row's bitmap; (2) an all-reduce along each *row* sums the
counts of that row's candidates across columns; (3) each processor
filters its row's frequent item-sets, and an all-to-all broadcast along
each *column* reassembles the full Fk everywhere.

G is chosen dynamically per pass: the smallest divisor of P with
G >= ceil(M / m) for the user threshold ``m`` — G = 1 degenerates to CD
(all candidates everywhere, no shifting), G = P degenerates to IDD.
Table II shows exactly this schedule for P = 64, m = 50K.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.cluster import VirtualCluster
from ..cluster.machine import subset_time
from ..core.hashtree import HashTreeStats
from ..core.items import Itemset
from ..core.partition import partition_by_first_item
from ..core.transaction import TransactionDB
from .base import ParallelMiner, ParallelPassStats

__all__ = ["HybridDistribution", "choose_grid"]


def choose_grid(
    num_candidates: int, threshold: int, num_processors: int
) -> int:
    """Pick G, the number of candidate partitions (grid rows), for a pass.

    Section III-D: "If the total number of candidates M is less than m,
    then the HD algorithm makes G equal to 1 ... Otherwise G is set to
    ceil(M/m)", rounded up to a divisor of P and clamped to P so the
    grid tiles the machine exactly (Table II's configurations are all
    divisor pairs of 64).

    Args:
        num_candidates: M for the pass.
        threshold: m, the minimum candidate count worth a processor group.
        num_processors: P.

    Returns:
        G, a divisor of ``num_processors`` in [1, P].
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if num_processors < 1:
        raise ValueError(
            f"num_processors must be >= 1, got {num_processors}"
        )
    if num_candidates <= threshold:
        return 1
    target = -(-num_candidates // threshold)  # ceil division
    for g in range(1, num_processors + 1):
        if num_processors % g == 0 and g >= target:
            return g
    return num_processors


class HybridDistribution(ParallelMiner):
    """The HD parallel formulation.

    Args:
        switch_threshold: the paper's ``m`` — minimum number of
            candidates that justifies splitting the candidate set one
            more way.  The paper uses m = 50K at full scale; scaled-down
            experiments use proportionally smaller values.
        refine_threshold: second-item refinement for the row partitioner
            (as in IDD).
        **kwargs: see :class:`ParallelMiner`.
    """

    name = "HD"

    def __init__(
        self,
        *args,
        switch_threshold: int = 50_000,
        refine_threshold: Optional[int] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if switch_threshold <= 0:
            raise ValueError(
                f"switch_threshold must be positive, got {switch_threshold}"
            )
        self.switch_threshold = switch_threshold
        self.refine_threshold = refine_threshold

    def _run_pass(
        self,
        cluster: VirtualCluster,
        k: int,
        candidates: Sequence[Itemset],
        local_parts: Sequence[TransactionDB],
        min_count: int,
    ) -> Tuple[Dict[Itemset, int], ParallelPassStats]:
        spec = self.machine
        num_processors = self.num_processors

        rows = choose_grid(
            len(candidates), self.switch_threshold, num_processors
        )
        cols = num_processors // rows
        # Processor (r, c) is pid = r * cols + c; column c therefore owns
        # blocks {r * cols + c : r in rows}, i.e. N/P transactions per
        # processor as the paper prescribes.

        partition = partition_by_first_item(
            candidates, rows, refine_threshold=self.refine_threshold
        )
        assert partition.filters is not None

        # One physical tree per row stands in for that row's `cols`
        # replicas; after all columns stream their blocks through it, its
        # counts equal the row's post-reduction global counts.
        row_trees: List = []
        for row, owned in enumerate(partition.assignments):
            tree = self.build_tree(k, owned)
            build_time = len(owned) * spec.t_insert
            for col in range(cols):
                cluster.advance(row * cols + col, build_time, "tree_build")
            row_trees.append(tree)

        if self.charge_io:
            for pid, part in enumerate(local_parts):
                cluster.charge_io(pid, part.size_in_bytes(spec.bytes_per_item))

        block_bytes = self._mean_block_bytes(local_parts)
        subset_total = HashTreeStats()

        # Step 1: IDD within every column (G-step ring shift of the
        # column's blocks).  With G = 1 the single row owns every
        # candidate and the pass degenerates to CD exactly, bitmap
        # included (the paper: "G equal to 1 ... means that the CD
        # algorithm is run on all the processors").
        for col in range(cols):
            column_pids = [row * cols + col for row in range(rows)]
            for step in range(rows):
                compute: Dict[int, float] = {}
                for row in range(rows):
                    pid = column_pids[row]
                    source_row = (row - step) % rows
                    block = local_parts[column_pids[source_row]]
                    tree = row_trees[row]
                    root_filter = partition.filters[row] if rows > 1 else None
                    before = tree.stats.snapshot()
                    tree.count_database(block, root_filter=root_filter)
                    delta = tree.stats.delta_since(before)
                    compute[pid] = subset_time(delta, spec)
                    subset_total = subset_total.merged_with(delta)
                moves_data = step < rows - 1
                cluster.overlapped_step(
                    compute, block_bytes if moves_data else 0.0
                )

        # Step 2: reduction along the rows (cols processors per group).
        for row in range(rows):
            row_pids = [row * cols + col for col in range(cols)]
            row_candidates = len(partition.assignments[row])
            cluster.all_reduce(
                row_candidates * spec.bytes_per_count,
                pids=row_pids,
                combine_ops=row_candidates,
            )

        # Step 3: frequent filtering per row, then all-to-all broadcast
        # along the columns so every processor holds the full Fk.
        frequent_k: Dict[Itemset, int] = {}
        for tree in row_trees:
            frequent_k.update(tree.frequent(min_count))

        frequent_bytes = self._frequent_set_bytes(len(frequent_k), k) / max(
            1, rows
        )
        for col in range(cols):
            column_pids = [row * cols + col for row in range(rows)]
            cluster.all_to_all_broadcast(frequent_bytes, pids=column_pids)

        stats = ParallelPassStats(
            k=k,
            num_candidates=len(candidates),
            num_frequent=len(frequent_k),
            grid=(rows, cols),
            candidate_imbalance=partition.load_imbalance(),
            subset_stats=subset_total,
        )
        return frequent_k, stats
