"""Uniform entry point over the parallel formulations.

``mine_parallel`` builds the requested miner by name; ``compare_with_serial``
asserts the paper's baseline invariant — every parallel formulation
computes *exactly* the frequent item-sets (with identical counts) of the
serial Apriori algorithm — and is called by tests and by every
experiment before timings are trusted.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..core.apriori import Apriori, AprioriResult
from ..core.transaction import TransactionDB
from .base import MiningResult, ParallelMiner
from .count_distribution import CountDistribution
from .data_distribution import DataDistribution
from .hpa import HashPartitionedApriori
from .hybrid import HybridDistribution
from .intelligent_dd import IntelligentDataDistribution
from .native import NativeCountDistribution
from .native_idd import (
    NativeHybridDistribution,
    NativeIntelligentDistribution,
)

__all__ = [
    "ALGORITHMS",
    "NATIVE_ALGORITHMS",
    "make_miner",
    "mine_parallel",
    "compare_with_serial",
]


def _make_dd_comm(*args, **kwargs) -> DataDistribution:
    return DataDistribution(*args, comm_scheme="ring", **kwargs)


def _native_factory(cls) -> Callable[..., ParallelMiner]:
    """Adapter for the real-multiprocessing backends.

    They run on actual OS processes, so the simulated ``machine`` cost
    model does not apply and is accepted only for signature
    compatibility with the other formulations.
    """

    def make(
        min_support: float, num_processors: int, machine=None, **kwargs
    ) -> ParallelMiner:
        return cls(min_support, num_processors, **kwargs)

    return make


_make_native_cd = _native_factory(NativeCountDistribution)

#: The three real-multiprocessing modes (``machine`` is ignored and the
#: result carries no simulated timings).  ``"native"`` is the
#: back-compat alias for ``"native-cd"``.
NATIVE_ALGORITHMS: Dict[str, Callable[..., ParallelMiner]] = {
    "native-cd": _make_native_cd,
    "native-idd": _native_factory(NativeIntelligentDistribution),
    "native-hd": _native_factory(NativeHybridDistribution),
    "native": _make_native_cd,
}

ALGORITHMS: Dict[str, Callable[..., ParallelMiner]] = {
    "CD": CountDistribution,
    "DD": DataDistribution,
    "DD+comm": _make_dd_comm,
    "IDD": IntelligentDataDistribution,
    "HD": HybridDistribution,
    "HPA": HashPartitionedApriori,
    **NATIVE_ALGORITHMS,
}


def make_miner(
    algorithm: str,
    min_support: float,
    num_processors: int,
    machine: MachineSpec = CRAY_T3E,
    kernel: Optional[str] = None,
    **kwargs,
) -> ParallelMiner:
    """Instantiate a parallel miner by algorithm name.

    Args:
        algorithm: one of ``CD``, ``DD``, ``DD+comm``, ``IDD``, ``HD``,
            ``HPA`` (simulated) or ``native-cd`` / ``native-idd`` /
            ``native-hd`` (real multiprocessing; ``machine`` is ignored
            and the result carries no simulated timings).  ``native``
            is a back-compat alias for ``native-cd``.
        min_support: fractional minimum support.
        num_processors: P.
        machine: cost model.
        kernel: counting kernel for the formulation's hash trees —
            ``"reference"`` (instrumented object tree, the formulation
            default) or ``"fast"`` (flat-array tree in instrumented
            mode; bit-identical counters and simulated timings).
            Native formulations additionally accept ``"vertical"``
            (TID-bitmap intersections; bit-identical counts, no
            simulated timings to price, so the simulated formulations
            reject it).  ``None`` keeps the formulation's default.
        **kwargs: forwarded to the formulation's constructor (e.g.
            ``switch_threshold`` for HD, ``max_k``, ``charge_io``;
            ``data_plane`` — ``"pickle"``, ``"shared"`` or the
            out-of-core ``"mmap"`` — plus ``store_dir``,
            ``block_budget``, ``checkpoint_dir`` and ``resume`` for the
            native pool's transport and crash recovery).

    Raises:
        KeyError: for an unknown algorithm name.
    """
    try:
        factory = ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(
            f"unknown algorithm {algorithm!r}; expected one of: {known}"
        ) from None
    if kernel is not None:
        kwargs["kernel"] = kernel
    return factory(min_support, num_processors, machine=machine, **kwargs)


def mine_parallel(
    algorithm: str,
    db: TransactionDB,
    min_support: float,
    num_processors: int,
    machine: MachineSpec = CRAY_T3E,
    **kwargs,
) -> MiningResult:
    """One-shot: build a miner by name and run it on ``db``."""
    miner = make_miner(
        algorithm, min_support, num_processors, machine=machine, **kwargs
    )
    return miner.mine(db)


def compare_with_serial(
    parallel_result: MiningResult,
    db: TransactionDB,
    serial_result: Optional[AprioriResult] = None,
) -> AprioriResult:
    """Check a parallel result against serial Apriori; return the serial run.

    Raises:
        AssertionError: if the frequent item-sets or any support count
            differ — which would mean a formulation bug, never a
            tolerable approximation.
    """
    if serial_result is None:
        serial = Apriori(
            parallel_result.min_support,
            max_k=_max_k_of(parallel_result),
        )
        serial_result = serial.mine(db)
    if parallel_result.frequent != serial_result.frequent:
        missing = set(serial_result.frequent) - set(parallel_result.frequent)
        extra = set(parallel_result.frequent) - set(serial_result.frequent)
        algorithm = getattr(parallel_result, "algorithm", "parallel run")
        raise AssertionError(
            f"{algorithm} diverged from serial Apriori: "
            f"{len(missing)} missing, {len(extra)} extra item-sets"
        )
    return serial_result


def _max_k_of(result: MiningResult) -> Optional[int]:
    """Infer the pass cap a parallel run used, for a fair serial rerun."""
    if not result.passes:
        return None
    last = result.passes[-1]
    # If the last pass still found frequent item-sets, the run may have
    # been capped; rerun serial with the same cap to compare like with
    # like.  A run that ended naturally needs no cap.
    return last.k if last.num_frequent > 0 else None
