"""Native multi-process IDD and HD (candidate-partitioned real parallelism).

:mod:`repro.parallel.native` runs Count Distribution on real OS
processes: every worker holds the *whole* candidate hash tree and counts
only its own transaction block.  This module is the candidate-partitioned
complement — the paper's Intelligent Data Distribution (Section III-C)
and Hybrid Distribution (Section III-D) running on the same persistent,
fault-tolerant worker pool:

* **Candidates are bin-packed by first item** with the exact partitioner
  the simulated IDD uses (:func:`repro.core.partition.partition_by_first_item`
  — greedy LPT over first-item groups), so each worker builds only its
  owned hash-tree shard and keeps a first-item bitmap for root-level
  pruning.  Per-worker candidate memory shrinks with the number of
  partitions — the paper's "single candidate set per node" argument.
* **Transaction blocks circulate through a shared-memory ring.**  On the
  shared data plane the database lives in one packed columnar store that
  every worker attaches by name; a "shift" is nothing but each worker
  reading its ring predecessor's ``(lo, hi)`` slice of the store for the
  next step.  No transaction bytes ever cross a pipe — the all-to-all
  communication of message-passing IDD degenerates to P extra zero-copy
  reads, which is the honest shared-memory realization of the paper's
  contention-free shift schedule.  The mmap plane is the same schedule
  over a read-only file mapping (:class:`~repro.core.mmapdb.MmapPackedDB`)
  instead of a ``/dev/shm`` segment — the out-of-core variant, optionally
  streamed in ``block_budget``-bounded bites.  The pickle plane ships the
  packed store into each worker once at spawn and the ring is walked over
  that private copy.
* **HD arranges the P workers in a G x (P/G) grid**: candidates are
  partitioned over the G rows (each row's shard replicated across its
  P/G columns), transactions over all P workers, and each worker's ring
  visits only its own column's blocks — summing the replies reduces the
  counts along rows, exactly the simulated HD's reduction.  ``G`` is
  chosen per pass by :func:`repro.parallel.hybrid.choose_grid`; IDD is
  the fixed G = P corner of the same machinery.

Fault tolerance follows the PR 3 recovery ladder, reshaped for
partitioned candidates.  A worker owns a *unit* — its candidate bin plus
its ring of blocks — and any rung recounts that unit from scratch:

1. **respawn** — a replacement re-attaches the store and walks the dead
   worker's ring itself (the ring is a schedule over shared slices, not
   a chain of live peers, so recovery never depends on the other
   workers);
2. **adopt** — a surviving worker counts the dead worker's unit as an
   extra job, replying with an inline vector;
3. **in-process** — the parent counts the unit from its own packed copy.

The pool is rebuilt *logically* every pass: the grid, bins and ring are
derived from the currently live workers, so after any death the next
pass automatically re-packs the candidate bins onto the survivors (the
fault log records a survivor lost mid-adoption as ``"repacked"`` — its
own counts for the pass were already collected, nothing is recounted).
With no survivors at all, mining continues fully in-process.  Results
are bit-identical to serial :class:`~repro.core.apriori.Apriori` under
every schedule and failure, on both data planes.

Per-pass :class:`~repro.parallel.native.PassOverhead` records fill the
IDD-specific categories CD leaves at zero: ``shift_s`` (the slowest
worker's ring time — the critical path), ``max_bin_candidates`` (largest
shard any worker built) and the ``prune_checked`` / ``prune_skipped``
bitmap-filter tallies behind :attr:`PassOverhead.prune_rate`.
"""

from __future__ import annotations

import os
import tempfile
import time
from array import array
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import fastnp
from ..core.apriori import AprioriResult, PassTrace, min_support_count
from ..core.bitmap import ItemBitmap
from ..core.candidates import generate_candidates
from ..core.items import Itemset
from ..core.kernels import count_packed_into, make_counter, validate_kernel
from ..core.packed import PackedDB, candidates_from_bytes
from ..core.partition import partition_by_first_item
from ..core.transaction import TransactionDB
from ..core.vertical import TidBitmapCache
from ..checkpoint import (
    CheckpointSession,
    checkpoint_meta,
    fire_coordinator_kill,
)
from ..faults import FaultEvent, FaultRecord, FaultSpec
from ..memprof import peak_rss_bytes
from .hybrid import choose_grid
from .native import (
    _KILLED_EXIT,
    PassOverhead,
    WorkerError,
    _attach_segment,
    _attach_store,
    _connection_wait,
    _even_bounds,
    _recv_command,
    _SharedSegments,
    serial_pass_one,
    validate_data_plane,
)

__all__ = [
    "NativeIntelligentDistribution",
    "NativeHybridDistribution",
    "NativePartitionedMiner",
]

NATIVE_MODES = ("idd", "hd")


class _TallyFilter:
    """A root filter that counts its own membership tests.

    Wraps the owned-first-items :class:`~repro.core.bitmap.ItemBitmap`
    so the worker can report how many root-level tests the kernels made
    (``checked``) and how many pruned the traversal (``skipped``) — the
    numbers behind :attr:`PassOverhead.prune_rate`.
    """

    __slots__ = ("_bitmap", "checked", "skipped")

    def __init__(self, bitmap: ItemBitmap):
        self._bitmap = bitmap
        self.checked = 0
        self.skipped = 0

    def __contains__(self, item: int) -> bool:
        self.checked += 1
        if item in self._bitmap:
            return True
        self.skipped += 1
        return False


def _count_shard(
    packed: PackedDB,
    candidates: Sequence[Itemset],
    owned_bits: int,
    ring: Sequence[Tuple[int, int]],
    k: int,
    kernel: str,
    branching: int,
    leaf_capacity: int,
    kill_after: Optional[int] = None,
    cache: Optional[TidBitmapCache] = None,
) -> Tuple[List[int], float, int, int, float, float]:
    """Count one worker's candidate shard over its ring of store slices.

    The shard is rebuilt from the full candidate list and the ownership
    bitmap (both sides select ``c[0] in bitmap`` over the same sorted
    list, so worker and coordinator agree on shard order without ever
    shipping the shard itself).  Returns ``(vector, shift_s, checked,
    skipped, build_s, intersect_s)`` — the counts in shard order, the
    total ring-walk seconds, the root-filter tallies, and the vertical
    kernel's TID-bitmap build/intersection seconds (zero under the tree
    kernels).

    ``cache`` is the holder's cross-pass bitmap cache
    (:class:`TidBitmapCache` or the fast-np kernel's
    :class:`~repro.core.fastnp.PackedBitmapCache`); the bitmap kernels
    key it on the ring's ``(lo, hi)`` slices, so after one full ring
    walk every store slice's bitmaps are warm for all later passes
    (until a shrunken pool re-derives the bounds).

    ``kill_after`` is the fault-injection hook: die (``os._exit``) after
    that many completed ring steps — a genuine mid-ring death, with the
    count vector never published anywhere.
    """
    bitmap = ItemBitmap.from_bits(owned_bits)
    owned = [c for c in candidates if c[0] in bitmap]
    if not owned:
        # An empty bin still honours an injected mid-ring kill so fault
        # schedules stay deterministic regardless of bin packing.
        if kill_after is not None:
            os._exit(_KILLED_EXIT)
        return [], 0.0, 0, 0, 0.0, 0.0
    tally = _TallyFilter(bitmap)
    counter = make_counter(
        k,
        owned,
        kernel=kernel,
        branching=branching,
        leaf_capacity=leaf_capacity,
        needs_root_filter=True,
    )
    if cache is not None and kernel in ("vertical", "fast-np"):
        counter.use_cache(cache)
    shift_s = 0.0
    steps = 0
    for lo, hi in ring:
        tick = time.perf_counter()
        count_packed_into(counter, packed, lo, hi, root_filter=tally)
        shift_s += time.perf_counter() - tick
        steps += 1
        if kill_after is not None and steps >= kill_after:
            os._exit(_KILLED_EXIT)
    counts = counter.counts()
    vector = [counts[c] for c in owned]
    return (
        vector, shift_s, tally.checked, tally.skipped,
        getattr(counter, "build_s", 0.0),
        getattr(counter, "intersect_s", 0.0),
    )


def _count_shard_plane(
    counter,
    packed: PackedDB,
    owned_bits: int,
    ring: Sequence[Tuple[int, int]],
    kill_after: Optional[int] = None,
) -> Tuple[List[int], float, int, int, float, float]:
    """Count one shard against the shared fast-np candidate plane.

    ``counter`` is a :class:`~repro.core.fastnp.FastNumpyCounter` decoded
    once from the shared candidate segment and holding *every* candidate
    for the pass; the shard is expressed as a boolean row mask
    (:meth:`first_item_mask` over the ownership bitmap) instead of a
    rebuilt sub-counter.  ``counts_for(mask)`` returns the masked counts
    in plane order, which — because both sides select first items from
    the same sorted candidate list — is exactly the coordinator's shard
    order.  The tally filter sees each *distinct* first item once (the
    mask is computed per item, not per traversal), so ``checked`` /
    ``skipped`` tally items rather than tree walks; prune_rate stays a
    faithful selectivity measure.
    """
    bitmap = ItemBitmap.from_bits(owned_bits)
    tally = _TallyFilter(bitmap)
    mask = counter.first_item_mask(tally)
    if not mask.any():
        if kill_after is not None:
            os._exit(_KILLED_EXIT)
        return [], 0.0, tally.checked, tally.skipped, 0.0, 0.0
    counter.reset_counts()
    b0, i0 = counter.build_s, counter.intersect_s
    shift_s = 0.0
    steps = 0
    for lo, hi in ring:
        tick = time.perf_counter()
        counter.count_packed(packed, lo, hi, root_filter=mask)
        shift_s += time.perf_counter() - tick
        steps += 1
        if kill_after is not None and steps >= kill_after:
            os._exit(_KILLED_EXIT)
    vector = counter.counts_for(mask)
    return (
        vector, shift_s, tally.checked, tally.skipped,
        counter.build_s - b0, counter.intersect_s - i0,
    )


def _worker_main(
    conn,
    plane: Tuple,
    branching: int,
    leaf_capacity: int,
    kernel: str,
    fault_events: Sequence[FaultEvent] = (),
) -> None:
    """Partitioned worker loop: build a shard, walk a ring, pass after pass.

    ``plane`` is ``("shared", store_ref, slot)`` — attach the packed
    store by reference (``("shm", name)`` segment or ``("mmap", path)``
    file mapping), write pass vectors into counts slot ``slot`` — or
    ``("pickle", packed_db, slot)`` — the store arrived once in the
    spawn arguments and vectors go back inline.

    Request frames (parent -> worker):

    * ``("pass", seq, k, payload)`` — count this worker's own unit;
    * ``("extra", seq, k, payload)`` — count a dead peer's unit on its
      behalf (recovery adoption); the reply always carries the vector
      inline, so it cannot collide with this worker's own count slot;
    * ``None`` — shut down.

    ``payload`` is ``(cand_name, num_candidates, counts_name,
    counts_capacity, owned_bits, ring)`` on the shared plane (candidates
    read from the shared binary frame) or ``(candidates, owned_bits,
    ring)`` on the pickle plane.  ``ring`` is the ordered ``(lo, hi)``
    schedule of store slices to walk.

    Replies echo the request ``seq``: ``("ok", seq, (body, shift_s,
    checked, skipped, build_s, intersect_s, attach_s, peak_rss))``
    where ``body`` is the number of counts written to the shared slot
    (shared-plane ``"pass"``) or the vector itself (everything else),
    ``build_s`` / ``intersect_s`` are the bitmap kernels' seconds (zero
    under the tree kernels), ``attach_s`` is the time spent attaching
    and decoding the shared candidate plane (zero on the pickle plane
    and on every cache hit) and ``peak_rss`` the worker's
    :func:`~repro.memprof.peak_rss_bytes` sample, or ``("error", seq,
    message)`` when counting raised.

    The loop owns one cross-pass bitmap cache (vertical or fast-np);
    since a ring schedule tiles the whole store, one bitmap-kernel pass
    warms every slice's bitmaps for all later passes.  Under fast-np on
    the shared plane it also keeps one decoded
    :class:`~repro.core.fastnp.FastNumpyCounter` per candidate segment
    (``plane_counters``): segment names are bound to one candidate set
    for the pool's lifetime, so a repeated name — a warm-pool re-mine —
    reuses the counter without re-attaching or re-decoding anything.
    Respawned replacements start cold and adopted units reuse whatever
    slices and planes the worker already built — no bitmap state needs
    recovering.
    """
    pending = list(fault_events)

    def take(kind: str, k: int) -> Optional[FaultEvent]:
        for index, event in enumerate(pending):
            if event.kind == kind and event.k == k:
                return pending.pop(index)
        return None

    shared = plane[0] == "shared"
    slot = plane[2]
    store_holder = None
    if shared:
        store_holder, packed = _attach_store(plane[1])
    else:
        packed = plane[1]
    counts_segment = None
    counts_name: Optional[str] = None
    if kernel == "vertical":
        cache = TidBitmapCache()
    elif kernel == "fast-np":
        cache = fastnp.make_cache()
    else:
        cache = None
    # Shared-plane candidate cache: segment name -> (pinned segment or
    # None, decoded FastNumpyCounter or None, decoded tuple list or
    # None).  A name is bound to one candidate set for the pool's
    # lifetime, so entries never go stale; the dict is bounded by the
    # number of distinct passes the pool ever serves.
    plane_counters: Dict[str, Tuple] = {}
    try:
        while True:
            message = _recv_command(conn)
            if message is None:
                break
            tag, seq, k, payload = message
            plane_counter = None
            attach_s = 0.0
            if shared:
                (
                    cand_name, _num, cnt_name, cnt_capacity,
                    owned_bits, ring,
                ) = payload
                tick = time.perf_counter()
                entry = plane_counters.get(cand_name)
                if entry is None:
                    cand_segment = _attach_segment(cand_name)
                    if kernel == "fast-np" and fastnp.HAVE_NUMPY:
                        # Decode straight off the shared buffer: the
                        # candidate matrix is a zero-copy view, so the
                        # segment stays pinned alongside the counter.
                        counter = fastnp.FastNumpyCounter.from_flat(
                            cand_segment.buf
                        )
                        counter.use_cache(cache)
                        entry = (cand_segment, counter, None)
                    else:
                        frame = bytes(cand_segment.buf)
                        cand_segment.close()
                        _, decoded = candidates_from_bytes(frame)
                        entry = (None, None, decoded)
                    plane_counters[cand_name] = entry
                attach_s = time.perf_counter() - tick
                plane_counter, candidates = entry[1], entry[2]
                if cnt_name != counts_name:
                    if counts_segment is not None:
                        counts_segment.close()
                    counts_segment = _attach_segment(cnt_name)
                    counts_name = cnt_name
            else:
                candidates, owned_bits, ring = payload
            kill = take("kill", k)
            if kill is not None and kill.when == "before":
                os._exit(_KILLED_EXIT)
            # A "mid" kill dies mid-ring: after roughly half the shift
            # steps, before any count is published.
            kill_after = max(1, len(ring) // 2) if kill is not None else None
            delay = take("delay", k)
            corrupt = take("corrupt", k)
            try:
                if take("error", k) is not None:
                    raise RuntimeError(f"injected worker error at pass {k}")
                if plane_counter is not None:
                    (
                        vector, shift_s, checked, skipped,
                        build_s, intersect_s,
                    ) = _count_shard_plane(
                        plane_counter, packed, owned_bits, ring, kill_after,
                    )
                else:
                    (
                        vector, shift_s, checked, skipped,
                        build_s, intersect_s,
                    ) = _count_shard(
                        packed, candidates, owned_bits, ring, k,
                        kernel, branching, leaf_capacity, kill_after, cache,
                    )
            except Exception as exc:  # surfaced, never swallowed
                conn.send(("error", seq, f"{type(exc).__name__}: {exc}"))
                continue
            if delay is not None:
                time.sleep(delay.delay)
            if corrupt is not None:
                vector = vector[:-1]
            if shared and tag == "pass":
                base = 8 * slot * cnt_capacity
                counts_segment.buf[base:base + 8 * len(vector)] = (
                    array("q", vector).tobytes()
                )
                body: object = len(vector)
            else:
                body = vector
            conn.send(
                ("ok", seq,
                 (body, shift_s, checked, skipped,
                  build_s, intersect_s, attach_s, peak_rss_bytes()))
            )
    except EOFError:
        pass
    finally:
        conn.close()
        # Release the store views before the segment objects are
        # finalized: SharedMemory.close() raises BufferError while
        # exported memoryviews (the PackedDB's buffers) are alive, and
        # interpreter-shutdown finalization order is not guaranteed to
        # free them first.  The bitmap cache pins the packed store too,
        # so it goes first; plane counters pin their candidate segments
        # the same way, so each counter is dropped before its segment
        # is closed.
        if cache is not None:
            cache.clear()
        while plane_counters:
            _name, entry = plane_counters.popitem()
            segment, counter = entry[0], entry[1]
            del entry, counter
            if segment is not None:
                try:
                    segment.close()
                except BufferError:  # a view outlived the counter
                    pass
        packed = None
        if counts_segment is not None:
            counts_segment.close()
        if store_holder is not None:
            try:
                store_holder.close()
            except BufferError:  # pragma: no cover - view still exported
                pass


@dataclass(frozen=True)
class _Unit:
    """One worker's assignment for one pass: a bin, a row, a ring.

    ``row`` indexes the candidate partition (grid row), ``bits`` is the
    owned-first-items bitmap as a raw integer (the wire form), and
    ``ring`` is the ordered ``(lo, hi)`` schedule of store slices the
    worker walks — its own block first, then each ring predecessor's.
    """

    row: int
    bits: int
    ring: Tuple[Tuple[int, int], ...]


class _Slot:
    """One pool slot: a worker process, its pipe, its fault events."""

    def __init__(self, process, conn, events):
        self.process = process
        self.conn = conn
        self.events: List[FaultEvent] = events


class _PartitionedPool:
    """Persistent fault-tolerant pool counting candidate-partitioned passes.

    Unlike the CD pool, workers hold no per-worker transaction state at
    all: every worker can reach the whole packed store (shared plane: by
    segment name; pickle plane: its spawn-time copy), and each pass
    hands it a fresh :class:`_Unit`.  That statelessness is what makes
    the recovery ladder simple — any worker, replacement, or the parent
    can recount any unit — and is why the next pass can re-pack bins
    over however many workers remain.
    """

    def __init__(
        self,
        context,
        num_workers: int,
        packed: PackedDB,
        num_transactions: int,
        branching: int,
        leaf_capacity: int,
        kernel: str,
        mode: str = "idd",
        switch_threshold: int = 50_000,
        refine_threshold: Optional[int] = None,
        data_plane: str = "shared",
        store_dir: Optional[str] = None,
        external_store=None,
        block_budget: Optional[int] = None,
        recv_timeout: float = 30.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        faults: Optional[FaultSpec] = None,
    ):
        self._context = context
        self._packed = packed
        self._num_transactions = num_transactions
        self._branching = branching
        self._leaf_capacity = leaf_capacity
        self._kernel = kernel
        self._mode = mode
        self._switch_threshold = switch_threshold
        self._refine_threshold = refine_threshold
        self._plane = validate_data_plane(data_plane)
        self._block_budget = block_budget
        self.recv_timeout = recv_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self._faults = faults or FaultSpec()
        self._refusals_left = self._faults.refusals()
        self._initial_refusals = self._refusals_left
        self._seq = 0
        self._slots: Dict[int, _Slot] = {}
        self._segments: Optional[_SharedSegments] = None
        # The parent's own cross-pass bitmap cache for the in-process
        # recovery rungs (bitmap kernels only).
        if kernel == "vertical":
            self._inprocess_cache = TidBitmapCache()
        elif kernel == "fast-np":
            self._inprocess_cache = fastnp.make_cache()
        else:
            self._inprocess_cache = None
        self.fault_log: List[FaultRecord] = []
        self.pass_overheads: List[PassOverhead] = []
        try:
            if self._plane != "pickle":
                mmap_dir = None
                if self._plane == "mmap" and external_store is None:
                    mmap_dir = (
                        store_dir
                        if store_dir is not None
                        else tempfile.gettempdir()
                    )
                self._segments = _SharedSegments(
                    packed,
                    num_workers,
                    store_dir=mmap_dir,
                    external_path=(
                        external_store if self._plane == "mmap" else None
                    ),
                )
            for wid in range(num_workers):
                events = self._faults.worker_events(wid)
                slot = self._spawn(wid, events, gated=False)
                if slot is None:  # pragma: no cover - spawn failed at startup
                    raise OSError(f"could not start worker {wid}")
                self._slots[wid] = slot
        except Exception:
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        """Live worker processes."""
        return len(self._slots)

    @property
    def refusals_consumed(self) -> int:
        """refuse-spawn budget already consumed — the checkpoint cursor."""
        return self._initial_refusals - self._refusals_left

    def segment_names(self) -> List[str]:
        """Names of currently live shared segments (empty on pickle)."""
        if self._segments is None:
            return []
        return list(self._segments._live)

    # ------------------------------------------------------------------
    # Pass planning
    # ------------------------------------------------------------------

    def _plan(
        self, candidates: Sequence[Itemset]
    ) -> Tuple[Dict[int, _Unit], List[List[int]], int]:
        """Derive this pass's grid, bins and rings from the live workers.

        Returns ``(units, owned_idx, rows)`` where ``units`` maps worker
        id to its :class:`_Unit`, ``owned_idx[row]`` lists the indices
        into ``candidates`` of row ``row``'s shard (the coordinator's
        scatter map for the reduce), and ``rows`` is G.  Recomputed
        every pass, so candidate bins automatically re-pack over
        whatever workers survived earlier passes.
        """
        wids = sorted(self._slots)
        p_live = len(wids)
        if self._mode == "idd":
            rows = p_live
        else:
            rows = choose_grid(
                len(candidates), self._switch_threshold, p_live
            )
        cols = p_live // rows
        partition = partition_by_first_item(
            candidates, rows, refine_threshold=self._refine_threshold
        )
        index = {candidate: i for i, candidate in enumerate(candidates)}
        owned_idx = [
            [index[candidate] for candidate in assignment]
            for assignment in partition.assignments
        ]
        bounds = _even_bounds(self._num_transactions, p_live)
        # Under a block budget every position's block becomes a chain of
        # bounded sub-ranges; the ring walks the same transactions in
        # the same order, just in budget-sized bites.
        blocks = [
            self._packed.block_bounds(self._block_budget, lo, hi)
            if self._block_budget is not None and hi > lo
            else [(lo, hi)]
            for lo, hi in bounds
        ]
        units: Dict[int, _Unit] = {}
        for position, wid in enumerate(wids):
            row, col = divmod(position, cols)
            # Shift step s reads the block of the worker s ring-places
            # up the same grid column; after G steps the column's blocks
            # have each been walked exactly once.
            ring = tuple(
                chunk
                for step in range(rows)
                for chunk in blocks[((row - step) % rows) * cols + col]
            )
            units[wid] = _Unit(
                row=row, bits=partition.filters[row].bits, ring=ring
            )
        return units, owned_idx, rows

    def _pass_common(
        self,
        k: int,
        candidates: Sequence[Itemset],
        overhead: Optional[PassOverhead] = None,
    ):
        """The plane-shaped part of the payload every worker shares.

        Publishing the candidate plane (or proving the existing segment
        is byte-identical and reusable) is the coordinator's once-per-
        pass serialization cost, recorded as ``cand_build_s``.
        """
        if self._plane == "pickle":
            return None
        tick = time.perf_counter()
        cand_name = self._segments.publish_candidates(k, candidates)
        counts_name, capacity = self._segments.ensure_counts(len(candidates))
        if overhead is not None:
            overhead.cand_build_s = time.perf_counter() - tick
        return (cand_name, len(candidates), counts_name, capacity)

    def _payload(self, common, candidates: Sequence[Itemset], unit: _Unit):
        if self._plane != "pickle":
            return common + (unit.bits, unit.ring)
        return (list(candidates), unit.bits, unit.ring)

    # ------------------------------------------------------------------
    # The pass fan-out
    # ------------------------------------------------------------------

    def count_pass(self, k: int, candidates: Sequence[Itemset]) -> List[int]:
        """Fan one partitioned pass out; return the reduced count vector.

        Summing each row's replicas implements HD's along-the-row count
        reduction; rows are disjoint, so the totals cover every
        candidate exactly once.  Failed workers are recovered before
        returning, so they also cover every transaction exactly once.
        """
        totals = [0] * len(candidates)
        overhead = PassOverhead(k=k, num_candidates=len(candidates))
        if not self._slots:
            # The whole pool is gone: degrade to in-process mining.
            tick = time.perf_counter()
            vector = self._count_all(k, candidates)
            for index, count in enumerate(vector):
                totals[index] += count
            overhead.reduce_s = time.perf_counter() - tick
            overhead.max_bin_candidates = len(candidates)
            overhead.peak_rss_bytes = peak_rss_bytes()
            self.pass_overheads.append(overhead)
            return totals
        units, owned_idx, _rows = self._plan(candidates)
        overhead.max_bin_candidates = max(
            (len(idx) for idx in owned_idx), default=0
        )
        failures: List[Tuple[int, str]] = []
        pending: Dict[object, Tuple[int, int]] = {}
        tick = time.perf_counter()
        common = self._pass_common(k, candidates, overhead)
        for wid, slot in list(self._slots.items()):
            seq = self._next_seq()
            try:
                slot.conn.send(
                    ("pass", seq, k, self._payload(common, candidates,
                                                   units[wid]))
                )
                pending[slot.conn] = (wid, seq)
            except (BrokenPipeError, OSError, ValueError):
                failures.append((wid, "died"))
        overhead.broadcast_s = time.perf_counter() - tick
        deadline = time.monotonic() + self.recv_timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            tick = time.perf_counter()
            ready = _connection_wait(list(pending), timeout=remaining)
            overhead.wait_s += time.perf_counter() - tick
            tick = time.perf_counter()
            for conn in ready:
                wid, seq = pending[conn]
                expected = len(owned_idx[units[wid].row])
                reply, failure = self._read_reply(
                    conn, wid, k, expected, seq,
                    inline=self._plane == "pickle",
                )
                if failure == "stale":
                    continue  # keep waiting for the current reply
                del pending[conn]
                if reply is None:
                    failures.append((wid, failure))
                    continue
                (
                    vector, shift_s, checked, skipped,
                    build_s, intersect_s, attach_s, peak_rss,
                ) = reply
                _scatter(totals, owned_idx[units[wid].row], vector)
                overhead.shift_s = max(overhead.shift_s, shift_s)
                overhead.prune_checked += checked
                overhead.prune_skipped += skipped
                overhead.bitmap_build_s = max(
                    overhead.bitmap_build_s, build_s
                )
                overhead.intersect_s = max(overhead.intersect_s, intersect_s)
                overhead.cand_attach_s = max(
                    overhead.cand_attach_s, attach_s
                )
                overhead.peak_rss_bytes = max(
                    overhead.peak_rss_bytes, peak_rss
                )
            overhead.reduce_s += time.perf_counter() - tick
        for wid, _seq in pending.values():
            failures.append((wid, "timeout"))
        # Same-pass failures must not adopt each other's units (a dead
        # one would crash the ask; a slow one would race its recovery).
        unrecovered = [wid for wid, _ in failures]
        for wid, failure in failures:
            unrecovered.remove(wid)
            unit = units[wid]
            vector = self._recover(
                wid, k, candidates, common, unit,
                len(owned_idx[unit.row]), failure,
                exclude=frozenset(unrecovered),
            )
            _scatter(totals, owned_idx[unit.row], vector)
        overhead.peak_rss_bytes = max(
            overhead.peak_rss_bytes, peak_rss_bytes()
        )
        self.pass_overheads.append(overhead)
        return totals

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _read_reply(
        self, conn, wid: int, k: int, expected: int, seq: int, inline: bool
    ) -> Tuple[
        Optional[
            Tuple[List[int], float, int, int, float, float, float, int]
        ],
        str,
    ]:
        """Read one reply frame; ``(reply, "")`` or ``(None, failure)``.

        ``inline`` selects where the vector lives: in the frame itself
        (pickle plane, and every adoption reply) or in the worker's
        shared count slot, where the frame carries only the write
        length.  A mismatched length is ``"corrupt"`` either way; a
        mismatched sequence number is a ``"stale"`` reply to an earlier
        request and is discarded by the caller.
        """
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            return None, "died"
        if not (isinstance(frame, tuple) and len(frame) == 3):
            return None, "corrupt"
        tag, frame_seq, payload = frame
        if frame_seq != seq:
            return None, "stale"
        if tag == "error":
            raise WorkerError(f"worker {wid} failed at pass {k}: {payload}")
        if tag != "ok":
            return None, "corrupt"
        if not (isinstance(payload, tuple) and len(payload) == 8):
            return None, "corrupt"
        (
            body, shift_s, checked, skipped,
            build_s, intersect_s, attach_s, peak_rss,
        ) = payload
        if inline:
            if not isinstance(body, list) or len(body) != expected:
                return None, "corrupt"
            vector = body
        else:
            if body != expected:
                return None, "corrupt"
            vector = self._segments.read_counts(wid, expected)
        return (
            vector, shift_s, checked, skipped,
            build_s, intersect_s, attach_s, int(peak_rss),
        ), ""

    # ------------------------------------------------------------------
    # Recovery ladder
    # ------------------------------------------------------------------

    def _recover(
        self,
        wid: int,
        k: int,
        candidates: Sequence[Itemset],
        common,
        unit: _Unit,
        expected: int,
        failure: str,
        exclude: frozenset = frozenset(),
    ) -> List[int]:
        """Recount a failed worker's unit; shrink the pool for future passes.

        Ladder: respawn (bounded retries, exponential backoff) ->
        adoption by a survivor -> in-process counting.  Because a unit
        is a schedule over shared store slices rather than private
        state, every rung recounts it from scratch without touching any
        other worker — and whichever rung ends with a smaller pool, the
        next pass's :meth:`_plan` re-packs the candidate bins over the
        survivors.
        """
        slot = self._slots.pop(wid, None)
        if slot is None:  # pragma: no cover - defensive; _recover runs
            # at most once per wid and excluded same-pass failures are
            # never asked to adopt, so the slot is always present.
            return [0] * expected
        # A replacement must not replay the failure that killed its
        # predecessor; it inherits only events for *future* passes.
        future_events = [e for e in slot.events if e.k > k]
        self._discard(slot)
        payload = self._payload(common, candidates, unit)

        attempts = 0
        for attempt in range(self.max_retries + 1):
            if attempt > 0:
                time.sleep(self.backoff_base * (2 ** (attempt - 1)))
            attempts += 1
            replacement = self._spawn(wid, future_events, gated=True)
            if replacement is None:
                continue
            reply = self._ask(
                replacement, ("pass", k, payload), wid, k, expected,
                inline=self._plane == "pickle",
            )
            if reply is not None:
                self._slots[wid] = replacement
                self.fault_log.append(
                    FaultRecord(k, wid, failure, "respawned", attempts)
                )
                return reply[0]
            self._discard(replacement)

        for survivor_id in list(self._slots):
            if survivor_id in exclude:
                continue
            survivor = self._slots[survivor_id]
            reply = self._ask(
                survivor, ("extra", k, payload), survivor_id, k, expected,
                inline=True,
            )
            if reply is not None:
                self.fault_log.append(
                    FaultRecord(k, wid, failure, "adopted", attempts)
                )
                return reply[0]
            # The survivor died while adopting.  Its own counts for this
            # pass were already collected and its unit holds no private
            # state, so nothing is recounted — it is dropped and the
            # next pass re-packs the bins over the remaining workers.
            del self._slots[survivor_id]
            self._discard(survivor)
            self.fault_log.append(
                FaultRecord(k, survivor_id, "died", "repacked", 0)
            )

        self.fault_log.append(
            FaultRecord(k, wid, failure, "inprocess", attempts)
        )
        return self._count_unit(k, candidates, unit)

    def _ask(
        self, slot: _Slot, request, wid: int, k: int, expected: int,
        inline: bool,
    ) -> Optional[Tuple[List[int], float, int, int, float, float, float]]:
        """Send one request to one slot; poll-bounded reply or ``None``."""
        seq = self._next_seq()
        try:
            slot.conn.send((request[0], seq) + tuple(request[1:]))
        except (BrokenPipeError, OSError, ValueError):
            return None
        deadline = time.monotonic() + self.recv_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not slot.conn.poll(remaining):
                return None
            reply, failure = self._read_reply(
                slot.conn, wid, k, expected, seq, inline
            )
            if failure != "stale":
                return reply

    def _spawn(
        self, wid: int, events: List[FaultEvent], gated: bool
    ) -> Optional[_Slot]:
        """Start one worker process; ``None`` if spawning is refused/fails.

        ``wid`` doubles as the worker's count-region slot index on the
        shared plane, so a respawned replacement writes where its
        predecessor did.
        """
        if gated and self._refusals_left > 0:
            self._refusals_left -= 1
            return None
        if self._plane != "pickle":
            plane = ("shared", self._segments.store_ref, wid)
        else:
            plane = ("pickle", self._packed, wid)
        try:
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    plane,
                    self._branching,
                    self._leaf_capacity,
                    self._kernel,
                    events,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
        except OSError:
            return None
        return _Slot(process, parent_conn, events)

    # ------------------------------------------------------------------
    # In-process counting (degradation floor)
    # ------------------------------------------------------------------

    def _count_unit(
        self, k: int, candidates: Sequence[Itemset], unit: _Unit
    ) -> List[int]:
        """Count one unit in the parent — the ladder's bottom rung.

        The root filter is a pruning optimization, not a correctness
        requirement, so the floor skips it; counts are bit-identical.
        """
        bitmap = ItemBitmap.from_bits(unit.bits)
        owned = [c for c in candidates if c[0] in bitmap]
        if not owned:
            return []
        counter = make_counter(
            k, owned, kernel=self._kernel, branching=self._branching,
            leaf_capacity=self._leaf_capacity, needs_root_filter=True,
        )
        if (
            self._inprocess_cache is not None
            and self._kernel in ("vertical", "fast-np")
        ):
            counter.use_cache(self._inprocess_cache)
        for lo, hi in unit.ring:
            count_packed_into(counter, self._packed, lo, hi)
        counts = counter.counts()
        return [counts[c] for c in owned]

    def _count_all(self, k: int, candidates: Sequence[Itemset]) -> List[int]:
        """Count a whole pass in the parent (the pool fully collapsed)."""
        counter = make_counter(
            k, candidates, kernel=self._kernel, branching=self._branching,
            leaf_capacity=self._leaf_capacity,
        )
        if (
            self._inprocess_cache is not None
            and self._kernel in ("vertical", "fast-np")
        ):
            counter.use_cache(self._inprocess_cache)
        count_packed_into(counter, self._packed, 0, self._num_transactions)
        counts = counter.counts()
        return [counts[c] for c in candidates]

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _discard(self, slot: _Slot) -> None:
        """Close a slot's pipe and reap its process (terminate if needed)."""
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join(timeout=10)

    def shutdown(self) -> None:
        """Reap the workers, then unlink every shared segment exactly once."""
        try:
            for slot in self._slots.values():
                try:
                    slot.conn.send(None)
                except (OSError, ValueError, BrokenPipeError):
                    pass
                finally:
                    slot.conn.close()
            for slot in self._slots.values():
                slot.process.join(timeout=10)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join()
            self._slots = {}
        finally:
            if self._segments is not None:
                self._segments.close()

    def __enter__(self) -> "_PartitionedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _scatter(totals: List[int], indices: Sequence[int],
             vector: Sequence[int]) -> None:
    """Add a shard-order vector into the candidate-order totals."""
    for j, index in enumerate(indices):
        totals[index] += vector[j]


class NativePartitionedMiner:
    """Multi-process candidate-partitioned miner (IDD/HD common driver).

    Use the :class:`NativeIntelligentDistribution` (G = P) or
    :class:`NativeHybridDistribution` (G chosen per pass) subclass; the
    ``mode`` class attribute is the only difference.

    Args:
        min_support: fractional minimum support in (0, 1].
        num_workers: OS processes P (clamped to the transaction count so
            every worker owns a non-empty block).
        branching / leaf_capacity: hash tree geometry.
        max_k: optional pass cap.
        start_method: multiprocessing start method (``None`` = platform
            default).
        kernel: per-worker counting kernel, ``"fast"`` (default),
            ``"reference"``, ``"fast-np"`` (numpy-vectorized packed
            counting; on the shared plane workers decode the candidate
            plane once per segment and mask it with their ownership
            bitmaps) or ``"vertical"`` (TID-bitmap intersections; a
            ring walk warms every store slice's bitmaps for all later
            passes); all yield identical counts.
        data_plane: ``"shared"`` (default; ring shifts are zero-copy
            reads of the shared packed store), ``"mmap"`` (the store is
            written once to a file and every worker maps it read-only —
            the out-of-core plane) or ``"pickle"`` (the store ships into
            each worker once at spawn).
        store_dir: mmap plane only — directory the store file is
            written to (default: the system temp directory).
        block_budget: zero-copy planes only — split every ring block
            into sub-ranges of at most this many items, so each shift
            step streams the store in bounded bites (SON/partition
            style) instead of touching a whole block at once.
        switch_threshold: HD's ``m`` — minimum candidates worth one more
            grid row (ignored in IDD mode, where G is always P).
        refine_threshold: second-item refinement threshold for the bin
            packer (``None`` packs on first items only).
        recv_timeout / max_retries / backoff_base: recovery-ladder knobs,
            as in :class:`~repro.parallel.native.NativeCountDistribution`.
        faults: optional :class:`~repro.faults.FaultSpec` (or spec
            string) of injected failures, for chaos testing.
        checkpoint_dir: persist one durable checkpoint record per
            completed pass (see :mod:`repro.checkpoint`) so a
            coordinator killed mid-mine can be rerun with
            ``resume=True``.
        resume: pick up from ``checkpoint_dir``'s journal — journaled
            passes are folded into the result, mining continues at the
            first unjournaled pass, and the output is bit-identical to
            an uninterrupted run.  Requires ``checkpoint_dir``.

    After :meth:`mine`, :attr:`fault_log`, :attr:`last_pool_size` and
    :attr:`last_pass_overheads` mirror the CD miner's introspection
    surface (with the IDD-specific :class:`PassOverhead` fields filled).

    Used as a context manager, the miner keeps its pool (and the
    packed store) warm across :meth:`mine` calls exactly like
    :class:`~repro.parallel.native.NativeCountDistribution`: reuse
    requires the same ``db`` object, no injected faults, and a clean
    previous run; :attr:`last_pool_reused` reports what happened.
    """

    mode = "idd"

    def __init__(
        self,
        min_support: float,
        num_workers: int,
        branching: int = 64,
        leaf_capacity: int = 16,
        max_k: Optional[int] = None,
        start_method: Optional[str] = None,
        kernel: str = "fast",
        data_plane: str = "shared",
        store_dir: Optional[str] = None,
        block_budget: Optional[int] = None,
        switch_threshold: int = 50_000,
        refine_threshold: Optional[int] = None,
        recv_timeout: float = 30.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        faults: Optional[FaultSpec] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ):
        if self.mode not in NATIVE_MODES:
            known = ", ".join(repr(m) for m in NATIVE_MODES)
            raise ValueError(
                f"unknown mode {self.mode!r}; expected one of: {known}"
            )
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_k is not None and max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {max_k}")
        if switch_threshold <= 0:
            raise ValueError(
                f"switch_threshold must be positive, got {switch_threshold}"
            )
        if recv_timeout <= 0:
            raise ValueError(f"recv_timeout must be > 0, got {recv_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {backoff_base}")
        self.data_plane = validate_data_plane(data_plane)
        if block_budget is not None:
            if block_budget < 1:
                raise ValueError(
                    f"block_budget must be >= 1, got {block_budget}"
                )
            if self.data_plane == "pickle":
                raise ValueError(
                    "block_budget requires a zero-copy data plane "
                    "('shared' or 'mmap')"
                )
        if resume and checkpoint_dir is None:
            raise ValueError(
                "resume=True requires a checkpoint_dir to resume from"
            )
        self.min_support = min_support
        self.num_workers = num_workers
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.max_k = max_k
        self.start_method = start_method
        self.kernel = validate_kernel(kernel)
        self.store_dir = store_dir
        self.block_budget = block_budget
        self.switch_threshold = switch_threshold
        self.refine_threshold = refine_threshold
        self.recv_timeout = recv_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.faults = FaultSpec.of(faults)
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.fault_log: List[FaultRecord] = []
        self.last_pool_size = 0
        self.last_pass_overheads: List[PassOverhead] = []
        self.last_pool_reused = False
        self.last_resume_k = 0
        self._keep_pool = False
        self._pool: Optional[_PartitionedPool] = None
        self._pool_db: Optional[TransactionDB] = None
        # The fault schedule mine() actually runs under: the declared
        # spec, advanced past journaled passes on resume.
        self._active_faults = self.faults

    @property
    def num_processors(self) -> int:
        """Alias for ``num_workers`` (runner-facade compatibility)."""
        return self.num_workers

    def __enter__(self) -> "NativePartitionedMiner":
        self._keep_pool = True
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down a kept warm pool (no-op when none is live)."""
        self._keep_pool = False
        pool, self._pool, self._pool_db = self._pool, None, None
        if pool is not None:
            pool.shutdown()

    def _has_faults(self) -> bool:
        faults = self._active_faults
        return faults is not None and (
            len(faults) > 0 or faults.refusals() > 0
        )

    def _acquire_pool(self, db) -> _PartitionedPool:
        """Reuse the kept warm pool for ``db``, or build a fresh one.

        Reuse requires the same database object, no injected faults,
        and a clean previous run (no logged recoveries — every rung of
        the ladder logs one, so an empty log means the declared worker
        topology is intact).  Reuse also skips re-packing the store.
        """
        if (
            self._keep_pool
            and self._pool is not None
            and self._pool_db is db
            and not self._has_faults()
            and not self._pool.fault_log
        ):
            self.last_pool_reused = True
            self._pool.pass_overheads.clear()
            return self._pool
        self.last_pool_reused = False
        if self._pool is not None:
            self._pool.shutdown()
            self._pool, self._pool_db = None, None

        # Pack once; on the shared plane workers attach the store
        # segment, on the pickle plane each worker receives this copy at
        # spawn.  The parent keeps it either way for the in-process
        # recovery rung.  An already-packed db is used as-is, and an
        # attached store file on the mmap plane is mapped by the workers
        # directly (nothing copied, nothing unlinked at shutdown).
        external_store = None
        if isinstance(db, PackedDB):
            if self.data_plane == "pickle":
                raise ValueError(
                    "a packed store can only be mined on a zero-copy "
                    "data plane ('shared' or 'mmap'); the pickle plane "
                    "ships the store into workers by value"
                )
            packed = db
            from ..core.mmapdb import MmapPackedDB

            if (
                self.data_plane == "mmap"
                and isinstance(db, MmapPackedDB)
                and not db.closed
            ):
                external_store = db.path
        else:
            packed = db.to_packed()
        num_workers = max(1, min(self.num_workers, len(db)))
        context = (
            get_context(self.start_method)
            if self.start_method
            else get_context()
        )
        return _PartitionedPool(
            context,
            num_workers,
            packed,
            len(db),
            self.branching,
            self.leaf_capacity,
            self.kernel,
            mode=self.mode,
            switch_threshold=self.switch_threshold,
            refine_threshold=self.refine_threshold,
            data_plane=self.data_plane,
            store_dir=self.store_dir,
            external_store=external_store,
            block_budget=self.block_budget,
            recv_timeout=self.recv_timeout,
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            faults=self._active_faults,
        )

    def _release_pool(
        self, pool: _PartitionedPool, clean: bool, db: TransactionDB
    ) -> None:
        """Keep a clean pool warm (context-managed) or shut it down."""
        if (
            self._keep_pool
            and clean
            and not self._has_faults()
            and not pool.fault_log
        ):
            self._pool = pool
            self._pool_db = db
            return
        if pool is self._pool:
            self._pool, self._pool_db = None, None
        pool.shutdown()

    def mine(self, db) -> AprioriResult:
        """Mine ``db`` with candidate-partitioned worker processes.

        ``db`` is a :class:`~repro.core.transaction.TransactionDB` or —
        on the zero-copy planes — an already-packed
        :class:`~repro.core.packed.PackedDB` / attached
        :class:`~repro.core.mmapdb.MmapPackedDB` store file.
        """
        min_count = min_support_count(self.min_support, max(1, len(db)))
        result = AprioriResult(
            frequent={},
            min_support=self.min_support,
            min_count=min_count,
            num_transactions=len(db),
        )
        self.fault_log = []
        self.last_pool_size = 0
        self.last_pass_overheads = []
        self.last_resume_k = 0

        session, frequent_prev, next_k = self._open_checkpoint(
            f"native-{self.mode}", db, min_count, result
        )
        try:
            if next_k == 1:
                frequent_prev = serial_pass_one(db, min_count, result)
                if session is not None:
                    session.record(
                        1,
                        result.passes[-1].num_candidates,
                        {s: result.frequent[s] for s in frequent_prev},
                    )
                fire_coordinator_kill(self._active_faults, 1)
            if not frequent_prev:
                return result

            k = max(2, next_k)
            if self.max_k is not None and k > self.max_k:
                return result
            pool = self._acquire_pool(db)
            clean = False
            try:
                self.last_pool_size = pool.num_workers
                while frequent_prev and (
                    self.max_k is None or k <= self.max_k
                ):
                    candidates = generate_candidates(frequent_prev)
                    if not candidates:
                        break
                    totals = pool.count_pass(k, candidates)
                    frequent_k = {
                        candidates[i]: totals[i]
                        for i in range(len(candidates))
                        if totals[i] >= min_count
                    }
                    result.frequent.update(frequent_k)
                    result.passes.append(
                        PassTrace(
                            k=k,
                            num_candidates=len(candidates),
                            num_frequent=len(frequent_k),
                        )
                    )
                    if session is not None:
                        session.record(
                            k,
                            len(candidates),
                            frequent_k,
                            pool.refusals_consumed,
                        )
                    fire_coordinator_kill(self._active_faults, k)
                    frequent_prev = sorted(frequent_k)
                    k += 1
                self.fault_log = list(pool.fault_log)
                self.last_pass_overheads = list(pool.pass_overheads)
                clean = True
            finally:
                self._release_pool(pool, clean, db)
            return result
        finally:
            if session is not None:
                session.close()

    def _open_checkpoint(
        self, algorithm: str, db: TransactionDB, min_count: int, result
    ):
        """Set up the checkpoint session (if any) and the fault schedule.

        Same contract as the CD miner's ``_open_checkpoint``: returns
        ``(session, frequent_prev, next_k)``, with journaled passes
        already folded into ``result`` on resume and
        :attr:`_active_faults` advanced past them.
        """
        self._active_faults = self.faults
        if self.checkpoint_dir is None:
            return None, [], 1
        meta = checkpoint_meta(
            algorithm=algorithm,
            db=db,
            min_support=self.min_support,
            min_count=min_count,
            kernel=self.kernel,
            max_k=self.max_k,
        )
        session = CheckpointSession(self.checkpoint_dir, self.resume, meta)
        try:
            frequent_prev, next_k = session.start(result)
        except Exception:
            session.close()
            raise
        self.last_resume_k = next_k - 1
        if self.faults is not None and next_k > 1:
            self._active_faults = self.faults.advance(
                next_k - 1, session.prior_refusals
            )
        return session, frequent_prev, next_k


class NativeIntelligentDistribution(NativePartitionedMiner):
    """Native IDD: every worker owns a distinct candidate bin (G = P)."""

    mode = "idd"


class NativeHybridDistribution(NativePartitionedMiner):
    """Native HD: a G x (P/G) grid, with G chosen per pass.

    ``choose_grid`` degenerates to G = 1 (pure CD behaviour: one bin,
    every worker holds it) for small candidate sets and to G = P (pure
    IDD) for huge ones, so HD interpolates between the two native
    formulations exactly as the simulated HD does between theirs.
    """

    mode = "hd"
