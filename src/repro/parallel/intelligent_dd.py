"""Intelligent Data Distribution (IDD) — the paper's first contribution
(Section III-C, Figures 6-8).

IDD fixes DD's three inefficiencies:

1. **Communication** — the database circulates along a logical ring
   with non-blocking send/receive into switched SBuf/RBuf buffers
   (Figure 6), so each of the P-1 steps is a single contention-free
   neighbor exchange overlapped with computation.
2. **Idling** — with asynchronous communication and roughly equal step
   times, processors barely wait; residual imbalance shows up honestly
   as idle time at the per-step synchronization.
3. **Redundant work** — candidates are partitioned *by first item*
   using a bin-packing assignment, every processor keeps a bitmap of
   its first items, and the hash-tree root skips transaction items not
   in the bitmap.  Each transaction's root fan-out is thereby split
   across processors instead of replicated.

The bin-packing partitioner runs from the first-item histogram alone
(candidates are regenerated locally afterwards, as in the paper); an
optional second-item refinement handles first items too heavy to
balance.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..cluster.cluster import VirtualCluster
from ..cluster.machine import subset_time
from ..core.hashtree import HashTreeStats
from ..core.items import Itemset
from ..core.partition import (
    CandidatePartition,
    partition_by_first_item,
    partition_contiguous_first_items,
)
from ..core.transaction import TransactionDB
from .base import ParallelMiner, ParallelPassStats

__all__ = ["IntelligentDataDistribution"]


class IntelligentDataDistribution(ParallelMiner):
    """The IDD parallel formulation.

    Args:
        refine_threshold: optional second-item split threshold forwarded
            to the partitioner (Section III-C's fix for heavy first
            items); ``None`` packs whole first-item groups.
        use_bitmap: disable to ablate the root-level filter while keeping
            the intelligent partitioning (the tree then behaves like
            DD's on traversals, isolating the bitmap's contribution).
        partition_strategy: ``"bin_pack"`` (the paper's scheme) or
            ``"contiguous"`` — the naive equal-width first-item ranges
            Section III-C warns against; kept for the load-balance
            ablation.
        single_source: model the Section VI scenario where "all the data
            is coming from a database server or a single file system":
            processor 0 reads the entire database from its local source
            (I/O charged on processor 0 alone when ``charge_io`` is on)
            and injects it into the ring pipeline, instead of every
            processor scanning its own partition.
        **kwargs: see :class:`ParallelMiner`.
    """

    name = "IDD"

    def __init__(
        self,
        *args,
        refine_threshold: Optional[int] = None,
        use_bitmap: bool = True,
        partition_strategy: str = "bin_pack",
        single_source: bool = False,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if partition_strategy not in ("bin_pack", "contiguous"):
            raise ValueError(
                "partition_strategy must be 'bin_pack' or 'contiguous', "
                f"got {partition_strategy!r}"
            )
        self.refine_threshold = refine_threshold
        self.use_bitmap = use_bitmap
        self.partition_strategy = partition_strategy
        self.single_source = single_source

    def _run_pass(
        self,
        cluster: VirtualCluster,
        k: int,
        candidates: Sequence[Itemset],
        local_parts: Sequence[TransactionDB],
        min_count: int,
    ) -> Tuple[Dict[Itemset, int], ParallelPassStats]:
        spec = self.machine
        num_processors = self.num_processors

        partition = self._partition(candidates)
        assert partition.filters is not None

        trees = []
        for pid, owned in enumerate(partition.assignments):
            tree = self.build_tree(k, owned)
            cluster.advance(pid, len(owned) * spec.t_insert, "tree_build")
            if self.charge_io and not self.single_source:
                cluster.charge_io(
                    pid, local_parts[pid].size_in_bytes(spec.bytes_per_item)
                )
            trees.append(tree)
        if self.charge_io and self.single_source:
            # Section VI: one processor reads the whole database from the
            # single source and feeds the pipeline.
            total_bytes = sum(
                part.size_in_bytes(spec.bytes_per_item)
                for part in local_parts
            )
            cluster.charge_io(0, total_bytes)

        block_bytes = self._mean_block_bytes(local_parts)
        subset_total = HashTreeStats()

        # Ring pipeline: P-1 overlapped shift steps plus a final
        # communication-free step on the last received buffer.
        for step in range(num_processors):
            compute: Dict[int, float] = {}
            for pid in range(num_processors):
                block = local_parts[(pid - step) % num_processors]
                tree = trees[pid]
                root_filter = (
                    partition.filters[pid] if self.use_bitmap else None
                )
                before = tree.stats.snapshot()
                tree.count_database(block, root_filter=root_filter)
                delta = tree.stats.delta_since(before)
                compute[pid] = subset_time(delta, spec)
                subset_total = subset_total.merged_with(delta)
            moves_data = step < num_processors - 1
            cluster.overlapped_step(
                compute, block_bytes if moves_data else 0.0
            )

        frequent_k: Dict[Itemset, int] = {}
        for tree in trees:
            frequent_k.update(tree.frequent(min_count))

        frequent_bytes = self._frequent_set_bytes(
            len(frequent_k), k
        ) / max(1, num_processors)
        cluster.all_to_all_broadcast(frequent_bytes)

        stats = ParallelPassStats(
            k=k,
            num_candidates=len(candidates),
            num_frequent=len(frequent_k),
            grid=(num_processors, 1),
            candidate_imbalance=partition.load_imbalance(),
            subset_stats=subset_total,
        )
        return frequent_k, stats

    def _partition(self, candidates: Sequence[Itemset]) -> CandidatePartition:
        """Split candidates by first item using the configured strategy."""
        if self.partition_strategy == "contiguous":
            return partition_contiguous_first_items(
                candidates, self.num_processors
            )
        return partition_by_first_item(
            candidates,
            self.num_processors,
            refine_threshold=self.refine_threshold,
        )
