"""Native multi-process Count Distribution (real parallelism extension).

Everything else in :mod:`repro.parallel` runs on the *simulated* machine
so that 128-processor behaviour is measurable on a laptop.  This module
is the complement: an actual multi-core implementation of the CD
formulation using ``multiprocessing`` — CD is the one formulation whose
processes share nothing but a count reduction, so it maps cleanly onto
OS processes despite Python's GIL.

The workers form a **persistent pool**: one process per non-empty
transaction block, created once per
:meth:`NativeCountDistribution.mine` call.  Two data planes move the
bits (``data_plane=``):

* ``"shared"`` (default) — the zero-copy plane.  The coordinator packs
  the whole database once into a columnar
  :class:`~repro.core.packed.PackedDB` laid out in a
  ``multiprocessing.shared_memory`` segment; workers attach by name at
  spawn and count ``(offsets, items)`` slices in place, so no
  transaction is ever pickled (and a respawned or adopting worker
  re-attaches instead of being re-shipped its blocks).  Each pass's
  candidates are written once as a single binary frame into a shared
  candidate segment that every worker reads, and each worker writes its
  count vector into its own slot of a preallocated shared int64 region
  — the pipes carry only small control/ack frames, so per-pass
  communication is O(|C_k|) shared-memory traffic plus O(P) tiny
  messages, which is the paper's CD communication argument realized
  natively.
* ``"mmap"`` — the out-of-core plane.  Identical to ``"shared"`` except
  the packed store is written once to a *disk file* (under
  ``store_dir``) that every worker maps read-only via
  :class:`~repro.core.mmapdb.MmapPackedDB` — the OS page cache holds
  only the hot blocks, so the minable database is bounded by disk, not
  RAM.  Candidates and count slots stay in small shared-memory
  segments.  With ``block_budget`` set, each worker's holdings are
  split into sub-ranges of at most that many packed items
  (:meth:`~repro.core.packed.PackedDB.block_bounds`), so a pass streams
  the store block by block instead of touching a whole partition at
  once.
* ``"pickle"`` — the escape hatch: blocks are shipped into each worker
  once (fork inheritance or a one-shot pickle) and every pass exchanges
  pickled candidate lists and count vectors over the pipes, as in the
  original pool.

The pool is **fault tolerant** on either plane.  Receives are
poll-based with a per-pass deadline (no call ever blocks indefinitely);
a worker that times out, dies, or replies with a malformed vector is
declared failed, and its transaction blocks are recovered down a fixed
degradation ladder:

1. **respawn** — a fresh replacement process takes over the blocks, with
   bounded retries under exponential backoff;
2. **adopt** — if respawning fails (e.g. the OS refuses to fork), a
   surviving worker permanently adopts the blocks;
3. **in-process** — with no survivors the parent counts the blocks
   itself; when the whole pool collapses, mining continues fully
   in-process.

Every rung recounts the failed blocks from scratch (on the shared plane
straight from the shared store), so the mined result is bit-identical
to serial :class:`~repro.core.apriori.Apriori` no matter which failures
occur.  Two safeguards keep concurrent failures from
cross-contaminating: request/reply frames carry an echoed sequence
number (a slow worker's late reply to an old request is discarded, not
mistaken for the answer to a new one), and workers that failed in the
same pass are never asked to adopt each other's blocks — each gets its
own trip down the ladder.  Worker-side exceptions do *not* kill the
worker silently: they come back as a structured error frame and raise
:class:`WorkerError` in the parent — a deterministic application error
is surfaced, while process deaths (crash, OOM-kill, injected kill) are
recovered.

Shared segments are owned by the coordinator: workers only ever attach
(and deregister themselves from the resource tracker, since cleanup is
not theirs), and :class:`_SharedSegments` unlinks every segment exactly
once — on pool shutdown, on a failed pool start, and on the exception
path out of a pass — so no run leaks a segment whatever failures were
injected.

Failure handling is driven by — and tested through — the deterministic
fault-injection layer in :mod:`repro.faults`.

Worker failures are one half of the fault story; the other half —
coordinator death — is handled by the checkpoint layer
(:mod:`repro.checkpoint`): with ``checkpoint_dir`` set, every completed
pass is journaled durably, and ``resume=True`` picks a killed mine up
at the first unjournaled pass, bit-identical to an uninterrupted run.
Workers watch the parent-death sentinel alongside their command pipe,
so a SIGKILLed coordinator's pool shuts itself down (and the resource
tracker reclaims the shared store) instead of orphaning forever.
"""

from __future__ import annotations

import os
import secrets
import tempfile
import time
from array import array
from dataclasses import dataclass
from multiprocessing import get_context, parent_process, shared_memory
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..checkpoint import (
    CheckpointSession,
    checkpoint_meta,
    fire_coordinator_kill,
)
from ..core import fastnp
from ..core.apriori import AprioriResult, PassTrace, min_support_count
from ..core.candidates import generate_candidates
from ..core.items import Itemset
from ..core.kernels import count_packed_into, make_counter, validate_kernel
from ..core.packed import (
    PackedDB,
    candidates_from_bytes,
    candidates_nbytes,
    packed_from_buffer,
    packed_nbytes,
    write_candidates_into,
    write_packed_into,
)
from ..core.transaction import TransactionDB
from ..core.vertical import TidBitmapCache
from ..faults import FaultEvent, FaultRecord, FaultSpec
from ..memprof import peak_rss_bytes
from .son import merge_candidates, mine_blocks, superset_size

__all__ = [
    "NativeCountDistribution",
    "WorkerError",
    "PassOverhead",
    "DATA_PLANES",
    "validate_data_plane",
]

# Exit status of an injected kill; distinguishable from a Python crash
# in `ps` output while debugging, invisible to the recovery logic (any
# pipe EOF is "died").
_KILLED_EXIT = 17

# Fault-schedule key for SON phase-1 local mining: it is the first work
# the pool does (right after the serial pass 1), so worker events
# declared for pass 2 — the earliest pass a spec can name — fire there
# under a two-phase mine.  Each event still fires exactly once.
_SON_FAULT_K = 2

DATA_PLANES = ("pickle", "shared", "mmap")


def validate_data_plane(data_plane: str) -> str:
    """Return ``data_plane`` if it names a known native data plane.

    Raises:
        ValueError: for anything other than ``"pickle"``, ``"shared"``
            or ``"mmap"``.
    """
    if data_plane not in DATA_PLANES:
        known = ", ".join(repr(p) for p in DATA_PLANES)
        raise ValueError(
            f"unknown data plane {data_plane!r}; expected one of: {known}"
        )
    return data_plane


class WorkerError(RuntimeError):
    """A worker reported a structured error frame (application failure).

    Raised by the parent instead of attempting recovery: unlike a
    process death, an in-worker exception is deterministic — respawning
    and recounting the same blocks with the same candidates would fail
    the same way.
    """


@dataclass
class PassOverhead:
    """Coordinator-side timing decomposition of one pool pass.

    ``broadcast_s`` is the time the coordinator spends making candidates
    available to the workers (shared plane: one binary segment write
    plus P tiny frames; pickle plane: P pickled candidate lists);
    ``reduce_s`` is the time spent decoding replies and summing count
    vectors; ``wait_s`` is the time blocked waiting on worker replies —
    i.e. worker compute, not coordinator overhead.  The data-plane
    benchmark (``benchmarks/bench_native.py``) records
    ``broadcast_s + reduce_s`` per plane.

    The candidate-partitioned pool (:mod:`repro.parallel.native_idd`)
    additionally fills the ring-shift and bitmap-prune categories, which
    stay zero under plain CD:

    * ``shift_s`` — the slowest worker's total ring-shift counting time
      for the pass (the critical path through the P shift steps);
    * ``max_bin_candidates`` — the largest candidate shard any single
      worker built (CD replicates the whole set, so CD's value would be
      ``num_candidates``; IDD's shrinks with P — the paper's
      single-candidate-set-per-node memory argument);
    * ``prune_checked`` / ``prune_skipped`` — root-level bitmap filter
      tests and the subset of them that pruned the traversal
      (:attr:`prune_rate` is the bitmap-prune hit rate).

    The vertical kernel (``kernel="vertical"``) fills two more, both
    the *max* across workers (critical-path semantics, like
    ``shift_s``); they stay zero under the tree kernels:

    * ``bitmap_build_s`` — seconds building (or fetching from the
      per-worker cache) the TID bitmaps; near-zero from the second
      pass on, which is the cross-pass reuse showing up in the data;
    * ``intersect_s`` — seconds intersecting candidate bitmaps and
      popcounting.

    The shared candidate plane fills the last two (zero on the pickle
    plane, where candidates are pickled per worker into
    ``broadcast_s``):

    * ``cand_build_s`` — coordinator seconds encoding the pass's
      candidates into (or recognizing them already present in) the
      shared candidate segment — once per pass, not per worker;
    * ``cand_attach_s`` — the slowest worker's seconds attaching and
      decoding the candidate segment (max across workers, like
      ``shift_s``); near-zero when the worker's cached plane counter
      for that segment is reused, e.g. every warm-pool re-mine.

    ``peak_rss_bytes`` is the memory-observability column: the largest
    peak resident set size any process touched while the pass ran — the
    max over every worker's reply-frame sample and the coordinator's
    own :func:`~repro.memprof.peak_rss_bytes`.  ``ru_maxrss`` is a
    process-lifetime high-water mark, so the column is monotone across
    a run's passes; the scale bench reads the last pass's value as the
    run's footprint.
    """

    k: int
    num_candidates: int
    broadcast_s: float = 0.0
    reduce_s: float = 0.0
    wait_s: float = 0.0
    shift_s: float = 0.0
    max_bin_candidates: int = 0
    prune_checked: int = 0
    prune_skipped: int = 0
    bitmap_build_s: float = 0.0
    intersect_s: float = 0.0
    cand_build_s: float = 0.0
    cand_attach_s: float = 0.0
    peak_rss_bytes: int = 0

    @property
    def coordinator_s(self) -> float:
        """Coordinator overhead for the pass (broadcast + reduce)."""
        return self.broadcast_s + self.reduce_s

    @property
    def prune_rate(self) -> float:
        """Fraction of root-level bitmap tests that pruned (0 if none)."""
        if self.prune_checked == 0:
            return 0.0
        return self.prune_skipped / self.prune_checked


def _even_bounds(num_transactions: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``[0, num_transactions)`` into ``parts`` contiguous ranges.

    The packed-store analogue of
    :meth:`~repro.core.transaction.TransactionDB.partition_bounds`:
    identical arithmetic (base size plus one extra for the first
    ``remainder`` parts), so a mine over ``db.to_packed()`` and one over
    ``db`` hand workers the same ranges.
    """
    base, extra = divmod(num_transactions, parts)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(parts):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------

_SEGMENT_PREFIX = "repro-"


def _segment_name(tag: str) -> str:
    """A short, collision-resistant shm name carrying our prefix.

    The explicit prefix lets tests assert no ``repro-*`` segment
    outlives a run (``/dev/shm`` stays clean); the random token keeps
    concurrent pools and stale crash leftovers from colliding.
    """
    return f"{_SEGMENT_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}-{tag}"


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a coordinator-owned segment from a worker process.

    Attaching would register the segment with the resource tracker —
    which workers share with the coordinator, so a worker-side
    ``unregister`` (or tracker-driven cleanup at worker exit) would
    clobber the coordinator's own registration and turn its eventual
    ``unlink()`` into a tracker error.  Segment lifecycle belongs to the
    coordinator alone, so the attach suppresses registration entirely.
    (Python 3.13 exposes ``track=False`` for exactly this; earlier
    versions need the patch.)
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _attach_store(store_ref: Tuple[str, str]):
    """Attach the packed store in a worker, given its plane reference.

    ``store_ref`` is ``("shm", name)`` — attach the shared-memory
    segment — or ``("mmap", path)`` — map the store file read-only.
    Returns ``(holder, packed)``: the holder pins the mapping for the
    worker's lifetime and is closed last, after every view cast from it
    has been dropped.
    """
    kind, ref = store_ref
    if kind == "shm":
        segment = _attach_segment(ref)
        return segment, packed_from_buffer(segment.buf)
    from ..core.mmapdb import MmapPackedDB

    store = MmapPackedDB.attach(ref)
    return store, store


class _SharedSegments:
    """Coordinator-owned shared segments: store, counts, candidates.

    * **store** — the packed transaction database, written exactly once:
      into a shared-memory segment by default, or — when ``store_dir``
      is given (the mmap plane) — into a disk file under it that
      workers map read-only.  Either way :attr:`store_ref` is the
      ``("shm", name)`` / ``("mmap", path)`` reference workers attach
      through (:func:`_attach_store`), and :meth:`close` removes it.
    * **counts** — ``num_slots`` int64 regions of ``counts_capacity``
      entries each; worker ``w`` writes its pass vector at slot ``w``.
      Grown (power-of-two) when a pass's candidate count exceeds the
      capacity; the outgrown segment is unlinked immediately.
    * **candidates** — one segment per *pass number* holding that pass's
      binary candidate frame, retained for the pool's lifetime: workers
      key their cached plane counters on the segment name, and a
      warm-pool re-mine that republishes byte-identical candidates for
      pass ``k`` gets pass ``k``'s existing segment (and therefore every
      worker's cached counter) back instead of a fresh one.  A pass
      whose candidates *differ* from what its segment holds gets a new
      segment and the stale one is unlinked — a name never refers to two
      different candidate sets.  The retained planes cost one frame per
      pass (``16 + 4 * num * k`` bytes, a few MB at bench scale) on top
      of the store.

    Every created segment is tracked in ``_live`` and :meth:`close`
    unlinks whatever remains — exactly once, idempotently — so both the
    normal shutdown path and abnormal exits (failed pool start,
    :class:`WorkerError` mid-pass) leave nothing behind.
    """

    def __init__(
        self,
        packed: PackedDB,
        num_slots: int,
        store_dir: Optional[str] = None,
        external_path: Optional[Path] = None,
    ):
        self._live: Dict[str, shared_memory.SharedMemory] = {}
        self._closed = False
        self.num_slots = num_slots
        self.counts_capacity = 0
        self._counts_name: Optional[str] = None
        self._cand_names: Dict[int, str] = {}
        self._store_path: Optional[Path] = None
        try:
            if external_path is not None:
                # The store already lives on disk (an attached
                # MmapPackedDB, e.g. a generate-to-disk product):
                # workers map the caller's file directly — nothing is
                # written, and close() leaves the file alone because
                # its lifetime belongs to whoever created it.
                self.store_ref = ("mmap", str(external_path))
            elif store_dir is None:
                store = self._create("db", packed_nbytes(packed))
                write_packed_into(packed, store.buf)
                self.store_ref = ("shm", store.name)
            else:
                from ..core.mmapdb import write_packed_file

                directory = Path(store_dir)
                directory.mkdir(parents=True, exist_ok=True)
                path = directory / _segment_name("db.packed")
                write_packed_file(packed, path)
                self._store_path = path
                self.store_ref = ("mmap", str(path))
        except Exception:
            self.close()
            raise

    def _create(self, tag: str, nbytes: int) -> shared_memory.SharedMemory:
        for _ in range(3):
            try:
                segment = shared_memory.SharedMemory(
                    name=_segment_name(tag), create=True, size=max(nbytes, 8)
                )
                break
            except FileExistsError:  # pragma: no cover - token collision
                continue
        else:  # pragma: no cover - three collisions in a row
            raise OSError(f"could not allocate shared segment for {tag!r}")
        self._live[segment.name] = segment
        return segment

    def _unlink(self, name: str) -> None:
        segment = self._live.pop(name, None)
        if segment is None:
            return
        try:
            segment.close()
        finally:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def publish_candidates(self, k: int, candidates: Sequence[Itemset]) -> str:
        """Write one pass's candidates as a binary frame; return the name.

        Pass ``k``'s segment is retained for the pool's lifetime and
        *reused* when the frame being published is byte-identical to
        what it already holds (the warm-pool re-mine case) — same name
        back means workers keep their cached plane counters.  A
        different frame for the same ``k`` retires the old segment and
        publishes under a fresh name, so a segment name is permanently
        bound to one candidate set.
        """
        nbytes = candidates_nbytes(len(candidates), k)
        frame = bytearray(nbytes)
        write_candidates_into(candidates, k, frame)
        name = self._cand_names.get(k)
        if name is not None:
            segment = self._live.get(name)
            # The header (num, k) makes frames of different candidate
            # counts differ in their first bytes, so the prefix compare
            # is exact even though segment sizes are page-rounded.
            if segment is not None and segment.buf[:nbytes] == frame:
                return name
            self._unlink(name)
            del self._cand_names[k]
        segment = self._create(f"c{k}", nbytes)
        segment.buf[:nbytes] = frame
        self._cand_names[k] = segment.name
        return segment.name

    def ensure_counts(self, num_candidates: int) -> Tuple[str, int]:
        """Return ``(name, capacity)`` of a count region fitting the pass."""
        if self._counts_name is None or num_candidates > self.counts_capacity:
            capacity = 1024
            while capacity < num_candidates:
                capacity *= 2
            segment = self._create("cnt", 8 * capacity * self.num_slots)
            if self._counts_name is not None:
                self._unlink(self._counts_name)
            self._counts_name = segment.name
            self.counts_capacity = capacity
        return self._counts_name, self.counts_capacity

    def read_counts(self, slot: int, expected: int) -> List[int]:
        """Decode worker ``slot``'s count vector from the shared region."""
        segment = self._live[self._counts_name]
        base = 8 * slot * self.counts_capacity
        vector = array("q")
        vector.frombytes(bytes(segment.buf[base:base + 8 * expected]))
        return vector.tolist()

    def close(self) -> None:
        """Unlink every live segment; idempotent (exactly-once unlink)."""
        if self._closed:
            return
        self._closed = True
        for name in list(self._live):
            self._unlink(name)
        self._cand_names.clear()
        self._counts_name = None
        if self._store_path is not None:
            # The mmap plane's store file is coordinator-owned too;
            # attached workers keep their mappings (POSIX unlink
            # semantics), new attaches fail loudly.
            self._store_path.unlink(missing_ok=True)
            self._store_path = None


# ----------------------------------------------------------------------
# Counting shared by workers and the parent's in-process fallback
# ----------------------------------------------------------------------


def _recv_command(conn):
    """Receive the next request frame, or ``None`` when the parent died.

    A forked worker inherits a copy of its *own* pipe's parent end, so
    ``conn.recv()`` alone can never see EOF after the coordinator is
    SIGKILLed — every worker would orphan forever, pinning the shared
    store (and, through it, the resource tracker).  Waiting on the
    parent-death sentinel alongside the command pipe turns coordinator
    death into the same orderly shutdown as an explicit ``None`` frame.
    """
    parent = parent_process()
    if parent is not None:
        ready = _connection_wait([conn, parent.sentinel])
        if conn not in ready:
            return None
    return conn.recv()


def _count_holdings_vector(
    packed: Optional[PackedDB],
    holdings: Sequence,
    k: int,
    candidates: Sequence[Itemset],
    kernel: str,
    branching: int,
    leaf_capacity: int,
    cache: Optional[TidBitmapCache] = None,
) -> Tuple[List[int], float, float]:
    """Count one pass over a worker's holdings; vector in candidate order.

    Holdings are plane-shaped: ``(lo, hi)`` ranges into ``packed`` on
    the shared plane, materialized transaction blocks on the pickle
    plane.  Shared by the worker loop and the parent's in-process
    degradation path, so both produce identical counts by construction.

    ``cache`` is the holder's cross-pass bitmap cache
    (:class:`TidBitmapCache`, or the fast-np kernel's
    :class:`~repro.core.fastnp.PackedBitmapCache`); only the bitmap
    kernels consult it (bitmaps depend on the data range, not on ``k``,
    so a persistent worker builds them once).  Returns ``(vector,
    build_s, intersect_s)`` — the bitmap timings are zero for the tree
    kernels.
    """
    counter = make_counter(
        k,
        candidates,
        kernel=kernel,
        branching=branching,
        leaf_capacity=leaf_capacity,
    )
    if cache is not None and kernel in ("vertical", "fast-np"):
        counter.use_cache(cache)
    if packed is None:
        for block in holdings:
            counter.count_database(block)
    else:
        for lo, hi in holdings:
            count_packed_into(counter, packed, lo, hi)
    counts = counter.counts()
    vector = [counts[c] for c in candidates]
    return (
        vector,
        getattr(counter, "build_s", 0.0),
        getattr(counter, "intersect_s", 0.0),
    )


def _worker_main(
    conn,
    plane: Tuple,
    holdings: List,
    branching: int,
    leaf_capacity: int,
    kernel: str,
    fault_events: Sequence[FaultEvent] = (),
) -> None:
    """Worker loop: hold transaction blocks, count pass after pass.

    ``plane`` is ``("pickle",)`` or ``("shared", store_ref, slot)``
    where ``store_ref`` is ``("shm", name)`` (shared plane) or
    ``("mmap", path)`` (out-of-core plane); on either zero-copy plane
    the worker attaches the packed store by reference once (zero
    transaction bytes cross the pipe, ever) and ``holdings`` are
    ``(lo, hi)`` ranges into it instead of transaction lists.

    Request frames (parent → worker):

    * ``("pass", seq, k, payload)`` — count all held blocks;
    * ``("adopt", seq, new_holdings, k, payload)`` — permanently add a
      dead peer's holdings and count *only those* for the current pass
      (the worker already returned its own counts);
    * ``("mine", seq, (min_support, max_k))`` — SON phase 1 (zero-copy
      planes only): locally mine the held ranges as one partition at
      partition-scaled support (:func:`repro.parallel.son.mine_blocks`)
      and reply ``("mined", seq, (candidates_by_k, peak_rss))``;
      injected worker faults fire here under the ``_SON_FAULT_K`` key;
    * ``None`` — shut down.

    ``payload`` carries the candidates: the pickled list on the pickle
    plane, or ``(cand_name, num_candidates, counts_name,
    counts_capacity)`` on the shared plane — the worker attaches the
    candidate segment by name and writes its vector into its slot of
    the counts segment.  Shared candidate segments are decoded **at
    most once per name**: the result (a zero-copy
    :class:`~repro.core.fastnp.FastNumpyCounter` over the segment's
    candidate matrix under ``kernel="fast-np"`` with numpy, the decoded
    tuple list otherwise) is cached keyed on the segment name, which
    the coordinator permanently binds to one candidate set — so
    re-counting the same pass (warm-pool re-mines) costs no attach, no
    decode and no counter rebuild.

    Reply frames (worker → parent): ``("ok", seq, (body, build_s,
    intersect_s, attach_s, peak_rss))`` — ``body`` is the count vector
    on the pickle plane and the number of counts written on the shared
    plane; ``build_s``/``intersect_s`` are the worker's bitmap-kernel
    build and intersection seconds (zero under the pure tree kernels),
    ``attach_s`` its candidate-plane attach+decode seconds (zero on the
    pickle plane and on cache hits), and ``peak_rss`` the worker's
    :func:`~repro.memprof.peak_rss_bytes` sample — or ``("error", seq,
    message)`` when counting raised — the parent surfaces the message instead of
    seeing a silent death.  Every reply echoes the request's ``seq``, so
    the parent can tell a reply to the frame it just sent from a late
    reply to an earlier frame (a slow worker's stale pass reply must
    never be read as an adopt result).

    Workers persist across passes, so the loop owns one cross-pass
    bitmap cache (:class:`TidBitmapCache` for the vertical kernel,
    :func:`repro.core.fastnp.make_cache` for fast-np): the bitmap
    kernels build each held range's bitmaps on its first pass and every
    later pass intersects cached ones.  A respawned replacement simply
    starts cold, and an adopter builds the adopted ranges' bitmaps on
    first use — no bitmap state needs recovering.

    ``fault_events`` are this worker's injected failures from a
    :class:`~repro.faults.FaultSpec`; each fires once.
    """
    pending = list(fault_events)

    def take(kind: str, k: int) -> Optional[FaultEvent]:
        for index, event in enumerate(pending):
            if event.kind == kind and event.k == k:
                return pending.pop(index)
        return None

    shared = plane[0] == "shared"
    packed: Optional[PackedDB] = None
    slot = 0
    store_holder = None
    counts_segment: Optional[shared_memory.SharedMemory] = None
    counts_name: Optional[str] = None
    if shared:
        _, store_ref, slot = plane
        # Attach once; a respawned replacement re-attaches by reference
        # (shm name or store-file path) instead of being re-shipped its
        # blocks.  The holder must outlive the views cast from its
        # buffer, so it is pinned here for the worker's lifetime (the
        # coordinator owns the unlink of segment and file alike).
        store_holder, packed = _attach_store(store_ref)
    if kernel == "vertical":
        cache = TidBitmapCache()
    elif kernel == "fast-np":
        cache = fastnp.make_cache()
    else:
        cache = None
    # Candidate-plane cache: segment name → (pinned segment or None,
    # plane counter or None, decoded tuples or None).  The coordinator
    # never rebinds a name to different candidates, so entries are valid
    # for the worker's lifetime; one entry per published plane (bounded
    # by passes per pool lifetime).
    plane_counters: Dict[str, Tuple] = {}

    try:
        while True:
            message = _recv_command(conn)
            if message is None:
                break
            if message[0] == "mine":
                _, seq, (son_support, son_max_k) = message
                kill = take("kill", _SON_FAULT_K)
                if kill is not None and kill.when == "before":
                    os._exit(_KILLED_EXIT)
                delay = take("delay", _SON_FAULT_K)
                corrupt = take("corrupt", _SON_FAULT_K)
                try:
                    if take("error", _SON_FAULT_K) is not None:
                        raise RuntimeError(
                            "injected worker error at SON phase 1"
                        )
                    mined = mine_blocks(
                        packed,
                        holdings,
                        son_support,
                        kernel=kernel,
                        branching=branching,
                        leaf_capacity=leaf_capacity,
                        max_k=son_max_k,
                        cache=cache,
                    )
                except Exception as exc:  # surfaced, never swallowed
                    conn.send(("error", seq, f"{type(exc).__name__}: {exc}"))
                    continue
                if kill is not None:  # when == "mid": die after the work
                    os._exit(_KILLED_EXIT)
                if delay is not None:
                    time.sleep(delay.delay)
                if corrupt is not None:
                    mined = None  # type: ignore[assignment]
                conn.send(("mined", seq, (mined, peak_rss_bytes())))
                continue
            if message[0] == "adopt":
                _, seq, new_holdings, k, payload = message
                holdings.extend(new_holdings)
                count_holdings: Sequence = new_holdings
            else:
                _, seq, k, payload = message
                count_holdings = holdings
            plane_counter = None
            attach_s = 0.0
            if shared:
                cand_name, _num, cnt_name, cnt_capacity = payload
                tick = time.perf_counter()
                entry = plane_counters.get(cand_name)
                if entry is None:
                    cand_segment = _attach_segment(cand_name)
                    if kernel == "fast-np" and fastnp.HAVE_NUMPY:
                        # Zero-copy: the counter's candidate matrix is a
                        # view into the segment, which stays pinned in
                        # the entry for the counter's lifetime.
                        counter = fastnp.FastNumpyCounter.from_flat(
                            cand_segment.buf
                        )
                        counter.use_cache(cache)
                        entry = (cand_segment, counter, None)
                    else:
                        frame = bytes(cand_segment.buf)
                        cand_segment.close()
                        _, decoded = candidates_from_bytes(frame)
                        entry = (None, None, decoded)
                    plane_counters[cand_name] = entry
                attach_s = time.perf_counter() - tick
                plane_counter, candidates = entry[1], entry[2]
                if cnt_name != counts_name:
                    if counts_segment is not None:
                        counts_segment.close()
                    counts_segment = _attach_segment(cnt_name)
                    counts_name = cnt_name
            else:
                candidates = payload
            kill = take("kill", k)
            if kill is not None and kill.when == "before":
                os._exit(_KILLED_EXIT)
            delay = take("delay", k)
            corrupt = take("corrupt", k)
            try:
                if take("error", k) is not None:
                    raise RuntimeError(f"injected worker error at pass {k}")
                if plane_counter is not None:
                    # Counts accumulate in the cached counter; an adopt
                    # request must add only the new holdings' counts, so
                    # every request starts from a zeroed vector.
                    plane_counter.reset_counts()
                    b0, i0 = plane_counter.build_s, plane_counter.intersect_s
                    for lo, hi in count_holdings:
                        plane_counter.count_packed(packed, lo, hi)
                    vector = plane_counter.counts_vector()
                    build_s = plane_counter.build_s - b0
                    intersect_s = plane_counter.intersect_s - i0
                else:
                    vector, build_s, intersect_s = _count_holdings_vector(
                        packed, count_holdings, k, candidates, kernel,
                        branching, leaf_capacity, cache,
                    )
            except Exception as exc:  # surfaced, never swallowed
                conn.send(("error", seq, f"{type(exc).__name__}: {exc}"))
                continue
            if kill is not None:  # when == "mid": die after the work
                os._exit(_KILLED_EXIT)
            if delay is not None:
                time.sleep(delay.delay)
            if corrupt is not None:
                vector = vector[:-1]
            if shared:
                base = 8 * slot * cnt_capacity
                counts_segment.buf[base:base + 8 * len(vector)] = (
                    array("q", vector).tobytes()
                )
                body: object = len(vector)
            else:
                body = vector
            conn.send(
                ("ok", seq,
                 (body, build_s, intersect_s, attach_s, peak_rss_bytes()))
            )
    except EOFError:
        pass
    finally:
        # The caches pin shm-backed views; drop them before the segment
        # objects can be torn down, or their mmap close trips over the
        # exported memoryviews at interpreter shutdown.  Plane counters
        # hold views into their pinned candidate segments, so each
        # counter is dropped before its segment is closed.
        if cache is not None:
            cache.clear()
        while plane_counters:
            _name, (cand_segment, counter, _decoded) = plane_counters.popitem()
            del counter
            if cand_segment is not None:
                try:
                    cand_segment.close()
                except BufferError:  # pragma: no cover - view still exported
                    pass
        packed = None
        if store_holder is not None:
            try:
                store_holder.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
        conn.close()


class _Slot:
    """One pool slot: a worker process, its pipe, and its holdings."""

    def __init__(self, process, conn, holdings, events):
        self.process = process
        self.conn = conn
        # Blocks on the pickle plane, (lo, hi) store ranges on the
        # shared plane; adoption appends a dead peer's holdings either way.
        self.holdings: List = holdings
        self.events: List[FaultEvent] = events


class _WorkerPool:
    """Persistent, fault-tolerant per-``mine()`` pool of counting processes.

    One process per non-empty transaction block.  On the shared plane
    every worker attaches the packed store segment by name — no
    transaction ever crosses a pipe; on the pickle plane the block is
    inherited through the fork image or pickled exactly once into the
    child's argument tuple.  Either way, passes after the first ship
    only candidates (one shared binary frame, or P pickled lists).

    Args:
        holdings: per-worker holdings — ``(lo, hi)`` range lists into
            ``packed`` (shared/mmap planes) or transaction block lists
            (pickle plane).
        packed: the packed store (zero-copy planes only); the pool
            writes it into the store segment or file and keeps this
            array-backed copy for the in-process recovery rung.
        store_dir: mmap plane only — directory the store file is
            written into (defaults to the platform temp directory).
        external_store: mmap plane only — path of an *existing* store
            file (an attached :class:`~repro.core.mmapdb.MmapPackedDB`,
            e.g. a generate-to-disk product); workers map it directly,
            nothing is copied or written, and the pool never unlinks it.
        recv_timeout: per-pass reply deadline in seconds; receives are
            poll-based so no call blocks past it.
        max_retries: respawn attempts per failed worker (beyond these
            the blocks are adopted by a survivor or counted in-process).
        backoff_base: first-retry backoff; doubles per attempt.
        faults: optional :class:`~repro.faults.FaultSpec` — worker
            events ship to the workers, ``refuse-spawn`` budgets gate
            the pool's own respawn attempts.
    """

    def __init__(
        self,
        context,
        holdings: Sequence[List],
        branching: int,
        leaf_capacity: int,
        kernel: str,
        data_plane: str = "shared",
        packed: Optional[PackedDB] = None,
        store_dir: Optional[str] = None,
        external_store: Optional[Path] = None,
        recv_timeout: float = 30.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        faults: Optional[FaultSpec] = None,
    ):
        self._context = context
        self._branching = branching
        self._leaf_capacity = leaf_capacity
        self._kernel = kernel
        self._plane = validate_data_plane(data_plane)
        self._packed = packed
        self.recv_timeout = recv_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self._faults = faults or FaultSpec()
        # refuse-spawn gates *respawns* (recovery), not the initial pool.
        self._refusals_left = self._faults.refusals()
        self._initial_refusals = self._refusals_left
        # Monotonic request counter: every frame carries it and every
        # reply echoes it, so stale replies are recognizable (see
        # _read_reply).
        self._seq = 0
        self._slots: Dict[int, _Slot] = {}
        self._fallback_holdings: List = []
        # The parent's own cross-pass bitmap cache for the in-process
        # recovery rung (bitmap kernels only).
        if kernel == "vertical":
            self._inprocess_cache = TidBitmapCache()
        elif kernel == "fast-np":
            self._inprocess_cache = fastnp.make_cache()
        else:
            self._inprocess_cache = None
        self._segments: Optional[_SharedSegments] = None
        self.fault_log: List[FaultRecord] = []
        self.pass_overheads: List[PassOverhead] = []
        try:
            if self._plane != "pickle":
                if packed is None:
                    raise ValueError(
                        "the shared and mmap data planes require a "
                        "packed store"
                    )
                mmap_dir: Optional[str] = None
                if self._plane == "mmap" and external_store is None:
                    mmap_dir = (
                        store_dir
                        if store_dir is not None
                        else tempfile.gettempdir()
                    )
                self._segments = _SharedSegments(
                    packed,
                    len(holdings),
                    store_dir=mmap_dir,
                    external_path=(
                        external_store if self._plane == "mmap" else None
                    ),
                )
            for wid, holding in enumerate(holdings):
                events = self._faults.worker_events(wid)
                slot = self._spawn(wid, list(holding), events, gated=False)
                if slot is None:  # pragma: no cover - spawn failed at startup
                    raise OSError(f"could not start worker {wid}")
                self._slots[wid] = slot
        except Exception:
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        """Live worker processes (excludes in-process fallback blocks)."""
        return len(self._slots)

    @property
    def degraded(self) -> bool:
        """True once any block is being counted in-process."""
        return bool(self._fallback_holdings)

    @property
    def refusals_consumed(self) -> int:
        """refuse-spawn budget consumed so far (the checkpoint cursor)."""
        return self._initial_refusals - self._refusals_left

    def segment_names(self) -> List[str]:
        """Names of currently live shared segments (empty on pickle)."""
        if self._segments is None:
            return []
        return list(self._segments._live)

    # ------------------------------------------------------------------
    # The pass fan-out
    # ------------------------------------------------------------------

    def count_pass(self, k: int, candidates: Sequence[Itemset]) -> List[int]:
        """Fan one pass out to every worker; return the summed count vector.

        Detects failed workers within ``recv_timeout`` (poll-based) and
        recovers their blocks before returning, so the totals always
        cover every transaction exactly once.
        """
        totals = [0] * len(candidates)
        # Snapshot: blocks that fall back *during* this pass are counted
        # by their recovery rung, not double-counted here.
        fallback_snapshot = list(self._fallback_holdings)
        overhead = PassOverhead(k=k, num_candidates=len(candidates))
        failures: List[Tuple[int, str]] = []
        pending: Dict[object, Tuple[int, int]] = {}
        tick = time.perf_counter()
        payload = self._pass_payload(k, candidates, overhead)
        for wid, slot in list(self._slots.items()):
            seq = self._next_seq()
            try:
                slot.conn.send(("pass", seq, k, payload))
                pending[slot.conn] = (wid, seq)
            except (BrokenPipeError, OSError, ValueError):
                failures.append((wid, "died"))
        overhead.broadcast_s = time.perf_counter() - tick
        deadline = time.monotonic() + self.recv_timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            tick = time.perf_counter()
            ready = _connection_wait(list(pending), timeout=remaining)
            overhead.wait_s += time.perf_counter() - tick
            tick = time.perf_counter()
            for conn in ready:
                wid, seq = pending[conn]
                vector, failure, timings = self._read_reply(
                    conn, wid, k, len(candidates), seq
                )
                if failure == "stale":
                    continue  # keep waiting for the current reply
                del pending[conn]
                if vector is None:
                    failures.append((wid, failure))
                else:
                    # Critical-path semantics, like shift_s: the pass
                    # is as slow as its slowest worker's kernel work.
                    overhead.bitmap_build_s = max(
                        overhead.bitmap_build_s, timings[0]
                    )
                    overhead.intersect_s = max(
                        overhead.intersect_s, timings[1]
                    )
                    overhead.cand_attach_s = max(
                        overhead.cand_attach_s, timings[2]
                    )
                    overhead.peak_rss_bytes = max(
                        overhead.peak_rss_bytes, timings[3]
                    )
                    for index, count in enumerate(vector):
                        totals[index] += count
            overhead.reduce_s += time.perf_counter() - tick
        for wid, _seq in pending.values():
            failures.append((wid, "timeout"))
        # Workers that failed this pass but have not been recovered yet
        # must not serve as adoption targets for each other: a dead one
        # would crash the ask, and a slow-but-alive one would race its
        # own recovery (its blocks would end up counted twice).
        unrecovered = [wid for wid, _ in failures]
        for wid, failure in failures:
            unrecovered.remove(wid)
            vector = self._recover(
                wid, k, candidates, payload, failure,
                exclude=frozenset(unrecovered),
            )
            for index, count in enumerate(vector):
                totals[index] += count
        if fallback_snapshot:
            vector = self._count_inprocess(fallback_snapshot, k, candidates)
            for index, count in enumerate(vector):
                totals[index] += count
        # Fold in the coordinator's own high-water mark, so the column
        # covers every process the pass touched.
        overhead.peak_rss_bytes = max(
            overhead.peak_rss_bytes, peak_rss_bytes()
        )
        self.pass_overheads.append(overhead)
        return totals

    def _pass_payload(
        self,
        k: int,
        candidates: Sequence[Itemset],
        overhead: Optional[PassOverhead] = None,
    ):
        """The per-pass candidate payload, shaped by the data plane.

        Pickle plane: the candidate list itself (pickled per worker by
        the pipe).  Zero-copy planes (shared/mmap): one binary candidate
        segment written (or recognized as already published — the
        warm-pool case) once, plus the counts-region descriptor — the
        frame then carries only names and sizes.  The publish time lands
        in ``overhead.cand_build_s`` when a pass overhead is given.
        """
        if self._plane == "pickle":
            return candidates
        tick = time.perf_counter()
        cand_name = self._segments.publish_candidates(k, candidates)
        counts_name, capacity = self._segments.ensure_counts(len(candidates))
        if overhead is not None:
            overhead.cand_build_s = time.perf_counter() - tick
        return (cand_name, len(candidates), counts_name, capacity)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _read_reply(
        self, conn, wid: int, k: int, expected: int, seq: int
    ) -> Tuple[Optional[List[int]], str, Tuple[float, float, float, int]]:
        """Read one reply frame; return (vector, "", timings) or
        (None, failure, (0, 0, 0, 0)).

        A reply echoing a sequence number other than ``seq`` answers an
        *earlier* request (a slow worker draining its queue) and is
        reported as ``"stale"``: the caller discards it and keeps
        waiting rather than mistaking it for the current reply — even
        when the payload happens to have the expected length.

        The ok-payload is ``(body, build_s, intersect_s, attach_s,
        peak_rss)``; ``body`` on the zero-copy planes is the number of
        counts the worker wrote to its slot — a mismatch (e.g. an
        injected truncated vector) is ``"corrupt"``, exactly as a short
        pickled list is.
        The timings are the worker's bitmap-kernel build/intersect
        seconds (zero under pure tree kernels), its candidate-plane
        attach seconds for the request, and its peak-RSS sample in
        bytes.
        """
        no_timing = (0.0, 0.0, 0.0, 0)
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            return None, "died", no_timing
        if not (isinstance(frame, tuple) and len(frame) == 3):
            return None, "corrupt", no_timing
        tag, frame_seq, payload = frame
        if frame_seq != seq:
            return None, "stale", no_timing
        if tag == "error":
            raise WorkerError(
                f"worker {wid} failed at pass {k}: {payload}"
            )
        if tag != "ok":
            return None, "corrupt", no_timing
        if not (isinstance(payload, tuple) and len(payload) == 5):
            return None, "corrupt", no_timing
        body, build_s, intersect_s, attach_s, peak_rss = payload
        timings = (build_s, intersect_s, attach_s, int(peak_rss))
        if self._plane != "pickle":
            if body != expected:
                return None, "corrupt", no_timing
            return self._segments.read_counts(wid, expected), "", timings
        if not isinstance(body, list) or len(body) != expected:
            return None, "corrupt", no_timing
        return body, "", timings

    # ------------------------------------------------------------------
    # SON phase 1 (two-phase counting)
    # ------------------------------------------------------------------

    def mine_local_candidates(
        self, min_support: float, max_k: Optional[int]
    ) -> Dict[int, List[Itemset]]:
        """Fan SON phase 1 out to every worker; return the merged superset.

        Each worker mines its own holdings as one partition at
        partition-scaled support (:func:`repro.parallel.son.mine_blocks`)
        and ships back its local frequent sets; the union — a superset
        of every global F_k — is what phase 2's counting passes run
        over.  Failed workers walk the same ladder as a counting pass
        minus adoption (a survivor would have to re-mine foreign ranges
        it will never hold again): respawn with retries, then
        in-process — so the merged superset always covers every
        partition exactly once.  The phase is recorded as a ``k=0``
        :class:`PassOverhead` whose ``num_candidates`` is the superset
        size.
        """
        overhead = PassOverhead(k=0, num_candidates=0)
        parts: List[Dict[int, List[Itemset]]] = []
        failures: List[Tuple[int, str]] = []
        pending: Dict[object, Tuple[int, int]] = {}
        request = (min_support, max_k)
        tick = time.perf_counter()
        for wid, slot in list(self._slots.items()):
            seq = self._next_seq()
            try:
                slot.conn.send(("mine", seq, request))
                pending[slot.conn] = (wid, seq)
            except (BrokenPipeError, OSError, ValueError):
                failures.append((wid, "died"))
        overhead.broadcast_s = time.perf_counter() - tick
        deadline = time.monotonic() + self.recv_timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            tick = time.perf_counter()
            ready = _connection_wait(list(pending), timeout=remaining)
            overhead.wait_s += time.perf_counter() - tick
            tick = time.perf_counter()
            for conn in ready:
                wid, seq = pending[conn]
                mined, failure, peak = self._read_mine_reply(conn, wid, seq)
                if failure == "stale":
                    continue
                del pending[conn]
                if mined is None:
                    failures.append((wid, failure))
                else:
                    parts.append(mined)
                    overhead.peak_rss_bytes = max(
                        overhead.peak_rss_bytes, peak
                    )
            overhead.reduce_s += time.perf_counter() - tick
        for wid, _seq in pending.values():
            failures.append((wid, "timeout"))
        for wid, failure in failures:
            parts.append(self._recover_mine(wid, min_support, max_k, failure))
        if self._fallback_holdings:
            parts.append(
                mine_blocks(
                    self._packed,
                    self._fallback_holdings,
                    min_support,
                    kernel=self._kernel,
                    branching=self._branching,
                    leaf_capacity=self._leaf_capacity,
                    max_k=max_k,
                    cache=self._inprocess_cache,
                )
            )
        merged = merge_candidates(parts)
        overhead.num_candidates = superset_size(merged)
        overhead.peak_rss_bytes = max(
            overhead.peak_rss_bytes, peak_rss_bytes()
        )
        self.pass_overheads.append(overhead)
        return merged

    def _read_mine_reply(
        self, conn, wid: int, seq: int
    ) -> Tuple[Optional[Dict[int, List[Itemset]]], str, int]:
        """Read one phase-1 reply; return (mined, "", peak) or
        (None, failure, 0).

        Mirrors :meth:`_read_reply`'s frame discipline: stale sequence
        numbers are reported (and skipped by the caller), a structured
        error frame raises :class:`WorkerError`, and anything malformed
        — including the injected-corruption ``None`` body — is
        ``"corrupt"``.
        """
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            return None, "died", 0
        if not (isinstance(frame, tuple) and len(frame) == 3):
            return None, "corrupt", 0
        tag, frame_seq, payload = frame
        if frame_seq != seq:
            return None, "stale", 0
        if tag == "error":
            raise WorkerError(
                f"worker {wid} failed at SON phase 1: {payload}"
            )
        if tag != "mined":
            return None, "corrupt", 0
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return None, "corrupt", 0
        mined, peak = payload
        if not isinstance(mined, dict):
            return None, "corrupt", 0
        return mined, "", int(peak)

    def _ask_mine(
        self, slot: _Slot, wid: int, min_support: float, max_k: Optional[int]
    ) -> Optional[Dict[int, List[Itemset]]]:
        """Ask one slot to mine its holdings; poll-bounded, or ``None``."""
        seq = self._next_seq()
        try:
            slot.conn.send(("mine", seq, (min_support, max_k)))
        except (BrokenPipeError, OSError, ValueError):
            return None
        deadline = time.monotonic() + self.recv_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not slot.conn.poll(remaining):
                return None
            mined, failure, _peak = self._read_mine_reply(
                slot.conn, wid, seq
            )
            if failure != "stale":
                return mined

    def _recover_mine(
        self, wid: int, min_support: float, max_k: Optional[int], failure: str
    ) -> Dict[int, List[Itemset]]:
        """Re-mine a failed worker's partition; reassign it for phase 2.

        Respawn with retries and backoff (a replacement re-attaches the
        store by reference and re-mines from scratch), else the
        partition moves in-process — for this phase *and*, via
        ``_fallback_holdings``, for every phase-2 counting pass.  Fault
        records are logged under ``_SON_FAULT_K``, the schedule key the
        phase consumes worker events from.
        """
        slot = self._slots.pop(wid, None)
        if slot is None:  # pragma: no cover - defensive; one recovery
            # per wid, as in _recover.
            return {}
        holdings = slot.holdings
        future_events = [e for e in slot.events if e.k > _SON_FAULT_K]
        self._discard(slot)

        attempts = 0
        for attempt in range(self.max_retries + 1):
            if attempt > 0:
                time.sleep(self.backoff_base * (2 ** (attempt - 1)))
            attempts += 1
            replacement = self._spawn(wid, holdings, future_events, gated=True)
            if replacement is None:
                continue
            mined = self._ask_mine(replacement, wid, min_support, max_k)
            if mined is not None:
                self._slots[wid] = replacement
                self.fault_log.append(
                    FaultRecord(
                        _SON_FAULT_K, wid, failure, "respawned", attempts
                    )
                )
                return mined
            self._discard(replacement)

        self._fallback_holdings.extend(holdings)
        self.fault_log.append(
            FaultRecord(_SON_FAULT_K, wid, failure, "inprocess", attempts)
        )
        return mine_blocks(
            self._packed,
            holdings,
            min_support,
            kernel=self._kernel,
            branching=self._branching,
            leaf_capacity=self._leaf_capacity,
            max_k=max_k,
            cache=self._inprocess_cache,
        )

    # ------------------------------------------------------------------
    # Recovery ladder
    # ------------------------------------------------------------------

    def _recover(
        self,
        wid: int,
        k: int,
        candidates: Sequence[Itemset],
        payload,
        failure: str,
        exclude: frozenset = frozenset(),
    ) -> List[int]:
        """Recount a failed worker's holdings; reassign them for future passes.

        Ladder: respawn (with retries + exponential backoff) → adoption
        by a surviving worker → in-process counting.  Whatever rung
        succeeds, the returned vector covers exactly the failed slot's
        holdings for pass ``k``.  On the shared plane a replacement
        re-attaches the store by name and an adopter receives only
        ``(lo, hi)`` ranges — recovery ships no transactions either.

        ``exclude`` holds worker ids that also failed this pass and are
        still awaiting their own recovery; they are not survivors (their
        pass-``k`` counts were never collected) and must not be asked to
        adopt.
        """
        slot = self._slots.pop(wid, None)
        if slot is None:  # pragma: no cover - defensive; _recover runs
            # at most once per wid and adoption never touches excluded
            # same-pass failures, so the slot is always present.
            return [0] * len(candidates)
        holdings = slot.holdings
        # A replacement must not replay the failure that killed its
        # predecessor; it inherits only events for *future* passes.
        future_events = [e for e in slot.events if e.k > k]
        self._discard(slot)

        attempts = 0
        expected = len(candidates)
        for attempt in range(self.max_retries + 1):
            if attempt > 0:
                time.sleep(self.backoff_base * (2 ** (attempt - 1)))
            attempts += 1
            replacement = self._spawn(wid, holdings, future_events, gated=True)
            if replacement is None:
                continue
            vector = self._ask(
                replacement, ("pass", k, payload), wid, k, expected
            )
            if vector is not None:
                self._slots[wid] = replacement
                self.fault_log.append(
                    FaultRecord(k, wid, failure, "respawned", attempts)
                )
                return vector
            self._discard(replacement)

        for survivor_id in list(self._slots):
            if survivor_id in exclude:
                continue
            survivor = self._slots[survivor_id]
            vector = self._ask(
                survivor, ("adopt", holdings, k, payload), survivor_id, k,
                expected,
            )
            if vector is not None:
                survivor.holdings.extend(holdings)
                self.fault_log.append(
                    FaultRecord(k, wid, failure, "adopted", attempts)
                )
                return vector
            # The survivor died while adopting.  Its own counts for this
            # pass were already collected, so its holdings only need to
            # move in-process for *future* passes.
            del self._slots[survivor_id]
            self._discard(survivor)
            self._fallback_holdings.extend(survivor.holdings)
            self.fault_log.append(
                FaultRecord(k, survivor_id, "died", "inprocess", 0)
            )

        self._fallback_holdings.extend(holdings)
        self.fault_log.append(
            FaultRecord(k, wid, failure, "inprocess", attempts)
        )
        return self._count_inprocess(holdings, k, candidates)

    def _ask(
        self, slot: _Slot, request, wid: int, k: int, expected: int
    ) -> Optional[List[int]]:
        """Send one request to one slot; poll-bounded reply or ``None``.

        The request (sans sequence number) gains a fresh ``seq`` before
        sending; stale replies to earlier frames are drained and
        ignored, so only the answer to *this* request can be returned.
        """
        seq = self._next_seq()
        try:
            slot.conn.send((request[0], seq) + tuple(request[1:]))
        except (BrokenPipeError, OSError, ValueError):
            return None
        deadline = time.monotonic() + self.recv_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not slot.conn.poll(remaining):
                return None
            vector, failure, _timings = self._read_reply(
                slot.conn, wid, k, expected, seq
            )
            if failure != "stale":
                return vector

    def _spawn(
        self,
        wid: int,
        holdings: List,
        events: List[FaultEvent],
        gated: bool,
    ) -> Optional[_Slot]:
        """Start one worker process; ``None`` if spawning is refused/fails.

        ``wid`` doubles as the worker's count-region slot index on the
        shared plane, so a respawned replacement writes where its
        predecessor did.
        """
        if gated and self._refusals_left > 0:
            self._refusals_left -= 1
            return None
        if self._plane != "pickle":
            plane = ("shared", self._segments.store_ref, wid)
        else:
            plane = ("pickle",)
        try:
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    plane,
                    holdings,
                    self._branching,
                    self._leaf_capacity,
                    self._kernel,
                    events,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
        except OSError:
            return None
        return _Slot(process, parent_conn, holdings, events)

    def _count_inprocess(
        self, holdings: Sequence, k: int, candidates: Sequence[Itemset]
    ) -> List[int]:
        vector, _build_s, _intersect_s = _count_holdings_vector(
            self._packed if self._plane != "pickle" else None,
            holdings, k, candidates, self._kernel, self._branching,
            self._leaf_capacity, self._inprocess_cache,
        )
        return vector

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _discard(self, slot: _Slot) -> None:
        """Close a slot's pipe and reap its process (terminate if needed).

        A declared-failed worker may merely be slow; terminating it
        prevents a late reply from desynchronizing a later pass — and,
        on the shared plane, a late write to a count slot a replacement
        is about to use.
        """
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join(timeout=10)

    def shutdown(self) -> None:
        """Reap the workers, then unlink every shared segment exactly once."""
        try:
            for slot in self._slots.values():
                try:
                    slot.conn.send(None)
                except (OSError, ValueError, BrokenPipeError):
                    pass
                finally:
                    slot.conn.close()
            for slot in self._slots.values():
                slot.process.join(timeout=10)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join()
            self._slots = {}
            self._fallback_holdings = []
        finally:
            if self._segments is not None:
                self._segments.close()

    def __enter__(self) -> "_WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class NativeCountDistribution:
    """Multi-process CD miner producing serial-identical results.

    Args:
        min_support: fractional minimum support in (0, 1].
        num_workers: OS processes to fan counting out to (clamped to the
            number of non-empty transaction blocks — idle workers are
            never spawned).
        branching / leaf_capacity: hash tree geometry.
        max_k: optional pass cap.
        start_method: multiprocessing start method (``"fork"`` is
            fastest where available; ``None`` uses the platform default).
        kernel: per-worker counting kernel, ``"fast"`` (default),
            ``"reference"``, ``"fast-np"`` (numpy batch counting
            straight out of the shared candidate plane — each worker
            caches one zero-copy counter per published candidate
            segment plus its block's bit-matrices, and reuses both
            every pass; pure-python fallback without numpy), or
            ``"vertical"`` (per-item TID bitmaps intersected per
            candidate; each worker builds its block's bitmaps once and
            reuses them every pass); all yield identical counts.
        data_plane: ``"shared"`` (default) — packed transactions in a
            shared-memory store, binary candidate broadcast, count
            vectors in shared int64 slots; ``"mmap"`` — same, but the
            store is a disk file workers map read-only (out-of-core:
            the minable database is bounded by disk, not RAM); or
            ``"pickle"`` — everything serialized over the pipes.  All
            planes yield identical results.
        store_dir: mmap plane only — directory the store file is
            written into (defaults to the platform temp directory; the
            file is removed at pool shutdown).
        block_budget: zero-copy planes only — split every worker's
            holdings into sub-blocks of at most this many packed items
            (:meth:`~repro.core.packed.PackedDB.block_bounds`), so a
            pass streams the store block by block instead of touching a
            whole partition at once (the out-of-core counting mode).
        two_phase: SON/partition two-phase counting (zero-copy planes
            only).  Phase 1: every worker mines its own partition
            locally at partition-scaled support
            (:mod:`repro.parallel.son`), and the merged union — a
            provable superset of every global F_k — replaces
            ``generate_candidates`` as the candidate source.  Phase 2:
            the ordinary counting passes run over that superset and
            filter at the global threshold, so results stay
            bit-identical to single-phase Apriori while per-pass
            candidate memory is bounded by what was *locally* frequent
            somewhere, not by the full C_k.  With ``checkpoint_dir``
            the phase-1 superset is journaled too, so a resumed mine
            reuses it instead of re-mining the partitions.
        progress: optional callable invoked with one human-readable
            line after phase 1 and after every counting pass (the CLI's
            ``--two-phase`` progress reporting).
        checkpoint_dir: persist one durable checkpoint record per
            completed pass into this directory's ``journal.repro``
            (see :mod:`repro.checkpoint`), so a coordinator killed
            mid-mine can be rerun with ``resume=True``.
        resume: pick up from ``checkpoint_dir``'s journal — journaled
            passes are restored, mining continues at the first
            unjournaled pass, and the combined result is bit-identical
            to an uninterrupted run.  Requires ``checkpoint_dir``.
        recv_timeout: seconds a pass waits for worker replies before
            declaring stragglers failed; receives are poll-based, so no
            call blocks indefinitely.
        max_retries: respawn attempts per failed worker before its block
            is adopted by a survivor or counted in-process.
        backoff_base: first respawn-retry backoff in seconds (doubles
            each attempt).
        faults: optional :class:`~repro.faults.FaultSpec` (or spec
            string) of injected failures, for chaos testing.

    After :meth:`mine`, :attr:`fault_log` holds the
    :class:`~repro.faults.FaultRecord` recovery log of the run,
    :attr:`last_pool_size` the number of worker processes spawned, and
    :attr:`last_pass_overheads` the per-pass coordinator
    broadcast/reduce timing decomposition
    (:class:`PassOverhead`; consumed by ``benchmarks/bench_native.py``).

    **Warm pool.**  By default every :meth:`mine` call spawns and reaps
    its own pool (~0.5 s respawn tax per invocation).  Used as a
    context manager, the miner keeps the pool warm between calls
    instead::

        with NativeCountDistribution(0.01, 4) as miner:
            for _ in range(rounds):
                result = miner.mine(db)   # pool spawned once

    The pool is reused only when it is demonstrably the same
    computation's pool — same ``db`` object, no injected faults, and
    the previous mine finished clean (no recoveries, not degraded);
    anything else quietly rebuilds it.  :attr:`last_pool_reused`
    reports what happened.  Outside a ``with`` block behaviour is
    unchanged; :meth:`close` releases a kept pool early.
    """

    def __init__(
        self,
        min_support: float,
        num_workers: int,
        branching: int = 64,
        leaf_capacity: int = 16,
        max_k: Optional[int] = None,
        start_method: Optional[str] = None,
        kernel: str = "fast",
        data_plane: str = "shared",
        recv_timeout: float = 30.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        faults: Optional[FaultSpec] = None,
        store_dir: Optional[str] = None,
        block_budget: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        two_phase: bool = False,
        progress=None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_k is not None and max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {max_k}")
        if recv_timeout <= 0:
            raise ValueError(f"recv_timeout must be > 0, got {recv_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {backoff_base}")
        self.min_support = min_support
        self.num_workers = num_workers
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.max_k = max_k
        self.start_method = start_method
        self.kernel = validate_kernel(kernel)
        self.data_plane = validate_data_plane(data_plane)
        self.recv_timeout = recv_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.faults = FaultSpec.of(faults)
        if block_budget is not None:
            if block_budget < 1:
                raise ValueError(
                    f"block_budget must be >= 1, got {block_budget}"
                )
            if self.data_plane == "pickle":
                raise ValueError(
                    "block_budget requires a zero-copy data plane "
                    "('shared' or 'mmap'); the pickle plane ships "
                    "materialized blocks"
                )
        if two_phase and self.data_plane == "pickle":
            raise ValueError(
                "two_phase requires a zero-copy data plane ('shared' or "
                "'mmap'); SON phase 1 mines packed store ranges in place"
            )
        if resume and checkpoint_dir is None:
            raise ValueError(
                "resume=True requires a checkpoint_dir to resume from"
            )
        self.store_dir = store_dir
        self.block_budget = block_budget
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.two_phase = two_phase
        self.progress = progress
        self.fault_log: List[FaultRecord] = []
        self.last_pool_size = 0
        self.last_pass_overheads: List[PassOverhead] = []
        self.last_pool_reused = False
        self.last_resume_k = 0
        self._keep_pool = False
        self._pool: Optional[_WorkerPool] = None
        self._pool_db: Optional[TransactionDB] = None
        # The fault schedule the *current* mine() runs under: the
        # declared spec, advanced past journaled passes on resume.
        self._active_faults = self.faults

    @property
    def num_processors(self) -> int:
        """Alias for ``num_workers`` (runner-facade compatibility)."""
        return self.num_workers

    def __enter__(self) -> "NativeCountDistribution":
        self._keep_pool = True
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down a kept warm pool (no-op when none is live)."""
        self._keep_pool = False
        pool, self._pool, self._pool_db = self._pool, None, None
        if pool is not None:
            pool.shutdown()

    def _has_faults(self) -> bool:
        faults = self._active_faults
        return faults is not None and (
            len(faults) > 0 or faults.refusals() > 0
        )

    def _acquire_pool(self, db) -> _WorkerPool:
        """Reuse the kept warm pool for ``db``, or build a fresh one.

        Reuse requires the *same* database object (holdings and the
        shared store were derived from it), no injected faults, and a
        clean previous run — a degraded pool or one that logged
        recoveries is discarded so every ``mine()`` starts from the
        declared worker topology.
        """
        if (
            self._keep_pool
            and self._pool is not None
            and self._pool_db is db
            and not self._has_faults()
            and not self._pool.degraded
            and not self._pool.fault_log
        ):
            self.last_pool_reused = True
            self._pool.pass_overheads.clear()
            return self._pool
        self.last_pool_reused = False
        if self._pool is not None:
            self._pool.shutdown()
            self._pool, self._pool_db = None, None

        # Clamp to non-empty blocks: partition() pads with empty parts
        # when num_workers exceeds the transaction count, and an empty
        # block would pin an idle process for the whole run.
        packed: Optional[PackedDB] = None
        external_store: Optional[Path] = None
        if self.data_plane != "pickle":
            # Pack once; workers attach the store (segment or file) and
            # hold (lo, hi) ranges into it.  The array-backed copy stays
            # in the parent for the in-process recovery rung.  A block
            # budget splits each worker's partition into bounded
            # sub-ranges so a pass streams the store block by block.
            # An already-packed db is used as-is; when it is an attached
            # store file and the plane is mmap, workers map the caller's
            # file directly — the out-of-core generate-once/attach-many
            # path never copies the database anywhere.
            if isinstance(db, PackedDB):
                packed = db
                from ..core.mmapdb import MmapPackedDB

                if (
                    self.data_plane == "mmap"
                    and isinstance(db, MmapPackedDB)
                    and not db.closed
                ):
                    external_store = db.path
                bounds = _even_bounds(len(db), self.num_workers)
            else:
                packed = db.to_packed()
                bounds = db.partition_bounds(self.num_workers)
            holdings = [
                packed.block_bounds(self.block_budget, lo, hi)
                if self.block_budget is not None
                else [(lo, hi)]
                for lo, hi in bounds
                if hi > lo
            ]
        else:
            if isinstance(db, PackedDB):
                raise ValueError(
                    "a packed store can only be mined on a zero-copy "
                    "data plane ('shared' or 'mmap'); the pickle plane "
                    "ships materialized TransactionDB blocks"
                )
            holdings = [
                [list(part.transactions)]
                for part in db.partition(self.num_workers)
                if len(part) > 0
            ]
        context = (
            get_context(self.start_method)
            if self.start_method
            else get_context()
        )
        return _WorkerPool(
            context,
            holdings,
            self.branching,
            self.leaf_capacity,
            self.kernel,
            data_plane=self.data_plane,
            packed=packed,
            store_dir=self.store_dir,
            external_store=external_store,
            recv_timeout=self.recv_timeout,
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            faults=self._active_faults,
        )

    def _release_pool(self, pool: _WorkerPool, clean: bool, db) -> None:
        """Keep a clean pool warm (context-managed) or shut it down."""
        if (
            self._keep_pool
            and clean
            and not self._has_faults()
            and not pool.degraded
            and not pool.fault_log
        ):
            self._pool = pool
            self._pool_db = db
            return
        if pool is self._pool:
            self._pool, self._pool_db = None, None
        pool.shutdown()

    def mine(self, db) -> AprioriResult:
        """Mine ``db`` with counting fanned out over worker processes.

        ``db`` is a :class:`~repro.core.transaction.TransactionDB` or —
        on the zero-copy planes — an already-packed
        :class:`~repro.core.packed.PackedDB`, including an attached
        :class:`~repro.core.mmapdb.MmapPackedDB` store file (the
        generate-to-disk product); on the mmap plane workers map an
        attached file directly, so the database is never copied.
        """
        min_count = min_support_count(self.min_support, max(1, len(db)))
        result = AprioriResult(
            frequent={},
            min_support=self.min_support,
            min_count=min_count,
            num_transactions=len(db),
        )
        self.fault_log = []
        self.last_pool_size = 0
        self.last_pass_overheads = []
        self.last_resume_k = 0

        session, frequent_prev, next_k = self._open_checkpoint(
            "native-cd", db, min_count, result
        )
        try:
            if next_k == 1:
                # Pass 1 is a trivial scan; not worth process overhead.
                frequent_prev = self._pass_one(db, min_count, result)
                if session is not None:
                    session.record(
                        1,
                        result.passes[-1].num_candidates,
                        {s: result.frequent[s] for s in frequent_prev},
                    )
                fire_coordinator_kill(self._active_faults, 1)
            if not frequent_prev:
                return result

            k = max(2, next_k)
            if self.max_k is not None and k > self.max_k:
                return result
            pool = self._acquire_pool(db)
            clean = False
            try:
                self.last_pool_size = pool.num_workers
                candidates_by_k: Optional[Dict[int, List[Itemset]]] = None
                if self.two_phase:
                    restored = (
                        session.phase1 if session is not None else None
                    )
                    if restored is not None:
                        # The journaled superset: a killed phase 2
                        # resumes over the exact candidates it was
                        # counting, no partitions re-mined.
                        candidates_by_k = merge_candidates([restored])
                    else:
                        candidates_by_k = pool.mine_local_candidates(
                            self.min_support, self.max_k
                        )
                        if session is not None:
                            session.record_phase1(candidates_by_k)
                    if self.progress is not None:
                        self.progress(
                            "two-phase: phase 1 complete — "
                            f"{superset_size(candidates_by_k)} superset "
                            f"candidates across {len(candidates_by_k)} "
                            "pass sizes"
                        )
                while frequent_prev and (
                    self.max_k is None or k <= self.max_k
                ):
                    if candidates_by_k is not None:
                        candidates = candidates_by_k.get(k, [])
                    else:
                        candidates = generate_candidates(frequent_prev)
                    if not candidates:
                        break
                    totals = pool.count_pass(k, candidates)
                    frequent_k = {
                        candidates[i]: totals[i]
                        for i in range(len(candidates))
                        if totals[i] >= min_count
                    }
                    result.frequent.update(frequent_k)
                    result.passes.append(
                        PassTrace(
                            k=k,
                            num_candidates=len(candidates),
                            num_frequent=len(frequent_k),
                        )
                    )
                    if session is not None:
                        session.record(
                            k,
                            len(candidates),
                            frequent_k,
                            pool.refusals_consumed,
                        )
                    fire_coordinator_kill(self._active_faults, k)
                    if self.progress is not None and self.two_phase:
                        self.progress(
                            f"two-phase: pass {k} counted "
                            f"{len(candidates)} superset candidates -> "
                            f"{len(frequent_k)} frequent"
                        )
                    frequent_prev = sorted(frequent_k)
                    k += 1
                self.fault_log = list(pool.fault_log)
                self.last_pass_overheads = list(pool.pass_overheads)
                clean = True
            finally:
                self._release_pool(pool, clean, db)
            return result
        finally:
            if session is not None:
                session.close()

    def _open_checkpoint(
        self, algorithm: str, db: TransactionDB, min_count: int, result
    ):
        """Set up the checkpoint session (if any) and the fault schedule.

        Returns ``(session, frequent_prev, next_k)``: with no
        ``checkpoint_dir`` the mine starts from scratch faults-as-
        declared; on resume the journaled passes are already folded into
        ``result`` and :attr:`_active_faults` is the declared spec
        advanced past them (fired coordinator kills and worker events of
        completed passes don't replay; consumed refuse-spawn budget
        stays consumed), so rerunning under the *same* ``--fault-spec``
        continues the schedule.
        """
        self._active_faults = self.faults
        if self.checkpoint_dir is None:
            return None, [], 1
        meta = checkpoint_meta(
            algorithm=algorithm,
            db=db,
            min_support=self.min_support,
            min_count=min_count,
            kernel=self.kernel,
            max_k=self.max_k,
        )
        session = CheckpointSession(self.checkpoint_dir, self.resume, meta)
        try:
            frequent_prev, next_k = session.start(result)
        except Exception:
            session.close()
            raise
        self.last_resume_k = next_k - 1
        if self.faults is not None and next_k > 1:
            self._active_faults = self.faults.advance(
                next_k - 1, session.prior_refusals
            )
        return session, frequent_prev, next_k

    def _pass_one(
        self, db, min_count: int, result: AprioriResult
    ) -> List[Itemset]:
        return serial_pass_one(db, min_count, result)


def serial_pass_one(
    db, min_count: int, result: AprioriResult
) -> List[Itemset]:
    """Serial pass 1 shared by every native miner.

    A single item scan is not worth process overhead, so all native
    modes (CD, IDD, HD) count it in the parent and only fan out from
    pass 2.  ``db`` is a :class:`~repro.core.transaction.TransactionDB`
    or an already-packed :class:`~repro.core.packed.PackedDB` (e.g. an
    attached store file), scanned through zero-copy slices in the
    latter case.  Appends the pass trace to ``result`` and returns the
    sorted frequent 1-item-sets.
    """
    from collections import Counter

    item_counts: Counter = Counter()
    transactions = db.slices() if isinstance(db, PackedDB) else db
    for transaction in transactions:
        item_counts.update(transaction)
    frequent_1 = {
        (item,): count
        for item, count in item_counts.items()
        if count >= min_count
    }
    result.frequent.update(frequent_1)
    result.passes.append(
        PassTrace(
            k=1,
            num_candidates=len(item_counts),
            num_frequent=len(frequent_1),
        )
    )
    return sorted(frequent_1)
