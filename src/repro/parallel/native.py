"""Native multi-process Count Distribution (real parallelism extension).

Everything else in :mod:`repro.parallel` runs on the *simulated* machine
so that 128-processor behaviour is measurable on a laptop.  This module
is the complement: an actual multi-core implementation of the CD
formulation using ``multiprocessing`` — CD is the one formulation whose
processes share nothing but a count reduction, so it maps cleanly onto
OS processes despite Python's GIL.

Per pass, each worker receives the candidate list and its block of
transactions, builds the (replicated) hash tree, counts its block, and
returns its local count table; the parent performs the "global
reduction" by summing the tables.  This mirrors CD exactly, including
its weakness: the tree build is repeated in every worker.

The result is bit-identical to :class:`repro.core.apriori.Apriori`.
"""

from __future__ import annotations

from multiprocessing import get_context
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.apriori import AprioriResult, PassTrace, min_support_count
from ..core.candidates import generate_candidates
from ..core.hashtree import HashTree
from ..core.items import Itemset
from ..core.transaction import TransactionDB

__all__ = ["NativeCountDistribution"]


def _count_block(
    args: Tuple[int, Sequence[Itemset], Sequence[Itemset], int, int],
) -> Dict[Itemset, int]:
    """Worker: build the pass tree and count one transaction block."""
    k, candidates, transactions, branching, leaf_capacity = args
    tree = HashTree(k, branching=branching, leaf_capacity=leaf_capacity)
    tree.insert_all(candidates)
    tree.count_database(transactions)
    return dict(tree.counts())


class NativeCountDistribution:
    """Multi-process CD miner producing serial-identical results.

    Args:
        min_support: fractional minimum support in (0, 1].
        num_workers: OS processes to fan counting out to.
        branching / leaf_capacity: hash tree geometry.
        max_k: optional pass cap.
        start_method: multiprocessing start method (``"fork"`` is
            fastest where available; ``None`` uses the platform default).
    """

    def __init__(
        self,
        min_support: float,
        num_workers: int,
        branching: int = 64,
        leaf_capacity: int = 16,
        max_k: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_k is not None and max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {max_k}")
        self.min_support = min_support
        self.num_workers = num_workers
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.max_k = max_k
        self.start_method = start_method

    def mine(self, db: TransactionDB) -> AprioriResult:
        """Mine ``db`` with counting fanned out over worker processes."""
        min_count = min_support_count(self.min_support, max(1, len(db)))
        result = AprioriResult(
            frequent={},
            min_support=self.min_support,
            min_count=min_count,
            num_transactions=len(db),
        )
        blocks = [
            list(part.transactions) for part in db.partition(self.num_workers)
        ]

        # Pass 1 is a trivial scan; not worth process overhead.
        frequent_prev = self._pass_one(db, min_count, result)
        if not frequent_prev:
            return result

        context = (
            get_context(self.start_method)
            if self.start_method
            else get_context()
        )
        k = 2
        with context.Pool(self.num_workers) as pool:
            while frequent_prev and (self.max_k is None or k <= self.max_k):
                candidates = generate_candidates(frequent_prev)
                if not candidates:
                    break
                tasks = [
                    (k, candidates, block, self.branching, self.leaf_capacity)
                    for block in blocks
                ]
                tables = pool.map(_count_block, tasks)
                counts: Dict[Itemset, int] = {c: 0 for c in candidates}
                for table in tables:
                    for candidate, count in table.items():
                        counts[candidate] += count
                frequent_k = {
                    c: n for c, n in counts.items() if n >= min_count
                }
                result.frequent.update(frequent_k)
                result.passes.append(
                    PassTrace(
                        k=k,
                        num_candidates=len(candidates),
                        num_frequent=len(frequent_k),
                    )
                )
                frequent_prev = sorted(frequent_k)
                k += 1
        return result

    def _pass_one(
        self, db: TransactionDB, min_count: int, result: AprioriResult
    ) -> List[Itemset]:
        from collections import Counter

        item_counts: Counter = Counter()
        for transaction in db:
            item_counts.update(transaction)
        frequent_1 = {
            (item,): count
            for item, count in item_counts.items()
            if count >= min_count
        }
        result.frequent.update(frequent_1)
        result.passes.append(
            PassTrace(
                k=1,
                num_candidates=len(item_counts),
                num_frequent=len(frequent_1),
            )
        )
        return sorted(frequent_1)
