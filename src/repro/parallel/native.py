"""Native multi-process Count Distribution (real parallelism extension).

Everything else in :mod:`repro.parallel` runs on the *simulated* machine
so that 128-processor behaviour is measurable on a laptop.  This module
is the complement: an actual multi-core implementation of the CD
formulation using ``multiprocessing`` — CD is the one formulation whose
processes share nothing but a count reduction, so it maps cleanly onto
OS processes despite Python's GIL.

The workers form a **persistent pool**: one process per non-empty
transaction block, created once per
:meth:`NativeCountDistribution.mine` call.  Each worker receives its
block exactly once — by fork inheritance where the start method supports
it, by a one-shot pickle at process start otherwise — and then serves
*every* pass over a pipe, receiving only ``(k, candidates)`` and
returning a count vector aligned with the candidate order.

The pool is **fault tolerant**.  Receives are poll-based with a per-pass
deadline (no call ever blocks indefinitely); a worker that times out,
dies, or replies with a malformed vector is declared failed, and its
transaction block is recovered down a fixed degradation ladder:

1. **respawn** — a fresh replacement process takes over the block, with
   bounded retries under exponential backoff;
2. **adopt** — if respawning fails (e.g. the OS refuses to fork), a
   surviving worker permanently adopts the block;
3. **in-process** — with no survivors the parent counts the block itself;
   when the whole pool collapses, mining continues fully in-process.

Every rung recounts the failed block from scratch, so the mined result
is bit-identical to serial :class:`~repro.core.apriori.Apriori` no
matter which failures occur.  Two safeguards keep concurrent failures
from cross-contaminating: request/reply frames carry an echoed sequence
number (a slow worker's late reply to an old request is discarded, not
mistaken for the answer to a new one), and workers that failed in the
same pass are never asked to adopt each other's blocks — each gets its
own trip down the ladder.  Worker-side exceptions do *not* kill the
worker silently: they come back as a structured error frame and raise
:class:`WorkerError` in the parent — a deterministic application error
is surfaced, while process deaths (crash, OOM-kill, injected kill) are
recovered.

Failure handling is driven by — and tested through — the deterministic
fault-injection layer in :mod:`repro.faults`.
"""

from __future__ import annotations

import os
import time
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.apriori import AprioriResult, PassTrace, min_support_count
from ..core.candidates import generate_candidates
from ..core.items import Itemset
from ..core.kernels import make_counter, validate_kernel
from ..core.transaction import TransactionDB
from ..faults import FaultEvent, FaultRecord, FaultSpec

__all__ = ["NativeCountDistribution", "WorkerError"]

# Exit status of an injected kill; distinguishable from a Python crash
# in `ps` output while debugging, invisible to the recovery logic (any
# pipe EOF is "died").
_KILLED_EXIT = 17


class WorkerError(RuntimeError):
    """A worker reported a structured error frame (application failure).

    Raised by the parent instead of attempting recovery: unlike a
    process death, an in-worker exception is deterministic — respawning
    and recounting the same block with the same candidates would fail
    the same way.
    """


def _count_block_vector(
    blocks: Sequence[Sequence[Itemset]],
    k: int,
    candidates: Sequence[Itemset],
    kernel: str,
    branching: int,
    leaf_capacity: int,
) -> List[int]:
    """Count one pass over a list of blocks; vector in candidate order.

    Shared by the worker loop and the parent's in-process degradation
    path, so both produce identical counts by construction.
    """
    counter = make_counter(
        k,
        candidates,
        kernel=kernel,
        branching=branching,
        leaf_capacity=leaf_capacity,
    )
    for block in blocks:
        counter.count_database(block)
    counts = counter.counts()
    return [counts[c] for c in candidates]


def _worker_main(
    conn,
    blocks: List[Sequence[Itemset]],
    branching: int,
    leaf_capacity: int,
    kernel: str,
    fault_events: Sequence[FaultEvent] = (),
) -> None:
    """Worker loop: hold transaction blocks, count pass after pass.

    Request frames (parent → worker):

    * ``("pass", seq, k, candidates)`` — count all held blocks;
    * ``("adopt", seq, new_blocks, k, candidates)`` — permanently add a
      dead peer's blocks to the holdings and count *only those* for the
      current pass (the worker already returned its own counts);
    * ``None`` — shut down.

    Reply frames (worker → parent): ``("ok", seq, vector)`` on success
    or ``("error", seq, message)`` when counting raised — the parent
    surfaces the message instead of seeing a silent death.  Every reply
    echoes the request's ``seq``, so the parent can tell a reply to the
    frame it just sent from a late reply to an earlier frame (a slow
    worker's stale pass reply must never be read as an adopt result).

    ``fault_events`` are this worker's injected failures from a
    :class:`~repro.faults.FaultSpec`; each fires once.
    """
    pending = list(fault_events)

    def take(kind: str, k: int) -> Optional[FaultEvent]:
        for index, event in enumerate(pending):
            if event.kind == kind and event.k == k:
                return pending.pop(index)
        return None

    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            if message[0] == "adopt":
                _, seq, new_blocks, k, candidates = message
                blocks.extend(new_blocks)
                count_blocks: Sequence = new_blocks
            else:
                _, seq, k, candidates = message
                count_blocks = blocks
            kill = take("kill", k)
            if kill is not None and kill.when == "before":
                os._exit(_KILLED_EXIT)
            delay = take("delay", k)
            corrupt = take("corrupt", k)
            try:
                if take("error", k) is not None:
                    raise RuntimeError(f"injected worker error at pass {k}")
                vector = _count_block_vector(
                    count_blocks, k, candidates, kernel, branching, leaf_capacity
                )
            except Exception as exc:  # surfaced, never swallowed
                conn.send(("error", seq, f"{type(exc).__name__}: {exc}"))
                continue
            if kill is not None:  # when == "mid": die after the work
                os._exit(_KILLED_EXIT)
            if delay is not None:
                time.sleep(delay.delay)
            if corrupt is not None:
                vector = vector[:-1]
            conn.send(("ok", seq, vector))
    except EOFError:
        pass
    finally:
        conn.close()


class _Slot:
    """One pool slot: a worker process, its pipe, and the blocks it holds."""

    def __init__(self, process, conn, blocks, events):
        self.process = process
        self.conn = conn
        self.blocks: List[Sequence[Itemset]] = blocks
        self.events: List[FaultEvent] = events


class _WorkerPool:
    """Persistent, fault-tolerant per-``mine()`` pool of counting processes.

    One process per non-empty transaction block.  Under the ``fork``
    start method the block is inherited through the process image; under
    ``spawn`` / ``forkserver`` it is pickled exactly once into the
    child's argument tuple.  Either way, passes after the first ship
    only candidates.

    Args:
        recv_timeout: per-pass reply deadline in seconds; receives are
            poll-based so no call blocks past it.
        max_retries: respawn attempts per failed worker (beyond these
            the block is adopted by a survivor or counted in-process).
        backoff_base: first-retry backoff; doubles per attempt.
        faults: optional :class:`~repro.faults.FaultSpec` — worker
            events ship to the workers, ``refuse-spawn`` budgets gate
            the pool's own respawn attempts.
    """

    def __init__(
        self,
        context,
        blocks: Sequence[Sequence[Itemset]],
        branching: int,
        leaf_capacity: int,
        kernel: str,
        recv_timeout: float = 30.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        faults: Optional[FaultSpec] = None,
    ):
        self._context = context
        self._branching = branching
        self._leaf_capacity = leaf_capacity
        self._kernel = kernel
        self.recv_timeout = recv_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self._faults = faults or FaultSpec()
        # refuse-spawn gates *respawns* (recovery), not the initial pool.
        self._refusals_left = self._faults.refusals()
        # Monotonic request counter: every frame carries it and every
        # reply echoes it, so stale replies are recognizable (see
        # _read_reply).
        self._seq = 0
        self._slots: Dict[int, _Slot] = {}
        self._fallback_blocks: List[Sequence[Itemset]] = []
        self.fault_log: List[FaultRecord] = []
        try:
            for wid, block in enumerate(blocks):
                events = self._faults.worker_events(wid)
                # Each slot holds a *list* of blocks: adoption appends a
                # dead peer's blocks to a survivor's holdings.
                slot = self._spawn([list(block)], events, gated=False)
                if slot is None:  # pragma: no cover - spawn failed at startup
                    raise OSError(f"could not start worker {wid}")
                self._slots[wid] = slot
        except Exception:
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        """Live worker processes (excludes in-process fallback blocks)."""
        return len(self._slots)

    @property
    def degraded(self) -> bool:
        """True once any block is being counted in-process."""
        return bool(self._fallback_blocks)

    # ------------------------------------------------------------------
    # The pass fan-out
    # ------------------------------------------------------------------

    def count_pass(self, k: int, candidates: Sequence[Itemset]) -> List[int]:
        """Fan one pass out to every worker; return the summed count vector.

        Detects failed workers within ``recv_timeout`` (poll-based) and
        recovers their blocks before returning, so the totals always
        cover every transaction exactly once.
        """
        totals = [0] * len(candidates)
        # Snapshot: blocks that fall back *during* this pass are counted
        # by their recovery rung, not double-counted here.
        fallback_snapshot = list(self._fallback_blocks)
        failures: List[Tuple[int, str]] = []
        pending: Dict[object, Tuple[int, int]] = {}
        for wid, slot in list(self._slots.items()):
            seq = self._next_seq()
            try:
                slot.conn.send(("pass", seq, k, candidates))
                pending[slot.conn] = (wid, seq)
            except (BrokenPipeError, OSError, ValueError):
                failures.append((wid, "died"))
        deadline = time.monotonic() + self.recv_timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            for conn in _connection_wait(list(pending), timeout=remaining):
                wid, seq = pending[conn]
                vector, failure = self._read_reply(
                    conn, wid, k, len(candidates), seq
                )
                if failure == "stale":
                    continue  # keep waiting for the current reply
                del pending[conn]
                if vector is None:
                    failures.append((wid, failure))
                else:
                    for index, count in enumerate(vector):
                        totals[index] += count
        for wid, _seq in pending.values():
            failures.append((wid, "timeout"))
        # Workers that failed this pass but have not been recovered yet
        # must not serve as adoption targets for each other: a dead one
        # would crash the ask, and a slow-but-alive one would race its
        # own recovery (its block would end up counted twice).
        unrecovered = [wid for wid, _ in failures]
        for wid, failure in failures:
            unrecovered.remove(wid)
            vector = self._recover(
                wid, k, candidates, failure, exclude=frozenset(unrecovered)
            )
            for index, count in enumerate(vector):
                totals[index] += count
        if fallback_snapshot:
            vector = self._count_inprocess(fallback_snapshot, k, candidates)
            for index, count in enumerate(vector):
                totals[index] += count
        return totals

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _read_reply(
        self, conn, wid: int, k: int, expected: int, seq: int
    ) -> Tuple[Optional[List[int]], str]:
        """Read one reply frame; return (vector, "") or (None, failure).

        A reply echoing a sequence number other than ``seq`` answers an
        *earlier* request (a slow worker draining its queue) and is
        reported as ``"stale"``: the caller discards it and keeps
        waiting rather than mistaking it for the current reply — even
        when the payload happens to have the expected length.
        """
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            return None, "died"
        if not (isinstance(frame, tuple) and len(frame) == 3):
            return None, "corrupt"
        tag, frame_seq, payload = frame
        if frame_seq != seq:
            return None, "stale"
        if tag == "error":
            raise WorkerError(
                f"worker {wid} failed at pass {k}: {payload}"
            )
        if tag != "ok" or not isinstance(payload, list) or len(payload) != expected:
            return None, "corrupt"
        return payload, ""

    # ------------------------------------------------------------------
    # Recovery ladder
    # ------------------------------------------------------------------

    def _recover(
        self,
        wid: int,
        k: int,
        candidates: Sequence[Itemset],
        failure: str,
        exclude: frozenset = frozenset(),
    ) -> List[int]:
        """Recount a failed worker's blocks; reassign them for future passes.

        Ladder: respawn (with retries + exponential backoff) → adoption
        by a surviving worker → in-process counting.  Whatever rung
        succeeds, the returned vector covers exactly the failed slot's
        blocks for pass ``k``.

        ``exclude`` holds worker ids that also failed this pass and are
        still awaiting their own recovery; they are not survivors (their
        pass-``k`` counts were never collected) and must not be asked to
        adopt.
        """
        slot = self._slots.pop(wid, None)
        if slot is None:  # pragma: no cover - defensive; _recover runs
            # at most once per wid and adoption never touches excluded
            # same-pass failures, so the slot is always present.
            return [0] * len(candidates)
        blocks = slot.blocks
        # A replacement must not replay the failure that killed its
        # predecessor; it inherits only events for *future* passes.
        future_events = [e for e in slot.events if e.k > k]
        self._discard(slot)

        attempts = 0
        expected = len(candidates)
        for attempt in range(self.max_retries + 1):
            if attempt > 0:
                time.sleep(self.backoff_base * (2 ** (attempt - 1)))
            attempts += 1
            replacement = self._spawn(blocks, future_events, gated=True)
            if replacement is None:
                continue
            vector = self._ask(
                replacement, ("pass", k, candidates), wid, k, expected
            )
            if vector is not None:
                self._slots[wid] = replacement
                self.fault_log.append(
                    FaultRecord(k, wid, failure, "respawned", attempts)
                )
                return vector
            self._discard(replacement)

        for survivor_id in list(self._slots):
            if survivor_id in exclude:
                continue
            survivor = self._slots[survivor_id]
            vector = self._ask(
                survivor, ("adopt", blocks, k, candidates), survivor_id, k, expected
            )
            if vector is not None:
                survivor.blocks.extend(blocks)
                self.fault_log.append(
                    FaultRecord(k, wid, failure, "adopted", attempts)
                )
                return vector
            # The survivor died while adopting.  Its own counts for this
            # pass were already collected, so its blocks only need to
            # move in-process for *future* passes.
            del self._slots[survivor_id]
            self._discard(survivor)
            self._fallback_blocks.extend(survivor.blocks)
            self.fault_log.append(
                FaultRecord(k, survivor_id, "died", "inprocess", 0)
            )

        self._fallback_blocks.extend(blocks)
        self.fault_log.append(
            FaultRecord(k, wid, failure, "inprocess", attempts)
        )
        return self._count_inprocess(blocks, k, candidates)

    def _ask(
        self, slot: _Slot, request, wid: int, k: int, expected: int
    ) -> Optional[List[int]]:
        """Send one request to one slot; poll-bounded reply or ``None``.

        The request (sans sequence number) gains a fresh ``seq`` before
        sending; stale replies to earlier frames are drained and
        ignored, so only the answer to *this* request can be returned.
        """
        seq = self._next_seq()
        try:
            slot.conn.send((request[0], seq) + tuple(request[1:]))
        except (BrokenPipeError, OSError, ValueError):
            return None
        deadline = time.monotonic() + self.recv_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not slot.conn.poll(remaining):
                return None
            vector, failure = self._read_reply(slot.conn, wid, k, expected, seq)
            if failure != "stale":
                return vector

    def _spawn(
        self,
        blocks: List[Sequence[Itemset]],
        events: List[FaultEvent],
        gated: bool,
    ) -> Optional[_Slot]:
        """Start one worker process; ``None`` if spawning is refused/fails."""
        if gated and self._refusals_left > 0:
            self._refusals_left -= 1
            return None
        try:
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    blocks,
                    self._branching,
                    self._leaf_capacity,
                    self._kernel,
                    events,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
        except OSError:
            return None
        return _Slot(process, parent_conn, blocks, events)

    def _count_inprocess(
        self, blocks: Sequence, k: int, candidates: Sequence[Itemset]
    ) -> List[int]:
        return _count_block_vector(
            blocks, k, candidates, self._kernel, self._branching,
            self._leaf_capacity,
        )

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _discard(self, slot: _Slot) -> None:
        """Close a slot's pipe and reap its process (terminate if needed).

        A declared-failed worker may merely be slow; terminating it
        prevents a late reply from desynchronizing a later pass.
        """
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join(timeout=10)

    def shutdown(self) -> None:
        """Send shutdown sentinels and reap the worker processes."""
        for slot in self._slots.values():
            try:
                slot.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
            finally:
                slot.conn.close()
        for slot in self._slots.values():
            slot.process.join(timeout=10)
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join()
        self._slots = {}
        self._fallback_blocks = []

    def __enter__(self) -> "_WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class NativeCountDistribution:
    """Multi-process CD miner producing serial-identical results.

    Args:
        min_support: fractional minimum support in (0, 1].
        num_workers: OS processes to fan counting out to (clamped to the
            number of non-empty transaction blocks — idle workers are
            never spawned).
        branching / leaf_capacity: hash tree geometry.
        max_k: optional pass cap.
        start_method: multiprocessing start method (``"fork"`` is
            fastest where available; ``None`` uses the platform default).
        kernel: per-worker counting kernel, ``"fast"`` (default) or
            ``"reference"``; both yield identical counts.
        recv_timeout: seconds a pass waits for worker replies before
            declaring stragglers failed; receives are poll-based, so no
            call blocks indefinitely.
        max_retries: respawn attempts per failed worker before its block
            is adopted by a survivor or counted in-process.
        backoff_base: first respawn-retry backoff in seconds (doubles
            each attempt).
        faults: optional :class:`~repro.faults.FaultSpec` (or spec
            string) of injected failures, for chaos testing.

    After :meth:`mine`, :attr:`fault_log` holds the
    :class:`~repro.faults.FaultRecord` recovery log of the run and
    :attr:`last_pool_size` the number of worker processes spawned.
    """

    def __init__(
        self,
        min_support: float,
        num_workers: int,
        branching: int = 64,
        leaf_capacity: int = 16,
        max_k: Optional[int] = None,
        start_method: Optional[str] = None,
        kernel: str = "fast",
        recv_timeout: float = 30.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        faults: Optional[FaultSpec] = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_k is not None and max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {max_k}")
        if recv_timeout <= 0:
            raise ValueError(f"recv_timeout must be > 0, got {recv_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {backoff_base}")
        self.min_support = min_support
        self.num_workers = num_workers
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.max_k = max_k
        self.start_method = start_method
        self.kernel = validate_kernel(kernel)
        self.recv_timeout = recv_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.faults = FaultSpec.of(faults)
        self.fault_log: List[FaultRecord] = []
        self.last_pool_size = 0

    @property
    def num_processors(self) -> int:
        """Alias for ``num_workers`` (runner-facade compatibility)."""
        return self.num_workers

    def mine(self, db: TransactionDB) -> AprioriResult:
        """Mine ``db`` with counting fanned out over worker processes."""
        min_count = min_support_count(self.min_support, max(1, len(db)))
        result = AprioriResult(
            frequent={},
            min_support=self.min_support,
            min_count=min_count,
            num_transactions=len(db),
        )
        self.fault_log = []
        self.last_pool_size = 0

        # Pass 1 is a trivial scan; not worth process overhead.
        frequent_prev = self._pass_one(db, min_count, result)
        if not frequent_prev:
            return result

        # Clamp to non-empty blocks: partition() pads with empty parts
        # when num_workers exceeds the transaction count, and an empty
        # block would pin an idle process for the whole run.
        blocks = [
            list(part.transactions)
            for part in db.partition(self.num_workers)
            if len(part) > 0
        ]
        context = (
            get_context(self.start_method)
            if self.start_method
            else get_context()
        )
        k = 2
        with _WorkerPool(
            context,
            blocks,
            self.branching,
            self.leaf_capacity,
            self.kernel,
            recv_timeout=self.recv_timeout,
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            faults=self.faults,
        ) as pool:
            self.last_pool_size = pool.num_workers
            while frequent_prev and (self.max_k is None or k <= self.max_k):
                candidates = generate_candidates(frequent_prev)
                if not candidates:
                    break
                totals = pool.count_pass(k, candidates)
                frequent_k = {
                    candidates[i]: totals[i]
                    for i in range(len(candidates))
                    if totals[i] >= min_count
                }
                result.frequent.update(frequent_k)
                result.passes.append(
                    PassTrace(
                        k=k,
                        num_candidates=len(candidates),
                        num_frequent=len(frequent_k),
                    )
                )
                frequent_prev = sorted(frequent_k)
                k += 1
            self.fault_log = list(pool.fault_log)
        return result

    def _pass_one(
        self, db: TransactionDB, min_count: int, result: AprioriResult
    ) -> List[Itemset]:
        from collections import Counter

        item_counts: Counter = Counter()
        for transaction in db:
            item_counts.update(transaction)
        frequent_1 = {
            (item,): count
            for item, count in item_counts.items()
            if count >= min_count
        }
        result.frequent.update(frequent_1)
        result.passes.append(
            PassTrace(
                k=1,
                num_candidates=len(item_counts),
                num_frequent=len(frequent_1),
            )
        )
        return sorted(frequent_1)
