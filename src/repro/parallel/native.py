"""Native multi-process Count Distribution (real parallelism extension).

Everything else in :mod:`repro.parallel` runs on the *simulated* machine
so that 128-processor behaviour is measurable on a laptop.  This module
is the complement: an actual multi-core implementation of the CD
formulation using ``multiprocessing`` — CD is the one formulation whose
processes share nothing but a count reduction, so it maps cleanly onto
OS processes despite Python's GIL.

The workers form a **persistent pool**: one process per transaction
block, created once per :meth:`NativeCountDistribution.mine` call.
Each worker receives its block exactly once — by fork inheritance where
the start method supports it, by a one-shot pickle at process start
otherwise — and then serves *every* pass over a pipe, receiving only
``(k, candidates)`` and returning a bare count vector aligned with the
candidate order.  This removes the per-pass costs the naive
``Pool.map`` version paid: re-pickling the transaction partition every
pass and shipping candidate tuples back with every count.

Counting inside a worker goes through the fast kernel by default (flat
hash tree, triangular pass-2 counter); the result is bit-identical to
:class:`repro.core.apriori.Apriori` with either kernel.
"""

from __future__ import annotations

from multiprocessing import get_context
from typing import List, Optional, Sequence

from ..core.apriori import AprioriResult, PassTrace, min_support_count
from ..core.candidates import generate_candidates
from ..core.items import Itemset
from ..core.kernels import make_counter, validate_kernel
from ..core.transaction import TransactionDB

__all__ = ["NativeCountDistribution"]


def _worker_main(
    conn,
    transactions: Sequence[Itemset],
    branching: int,
    leaf_capacity: int,
    kernel: str,
) -> None:
    """Worker loop: hold one transaction block, count pass after pass.

    Receives ``(k, candidates)`` messages and replies with the block's
    count vector in candidate order; a ``None`` message shuts the
    worker down.  The block itself arrived once, at process start.
    """
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            k, candidates = message
            counter = make_counter(
                k,
                candidates,
                kernel=kernel,
                branching=branching,
                leaf_capacity=leaf_capacity,
            )
            counter.count_database(transactions)
            counts = counter.counts()
            conn.send([counts[c] for c in candidates])
    except EOFError:
        pass
    finally:
        conn.close()


class _WorkerPool:
    """Persistent per-``mine()`` pool of counting processes.

    One process per transaction block.  Under the ``fork`` start method
    the block is inherited through the process image; under ``spawn`` /
    ``forkserver`` it is pickled exactly once into the child's argument
    tuple.  Either way, passes after the first ship only candidates.
    """

    def __init__(
        self,
        context,
        blocks: Sequence[Sequence[Itemset]],
        branching: int,
        leaf_capacity: int,
        kernel: str,
    ):
        self._processes: List = []
        self._connections: List = []
        try:
            for block in blocks:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, block, branching, leaf_capacity, kernel),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._processes.append(process)
                self._connections.append(parent_conn)
        except Exception:
            self.shutdown()
            raise

    def count_pass(
        self, k: int, candidates: Sequence[Itemset]
    ) -> List[int]:
        """Fan one pass out to every worker; return the summed count vector."""
        for conn in self._connections:
            conn.send((k, candidates))
        totals = [0] * len(candidates)
        for conn in self._connections:
            vector = conn.recv()
            for index, count in enumerate(vector):
                totals[index] += count
        return totals

    def shutdown(self) -> None:
        """Send shutdown sentinels and reap the worker processes."""
        for conn in self._connections:
            try:
                conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
            finally:
                conn.close()
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join()
        self._connections = []
        self._processes = []

    def __enter__(self) -> "_WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class NativeCountDistribution:
    """Multi-process CD miner producing serial-identical results.

    Args:
        min_support: fractional minimum support in (0, 1].
        num_workers: OS processes to fan counting out to.
        branching / leaf_capacity: hash tree geometry.
        max_k: optional pass cap.
        start_method: multiprocessing start method (``"fork"`` is
            fastest where available; ``None`` uses the platform default).
        kernel: per-worker counting kernel, ``"fast"`` (default) or
            ``"reference"``; both yield identical counts.
    """

    def __init__(
        self,
        min_support: float,
        num_workers: int,
        branching: int = 64,
        leaf_capacity: int = 16,
        max_k: Optional[int] = None,
        start_method: Optional[str] = None,
        kernel: str = "fast",
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_k is not None and max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {max_k}")
        self.min_support = min_support
        self.num_workers = num_workers
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.max_k = max_k
        self.start_method = start_method
        self.kernel = validate_kernel(kernel)

    def mine(self, db: TransactionDB) -> AprioriResult:
        """Mine ``db`` with counting fanned out over worker processes."""
        min_count = min_support_count(self.min_support, max(1, len(db)))
        result = AprioriResult(
            frequent={},
            min_support=self.min_support,
            min_count=min_count,
            num_transactions=len(db),
        )

        # Pass 1 is a trivial scan; not worth process overhead.
        frequent_prev = self._pass_one(db, min_count, result)
        if not frequent_prev:
            return result

        blocks = [
            list(part.transactions) for part in db.partition(self.num_workers)
        ]
        context = (
            get_context(self.start_method)
            if self.start_method
            else get_context()
        )
        k = 2
        with _WorkerPool(
            context, blocks, self.branching, self.leaf_capacity, self.kernel
        ) as pool:
            while frequent_prev and (self.max_k is None or k <= self.max_k):
                candidates = generate_candidates(frequent_prev)
                if not candidates:
                    break
                totals = pool.count_pass(k, candidates)
                frequent_k = {
                    candidates[i]: totals[i]
                    for i in range(len(candidates))
                    if totals[i] >= min_count
                }
                result.frequent.update(frequent_k)
                result.passes.append(
                    PassTrace(
                        k=k,
                        num_candidates=len(candidates),
                        num_frequent=len(frequent_k),
                    )
                )
                frequent_prev = sorted(frequent_k)
                k += 1
        return result

    def _pass_one(
        self, db: TransactionDB, min_count: int, result: AprioriResult
    ) -> List[Itemset]:
        from collections import Counter

        item_counts: Counter = Counter()
        for transaction in db:
            item_counts.update(transaction)
        frequent_1 = {
            (item,): count
            for item, count in item_counts.items()
            if count >= min_count
        }
        result.frequent.update(frequent_1)
        result.passes.append(
            PassTrace(
                k=1,
                num_candidates=len(item_counts),
                num_frequent=len(frequent_1),
            )
        )
        return sorted(frequent_1)
