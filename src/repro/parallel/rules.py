"""Parallel rule generation (the discovery task's second step).

Section II: "The parallel implementation of the second step is
straightforward and is discussed in [6]" — after mining, every
processor holds the complete frequent-set table (all four formulations
end each pass with a global exchange), so rule generation needs no
further data movement: the frequent item-sets are partitioned among
processors, each derives the rules of its share locally with
ap-genrules, and a final all-to-all broadcast assembles the rule set.

The only interesting design decision is the partitioning: rule
generation cost for an item-set Z is exponential-ish in |Z| (up to
2^|Z| consequents), so a round-robin split by item-set would imbalance
badly on mixed sizes.  We bin-pack on the per-item-set consequent-count
estimate instead, reusing the same LPT packer IDD uses for candidates.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..cluster.cluster import VirtualCluster
from ..cluster.machine import CRAY_T3E, MachineSpec
from ..core.items import Itemset
from ..core.partition import bin_pack
from ..core.rules import AssociationRule, _rules_for_itemset

__all__ = ["ParallelRuleResult", "generate_rules_parallel"]


class ParallelRuleResult:
    """Rules plus the simulated parallel cost of deriving them.

    Attributes:
        rules: the derived rules, sorted exactly as the serial
            generator sorts them (bit-identical output).
        total_time: simulated response time of the rule-generation step.
        breakdown: mean per-processor accounting (rulegen, comm, idle).
        itemsets_per_processor: how many frequent item-sets each
            processor derived rules from.
    """

    def __init__(
        self,
        rules: List[AssociationRule],
        total_time: float,
        breakdown: Dict[str, float],
        itemsets_per_processor: List[int],
    ):
        self.rules = rules
        self.total_time = total_time
        self.breakdown = breakdown
        self.itemsets_per_processor = itemsets_per_processor

    def __len__(self) -> int:
        return len(self.rules)


def _consequent_work_estimate(itemset: Itemset) -> int:
    """Upper bound on consequents examined for one item-set (2^|Z| - 2)."""
    return max(1, (1 << len(itemset)) - 2)


def generate_rules_parallel(
    frequent: Mapping[Itemset, int],
    num_transactions: int,
    min_confidence: float,
    num_processors: int,
    machine: MachineSpec = CRAY_T3E,
) -> ParallelRuleResult:
    """Derive rules from frequent item-sets on the simulated cluster.

    Args:
        frequent: downward-closed item-set → support count table (every
            processor holds it in full after mining).
        num_transactions: |T|.
        min_confidence: threshold in (0, 1].
        num_processors: P.
        machine: cost model.

    Returns:
        A :class:`ParallelRuleResult` whose ``rules`` equal the serial
        :func:`repro.core.rules.generate_rules` output exactly.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )
    if num_transactions <= 0:
        raise ValueError("num_transactions must be positive")
    if num_processors < 1:
        raise ValueError(
            f"num_processors must be >= 1, got {num_processors}"
        )

    cluster = VirtualCluster(num_processors, machine)

    # Partition the rule-bearing item-sets by estimated consequent work.
    candidates = [s for s in frequent if len(s) >= 2]
    weights: Dict[Tuple[int, ...], int] = {
        s: _consequent_work_estimate(s) for s in candidates
    }
    bins = bin_pack(weights, num_processors) if candidates else [
        [] for _ in range(num_processors)
    ]

    rules: List[AssociationRule] = []
    itemsets_per_processor: List[int] = []
    for pid, assigned in enumerate(bins):
        itemsets_per_processor.append(len(assigned))
        derived: List[AssociationRule] = []
        examined = 0
        # One antecedent-support memo per processor: each processor
        # holds the full table locally, so sharing fetches across its
        # assigned item-sets is free (no cross-processor state).
        support_memo: Dict[Itemset, int] = {}
        for itemset in assigned:
            examined += weights[itemset]
            derived.extend(
                _rules_for_itemset(
                    itemset,
                    frequent[itemset],
                    frequent,
                    num_transactions,
                    min_confidence,
                    support_memo,
                )
            )
        # Each consequent examined costs one table lookup + one divide;
        # priced like a candidate-generation unit.
        cluster.advance(pid, examined * machine.t_candgen, "rulegen")
        rules.extend(derived)

    # All-to-all broadcast of the derived rules (each rule ships its two
    # item-sets and two measures).
    if rules:
        rule_bytes = sum(
            (len(r.antecedent) + len(r.consequent)) * machine.bytes_per_item
            + 2 * machine.bytes_per_count
            for r in rules
        )
        cluster.all_to_all_broadcast(rule_bytes / num_processors)
    cluster.synchronize()

    rules.sort(
        key=lambda r: (-r.confidence, -r.support, r.antecedent, r.consequent)
    )
    return ParallelRuleResult(
        rules=rules,
        total_time=cluster.elapsed(),
        breakdown=cluster.breakdown_mean(),
        itemsets_per_processor=itemsets_per_processor,
    )
