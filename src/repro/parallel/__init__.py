"""Parallel Apriori formulations: CD, DD (+comm), IDD and HD."""

from .base import MiningResult, ParallelMiner, ParallelPassStats
from .count_distribution import CountDistribution
from .data_distribution import DataDistribution
from .hpa import HashPartitionedApriori, hpa_owner
from .hybrid import HybridDistribution, choose_grid
from .intelligent_dd import IntelligentDataDistribution
from .native import NativeCountDistribution, PassOverhead, WorkerError
from .native_idd import (
    NativeHybridDistribution,
    NativeIntelligentDistribution,
    NativePartitionedMiner,
)
from .rules import ParallelRuleResult, generate_rules_parallel
from .runner import ALGORITHMS, compare_with_serial, make_miner, mine_parallel

__all__ = [
    "ALGORITHMS",
    "CountDistribution",
    "DataDistribution",
    "HashPartitionedApriori",
    "HybridDistribution",
    "IntelligentDataDistribution",
    "MiningResult",
    "NativeCountDistribution",
    "NativeHybridDistribution",
    "NativeIntelligentDistribution",
    "NativePartitionedMiner",
    "ParallelMiner",
    "PassOverhead",
    "ParallelPassStats",
    "ParallelRuleResult",
    "WorkerError",
    "choose_grid",
    "compare_with_serial",
    "generate_rules_parallel",
    "hpa_owner",
    "make_miner",
    "mine_parallel",
]
