"""Data Distribution (DD) — Agrawal & Shafer's formulation (Section III-B).

Candidates are split round-robin over processors; every processor must
therefore see *every* transaction, so each pass circulates all database
blocks through all processors.  The paper identifies three
inefficiencies, each of which this implementation reproduces:

1. **Contended communication** — each processor sprays its local pages
   at all P-1 peers; on sparse networks the pattern costs significantly
   more than O(N) (modeled by the machine's contention coefficient).
2. **Idling** — sends block on full buffers; communication does not
   overlap computation (modeled by blocking exchange rounds).
3. **Redundant computation** — a transaction traverses every
   processor's hash tree from the root with *all* of its items, because
   round-robin placement gives no way to tell which tree might hold a
   matching candidate.  The redundancy is not modeled but *measured*:
   the executed traversals really do visit V(C, L/P) > V(C, L)/P leaves
   (Figure 11).

The ``comm_scheme`` knob selects the paper's "DD+comm" hybrid (Figure
10): DD's round-robin candidate placement combined with IDD's
contention-free, overlapped ring pipeline — used to separate how much of
IDD's win comes from communication vs. from intelligent partitioning.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..cluster.cluster import VirtualCluster
from ..cluster.collectives import all_to_all_broadcast_naive_time
from ..cluster.machine import subset_time
from ..core.hashtree import HashTreeStats
from ..core.items import Itemset
from ..core.partition import partition_round_robin
from ..core.transaction import TransactionDB
from .base import ParallelMiner, ParallelPassStats

__all__ = ["DataDistribution"]

_COMM_SCHEMES = ("naive", "ring")


class DataDistribution(ParallelMiner):
    """The DD parallel formulation (and the DD+comm variant).

    Args:
        comm_scheme: ``"naive"`` is DD as published (contended all-to-all
            page scatter, no compute/communication overlap); ``"ring"``
            is the paper's DD+comm experiment (IDD's communication
            mechanism under DD's candidate placement).
        **kwargs: see :class:`ParallelMiner`.
    """

    name = "DD"

    def __init__(self, *args, comm_scheme: str = "naive", **kwargs):
        super().__init__(*args, **kwargs)
        if comm_scheme not in _COMM_SCHEMES:
            raise ValueError(
                f"comm_scheme must be one of {_COMM_SCHEMES}, got {comm_scheme!r}"
            )
        self.comm_scheme = comm_scheme
        if comm_scheme == "ring":
            self.name = "DD+comm"

    def _run_pass(
        self,
        cluster: VirtualCluster,
        k: int,
        candidates: Sequence[Itemset],
        local_parts: Sequence[TransactionDB],
        min_count: int,
    ) -> Tuple[Dict[Itemset, int], ParallelPassStats]:
        spec = self.machine
        num_processors = self.num_processors

        partition = partition_round_robin(candidates, num_processors)
        trees = []
        for pid, owned in enumerate(partition.assignments):
            tree = self.build_tree(k, owned)
            cluster.advance(pid, len(owned) * spec.t_insert, "tree_build")
            if self.charge_io:
                cluster.charge_io(
                    pid, local_parts[pid].size_in_bytes(spec.bytes_per_item)
                )
            trees.append(tree)

        block_bytes = self._mean_block_bytes(local_parts)
        subset_total = HashTreeStats()

        # P rounds: in round r, processor p works on the block that
        # originated at processor (p - r) mod P.  Rounds 0..P-2 include
        # a data movement step; the last buffer needs no send.
        for round_index in range(num_processors):
            compute: Dict[int, float] = {}
            for pid in range(num_processors):
                block = local_parts[(pid - round_index) % num_processors]
                tree = trees[pid]
                before = tree.stats.snapshot()
                tree.count_database(block)
                delta = tree.stats.delta_since(before)
                compute[pid] = subset_time(delta, spec)
                subset_total = subset_total.merged_with(delta)

            moves_data = round_index < num_processors - 1
            if self.comm_scheme == "ring":
                cluster.overlapped_step(
                    compute, block_bytes if moves_data else 0.0
                )
            else:
                comm = 0.0
                if moves_data:
                    # The contended all-to-all runs page-by-page across
                    # the pass; amortize its total over the P-1 rounds.
                    comm = all_to_all_broadcast_naive_time(
                        num_processors, block_bytes, spec
                    ) / (num_processors - 1)
                cluster.blocking_exchange(compute, comm)

        # Every tree saw the whole database, so its counts are global.
        frequent_k: Dict[Itemset, int] = {}
        for tree in trees:
            frequent_k.update(tree.frequent(min_count))

        # All-to-all broadcast of the locally-identified frequent sets.
        frequent_bytes = self._frequent_set_bytes(
            len(frequent_k), k
        ) / max(1, num_processors)
        cluster.all_to_all_broadcast(
            frequent_bytes, naive=(self.comm_scheme == "naive")
        )

        stats = ParallelPassStats(
            k=k,
            num_candidates=len(candidates),
            num_frequent=len(frequent_k),
            grid=(num_processors, 1),
            candidate_imbalance=partition.load_imbalance(),
            subset_stats=subset_total,
        )
        return frequent_k, stats
