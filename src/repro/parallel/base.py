"""Shared machinery of the four parallel Apriori formulations.

Every formulation follows the same outer loop (pass 1 counts single
items, pass k >= 2 generates candidates, counts them, filters, repeats);
they differ only in *where candidates live* and *how data and counts
move*.  :class:`ParallelMiner` owns the outer loop, the virtual cluster,
and the result bookkeeping; subclasses implement one pass over one
candidate set.

Execution model: the algorithms genuinely run on partitioned data — each
virtual processor's hash-tree work is executed and *measured* (see
:mod:`repro.cluster`).  A physical-memory optimization worth knowing
about when reading subclasses: processors that hold *identical* candidate
sets (all of CD; each grid row of HD) share one physical
:class:`~repro.core.hashtree.HashTree` object, whose counter snapshots
attribute work to the correct virtual processor and whose accumulated
counts equal the post-reduction global counts.  The communication the
real machine would perform is still charged through the cost model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.cluster import VirtualCluster
from ..cluster.machine import CRAY_T3E, MachineSpec
from ..core.apriori import min_support_count
from ..core.candidates import generate_candidates
from ..core.hashtree import HashTree, HashTreeStats
from ..core.hashtree_flat import FlatHashTree
from ..core.items import Itemset
from ..core.kernels import validate_kernel
from ..core.transaction import TransactionDB
from ..faults import FaultSpec

__all__ = ["ParallelMiner", "MiningResult", "ParallelPassStats"]


@dataclass
class ParallelPassStats:
    """Per-pass record of a parallel run.

    Attributes:
        k: pass number (item-set size).
        num_candidates: |Ck| (global).
        num_frequent: |Fk| (global).
        grid: (G, P/G) processor grid used this pass.  CD reports
            (1, P), DD and IDD report (P, 1), HD varies per pass
            (Table II).
        tree_partitions: memory-forced hash-tree partitions; > 1 means
            the database was scanned that many times (CD under memory
            pressure, Figures 12 and 15).
        candidate_imbalance: max/mean - 1 of per-processor candidate
            counts (Section III-C load-balance discussion).
        failed_processors: processors the fault plan killed during this
            pass (empty on failure-free runs); their recovery time is
            charged as the ``recover`` category.
        subset_stats: hash-tree work counters summed over all virtual
            processors; ``avg_leaf_visits`` reproduces Figure 11's
            y-axis.
        elapsed_at_end: cluster response time when this pass finished
            (synchronized); differences between consecutive passes give
            per-pass times, which Figures 13-15 use to isolate the
            size-3 pass.
    """

    k: int
    num_candidates: int
    num_frequent: int
    grid: Tuple[int, int]
    tree_partitions: int = 1
    candidate_imbalance: float = 0.0
    subset_stats: HashTreeStats = field(default_factory=HashTreeStats)
    elapsed_at_end: float = 0.0
    failed_processors: List[int] = field(default_factory=list)

    @property
    def avg_leaf_visits(self) -> float:
        """Average distinct leaves visited per (transaction, tree) pair."""
        return self.subset_stats.avg_leaf_visits_per_transaction


@dataclass
class MiningResult:
    """Outcome of a parallel mining run.

    Attributes:
        algorithm: formulation name ("CD", "DD", "IDD", "HD", ...).
        frequent: union of all Fk with global support counts — bit-for-bit
            identical to the serial Apriori result by construction.
        num_processors: P.
        num_transactions: |T| (global).
        min_support / min_count: thresholds used.
        total_time: simulated parallel response time, seconds.
        breakdown: mean per-processor seconds by accounting category
            (subset, tree_build, candgen, comm, reduce, io, idle).
        passes: per-pass statistics.
        per_processor: per-processor category breakdowns, indexed by
            processor id; the raw material for load-imbalance readings
            (Section III-C quotes candidate-count vs computation-time
            imbalance from exactly these).
    """

    algorithm: str
    frequent: Dict[Itemset, int]
    num_processors: int
    num_transactions: int
    min_support: float
    min_count: int
    total_time: float
    breakdown: Dict[str, float]
    passes: List[ParallelPassStats]
    per_processor: List[Dict[str, float]] = field(default_factory=list)

    def compute_imbalance(self, category: str = "subset") -> float:
        """Relative imbalance max/mean - 1 of one category across processors."""
        values = [p.get(category, 0.0) for p in self.per_processor]
        if not values:
            return 0.0
        mean = sum(values) / len(values)
        if mean <= 0:
            return 0.0
        return max(values) / mean - 1.0

    def itemsets_of_size(self, k: int) -> Dict[Itemset, int]:
        """Frequent item-sets of exactly size ``k``."""
        return {s: c for s, c in self.frequent.items() if len(s) == k}

    def pass_time(self, k: int) -> float:
        """Response time attributable to pass ``k`` alone.

        Computed from the synchronized per-pass elapsed marks; Figures
        13-15 report "size 3 frequent item sets only" this way.

        Raises:
            KeyError: if pass ``k`` was not executed.
        """
        previous_end = 0.0
        for pass_stats in self.passes:
            if pass_stats.k == k:
                return pass_stats.elapsed_at_end - previous_end
            previous_end = pass_stats.elapsed_at_end
        raise KeyError(f"pass {k} was not executed")

    def overhead_fraction(self, category: str) -> float:
        """Fraction of the response time spent in one category.

        This is the quantity behind statements like "for 64 processors,
        these overheads are 24.8% and 31.0%" (Section V).
        """
        if self.total_time <= 0:
            return 0.0
        return self.breakdown.get(category, 0.0) / self.total_time


class ParallelMiner(ABC):
    """Base class for CD, DD, IDD and HD.

    Args:
        min_support: fractional minimum support in (0, 1].
        num_processors: P, the virtual cluster size.
        machine: cost model; defaults to the Cray T3E preset.
        branching: hash tree fan-out.
        leaf_capacity: hash tree leaf capacity (the paper's S).
        max_k: cap on pass number (``None`` = run to fixpoint).  The
            paper's Figures 13-15 use ``max_k=3``.
        charge_io: charge local-disk scan time each time a processor
            reads its database partition (the SP2 configuration of
            Figure 12).  When off, I/O is free as in the T3E runs where
            transactions were served from a memory buffer.
        trace: optional :class:`~repro.cluster.trace.TimelineTrace` that
            records every charged interval for Gantt rendering.
        parallel_candgen: parallelize apriori_gen itself (an extension
            beyond the paper, which runs it redundantly on every
            processor in all four formulations): each processor joins
            1/P of the F(k-1) prefix groups and the candidate set is
            assembled with an all-to-all broadcast.  Trades the O(|Ck|)
            per-processor generation cost for O(|Ck|/P) compute plus the
            exchange; worthwhile exactly when candidate sets are large —
            the same regime where CD's tree build hurts.
        kernel: counting kernel for the per-processor hash trees.
            ``"reference"`` (default) is the instrumented object tree
            every archived experiment was produced with.  ``"fast"``
            swaps in the flat-array tree in *instrumented* mode: its
            work counters are bit-identical to the reference tree's, so
            the simulated timings are unchanged, only the wall-clock
            cost of running the simulation drops.  The uninstrumented
            fast path (and the pass-2 pair counter) are reserved for
            real mining (:class:`~repro.core.apriori.Apriori`,
            :class:`~repro.parallel.native.NativeCountDistribution`)
            because the cost model prices the counters.
        faults: optional :class:`~repro.faults.FaultSpec` (or spec
            string) of injected processor failures, consumed by the
            cluster's per-processor failure hooks: a killed processor is
            respawned and recounts its block, charging detection plus
            recovery time (``recover`` category) without perturbing the
            mined result.  ``None`` (the default) is the paper's
            failure-free machine.
    """

    name: str = "parallel"
    # Set by formulations that support the Section VI single-data-source
    # scenario (IDD); consulted by the shared pass-1 I/O accounting.
    single_source: bool = False

    def __init__(
        self,
        min_support: float,
        num_processors: int,
        machine: MachineSpec = CRAY_T3E,
        branching: int = 64,
        leaf_capacity: int = 16,
        max_k: Optional[int] = None,
        charge_io: bool = False,
        trace=None,
        parallel_candgen: bool = False,
        kernel: str = "reference",
        faults=None,
    ):
        if num_processors < 1:
            raise ValueError(
                f"num_processors must be >= 1, got {num_processors}"
            )
        if max_k is not None and max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {max_k}")
        self.min_support = min_support
        self.num_processors = num_processors
        self.machine = machine
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.max_k = max_k
        self.charge_io = charge_io
        self.trace = trace
        self.parallel_candgen = parallel_candgen
        self.kernel = validate_kernel(kernel)
        self.faults = FaultSpec.of(faults)

    # ------------------------------------------------------------------
    # Outer loop
    # ------------------------------------------------------------------

    def mine(self, db: TransactionDB) -> MiningResult:
        """Run the full parallel mining computation on ``db``."""
        cluster = VirtualCluster(
            self.num_processors,
            self.machine,
            trace=self.trace,
            faults=self.faults,
        )
        local_parts = db.partition(self.num_processors)
        min_count = min_support_count(self.min_support, max(1, len(db)))

        frequent: Dict[Itemset, int] = {}
        passes: List[ParallelPassStats] = []

        frequent_1, pass1_stats = self._pass_one(cluster, local_parts, min_count)
        frequent.update(frequent_1)
        pass1_stats.elapsed_at_end = cluster.synchronize()
        passes.append(pass1_stats)

        frequent_prev: List[Itemset] = sorted(frequent_1)
        k = 2
        while frequent_prev and (self.max_k is None or k <= self.max_k):
            candidates = generate_candidates(frequent_prev)
            if not candidates:
                break
            self._charge_candgen(cluster, len(candidates), len(frequent_prev), k)

            frequent_k, pass_stats = self._run_pass(
                cluster, k, candidates, local_parts, min_count
            )
            frequent.update(frequent_k)
            pass_stats.failed_processors = cluster.apply_pass_faults(
                k, self._mean_block_bytes(local_parts)
            )
            pass_stats.elapsed_at_end = cluster.synchronize()
            passes.append(pass_stats)
            frequent_prev = sorted(frequent_k)
            k += 1

        cluster.synchronize()
        return MiningResult(
            algorithm=self.name,
            frequent=frequent,
            num_processors=self.num_processors,
            num_transactions=len(db),
            min_support=self.min_support,
            min_count=min_count,
            total_time=cluster.elapsed(),
            breakdown=cluster.breakdown_mean(),
            passes=passes,
            per_processor=[
                cluster.breakdown(pid)
                for pid in range(self.num_processors)
            ],
        )

    def _charge_candgen(
        self,
        cluster: VirtualCluster,
        num_candidates: int,
        num_frequent_prev: int,
        k: int,
    ) -> None:
        """Charge the apriori_gen step for one pass.

        Default (the paper's behaviour in all four formulations):
        apriori_gen runs redundantly on every processor — only the
        *tree build* is ever parallelized.  With ``parallel_candgen``
        the join is split by prefix group and the generated candidates
        are exchanged with a ring all-to-all broadcast.
        """
        spec = self.machine
        work_units = num_candidates + num_frequent_prev
        if not self.parallel_candgen or self.num_processors == 1:
            candgen_time = work_units * spec.t_candgen
            for pid in range(self.num_processors):
                cluster.advance(pid, candgen_time, "candgen")
            return
        local_time = (
            work_units / self.num_processors
        ) * spec.t_candgen
        for pid in range(self.num_processors):
            cluster.advance(pid, local_time, "candgen")
        candidate_bytes = (
            num_candidates * k * spec.bytes_per_item / self.num_processors
        )
        cluster.all_to_all_broadcast(candidate_bytes, category="candgen")

    # ------------------------------------------------------------------
    # Pass 1 (identical in all formulations)
    # ------------------------------------------------------------------

    def _pass_one(
        self,
        cluster: VirtualCluster,
        local_parts: Sequence[TransactionDB],
        min_count: int,
    ) -> Tuple[Dict[Itemset, int], ParallelPassStats]:
        """Count single items locally, then all-reduce the count vector."""
        spec = self.machine
        global_counts: Dict[int, int] = {}
        for pid, part in enumerate(local_parts):
            items_scanned = 0
            for transaction in part:
                items_scanned += len(transaction)
                for item in transaction:
                    global_counts[item] = global_counts.get(item, 0) + 1
            cluster.advance(pid, items_scanned * spec.t_item, "subset")
            if self.charge_io and not self.single_source:
                cluster.charge_io(pid, part.size_in_bytes(spec.bytes_per_item))
        if self.charge_io and self.single_source:
            total_bytes = sum(
                part.size_in_bytes(spec.bytes_per_item)
                for part in local_parts
            )
            cluster.charge_io(0, total_bytes)
        num_items = len(global_counts)
        cluster.all_reduce(
            num_items * spec.bytes_per_count, combine_ops=num_items
        )
        frequent_1 = {
            (item,): count
            for item, count in global_counts.items()
            if count >= min_count
        }
        stats = ParallelPassStats(
            k=1,
            num_candidates=num_items,
            num_frequent=len(frequent_1),
            grid=(1, self.num_processors),
        )
        return frequent_1, stats

    # ------------------------------------------------------------------
    # Per-formulation pass
    # ------------------------------------------------------------------

    @abstractmethod
    def _run_pass(
        self,
        cluster: VirtualCluster,
        k: int,
        candidates: Sequence[Itemset],
        local_parts: Sequence[TransactionDB],
        min_count: int,
    ) -> Tuple[Dict[Itemset, int], ParallelPassStats]:
        """Count one candidate set and return (Fk, pass statistics)."""

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------

    def build_tree(self, k: int, candidates: Optional[Sequence[Itemset]] = None):
        """Build one pass tree with this miner's geometry and kernel.

        Returns an instrumented tree: either the reference
        :class:`HashTree` or, with ``kernel="fast"``, a
        :class:`FlatHashTree` in instrumented mode whose counters (and
        therefore every derived simulated timing) are bit-identical.

        Raises:
            ValueError: for ``kernel="vertical"`` or ``kernel="fast-np"``
                — bitmap intersection and vectorized batch counting
                perform none of the tree traversals the Section IV
                cost model prices, so the simulated formulations cannot
                time them.  Those kernels are for real mining only
                (serial :class:`~repro.core.apriori.Apriori` and the
                native pool).
        """
        if self.kernel in ("vertical", "fast-np"):
            raise ValueError(
                f"kernel={self.kernel!r} is not available in the simulated "
                "formulations (no instrumented traversal to price); use "
                "a native-* algorithm or serial Apriori"
            )
        if self.kernel == "fast":
            tree = FlatHashTree(
                k,
                branching=self.branching,
                leaf_capacity=self.leaf_capacity,
                instrumented=True,
            )
        else:
            tree = HashTree(
                k, branching=self.branching, leaf_capacity=self.leaf_capacity
            )
        if candidates is not None:
            tree.insert_all(candidates)
        return tree

    def _frequent_set_bytes(self, num_frequent: int, k: int) -> float:
        """Wire size of a frequent-set exchange message."""
        spec = self.machine
        return num_frequent * (k * spec.bytes_per_item + spec.bytes_per_count)

    def _mean_block_bytes(self, local_parts: Sequence[TransactionDB]) -> float:
        """Average per-processor database block size in bytes."""
        total = sum(
            part.size_in_bytes(self.machine.bytes_per_item)
            for part in local_parts
        )
        return total / max(1, len(local_parts))
