"""Process memory observability and enforcement — stdlib only.

The out-of-core story needs two primitives the rest of the repo can
share without a third-party dependency:

* :func:`peak_rss_bytes` — the calling process's high-water resident
  set size, read from ``getrusage`` (``ru_maxrss``).  Workers sample it
  into their reply frames so each pass's
  :attr:`~repro.parallel.native.PassOverhead.peak_rss_bytes` records
  the largest footprint any process touched while counting it.
* :func:`set_memory_limit` — an ``RLIMIT_DATA`` cap the scale bench
  applies to itself before mining, so "runs in X MB" is enforced by
  the kernel rather than asserted after the fact.  ``RLIMIT_DATA`` is
  deliberate: since Linux 4.7 it covers the heap *and* private
  anonymous mappings (where CPython and numpy allocate), while leaving
  file-backed mappings — the mmap'd packed store, shared libraries,
  ``/dev/shm`` segments — uncounted.  That is exactly the out-of-core
  contract: the *working* memory is bounded, the disk-backed store is
  not.  ``RLIMIT_AS`` would charge the store mapping itself against
  the cap and defeat the point.

Platform notes: ``ru_maxrss`` is kibibytes on Linux and bytes on
macOS; :func:`peak_rss_bytes` normalizes.  On platforms without the
:mod:`resource` module (Windows) both functions degrade gracefully —
``peak_rss_bytes`` returns 0 and ``set_memory_limit`` is a no-op
returning ``False``.
"""

from __future__ import annotations

import sys

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None  # type: ignore[assignment]

__all__ = ["peak_rss_bytes", "set_memory_limit"]


def peak_rss_bytes() -> int:
    """This process's peak resident set size in bytes (0 if unknown).

    Monotone over the process lifetime — ``getrusage`` reports the
    high-water mark, so sampling after a pass bounds everything the
    pass (and all earlier work) ever had resident at once.
    """
    if resource is None:  # pragma: no cover - non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def set_memory_limit(max_bytes: int) -> bool:
    """Cap this process's data segment at ``max_bytes`` via ``RLIMIT_DATA``.

    Child processes inherit the limit, so a miner that sets it before
    spawning its pool caps every worker too.  Returns ``True`` when the
    limit was applied, ``False`` when the platform has no
    :mod:`resource` module or refuses the change (e.g. raising a hard
    limit without privilege).

    Raises:
        ValueError: if ``max_bytes`` is not positive.
    """
    if max_bytes < 1:
        raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
    if resource is None:  # pragma: no cover - non-POSIX platform
        return False
    try:
        _soft, hard = resource.getrlimit(resource.RLIMIT_DATA)
        if hard != resource.RLIM_INFINITY and hard < max_bytes:
            max_bytes = hard
        resource.setrlimit(resource.RLIMIT_DATA, (max_bytes, hard))
    except (ValueError, OSError):  # pragma: no cover - refused by the OS
        return False
    return True
