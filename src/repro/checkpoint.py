"""Per-pass mine-state checkpointing — coordinator crash recovery.

The PR 3 fault ladder recovers *worker* failures inside a pass; this
layer extends recovery to the whole coordinator process.  A native
miner given ``checkpoint_dir`` appends one durable record per completed
Apriori pass (the pass's frequent item-sets + counts and the
fault-schedule cursor), so a coordinator killed with SIGKILL at any
point can be rerun with ``resume=True`` and produce output bit-identical
to an uninterrupted run: journaled passes are folded back into the
result, and mining continues at the first unjournaled pass.

Journal format (``journal.repro`` inside the checkpoint directory)::

    magic    8 bytes   b"RPROCKP1"
    record   <payload_len: u32 LE> <crc32(payload): u32 LE> <payload>
    ...

Payloads are canonical JSON (sorted keys, compact separators).  The
first record is the run meta (format version, support threshold, DB
fingerprint, ...); each following record is one completed pass.  Every
append is flushed and fsynced before the miner moves on, so at any kill
point the journal holds exactly the completed passes.  A torn tail — a
partial frame or payload from a kill mid-write — fails the length or
CRC check; :meth:`CheckpointJournal.resume` truncates back to the last
valid record and appends from there.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .core.packed import _as_i32_bytes

__all__ = [
    "FORMAT",
    "JOURNAL_NAME",
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointSession",
    "CheckpointState",
    "checkpoint_meta",
    "db_fingerprint",
    "fire_coordinator_kill",
    "restore_result",
    "validate_meta",
]

FORMAT = "repro.checkpoint.v1"
JOURNAL_NAME = "journal.repro"
_MAGIC = b"RPROCKP1"
_FRAME = struct.Struct("<II")

#: Meta keys that must match for a resume to be the *same* mine.  The
#: algorithm and kernel are deliberately absent: every formulation and
#: kernel produces bit-identical counts, so a mine checkpointed under
#: one may finish under another.
_IDENTITY_KEYS = (
    "format",
    "min_support",
    "min_count",
    "num_transactions",
    "db_fingerprint",
)


class CheckpointError(ValueError):
    """A checkpoint journal is missing, unusable, or for another mine."""


def db_fingerprint(db) -> int:
    """CRC32 over the packed store bytes — cheap DB identity for resume.

    Accepts a ``TransactionDB`` (packed on the fly) or an
    already-packed ``PackedDB``.
    """
    packed = db.to_packed() if hasattr(db, "to_packed") else db
    crc = zlib.crc32(_as_i32_bytes(packed.offsets))
    return zlib.crc32(_as_i32_bytes(packed.items), crc)


def checkpoint_meta(
    *,
    algorithm: str,
    db,
    min_support: float,
    min_count: int,
    kernel: str,
    max_k: Optional[int],
) -> Dict[str, Any]:
    """Build the meta record a miner writes as the journal's record 0."""
    return {
        "format": FORMAT,
        "algorithm": algorithm,
        "min_support": min_support,
        "min_count": min_count,
        "num_transactions": len(db),
        "db_fingerprint": db_fingerprint(db),
        "kernel": kernel,
        "max_k": max_k,
    }


def validate_meta(recorded: Dict[str, Any], current: Dict[str, Any]) -> None:
    """Refuse to resume a journal that belongs to a different mine."""
    for key in _IDENTITY_KEYS:
        if recorded.get(key) != current.get(key):
            raise CheckpointError(
                f"checkpoint meta mismatch on {key!r}: the journal has "
                f"{recorded.get(key)!r}, this run has {current.get(key)!r} "
                "— refusing to resume a different mine"
            )


@dataclass
class CheckpointState:
    """What a journal held at load time.

    Attributes:
        meta: the run meta record.
        passes: completed-pass records, contiguous from k=1.
        valid_bytes: journal length up to the last valid record — a
            torn tail beyond it is truncated away on resume.
        phase1: the last journaled SON phase-1 record's candidate
            superset (``{k: [itemset, ...]}``), or ``None`` when the
            run never journaled one — single-phase mines, and two-phase
            mines killed before phase 1 completed (which recompute it).
    """

    meta: Dict[str, Any]
    passes: List[Dict[str, Any]]
    valid_bytes: int
    phase1: Optional[Dict[int, List[tuple]]] = None

    @property
    def last_k(self) -> int:
        """Largest journaled pass number (0 when only meta is present)."""
        return self.passes[-1]["k"] if self.passes else 0

    @property
    def refusals_used(self) -> int:
        """refuse-spawn budget the interrupted run already consumed."""
        if not self.passes:
            return 0
        return self.passes[-1]["cursor"]["refusals_used"]


class CheckpointJournal:
    """Append-only, checksummed, fsynced per-pass journal."""

    def __init__(self, path: Path, handle):
        self.path = path
        self._handle = handle

    # ------------------------------------------------------------------
    # Open paths
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, directory, meta: Dict[str, Any]) -> "CheckpointJournal":
        """Start a fresh journal (replacing any previous one)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / JOURNAL_NAME
        handle = open(path, "wb")
        handle.write(_MAGIC)
        journal = cls(path, handle)
        journal._append(dict(meta, type="meta"))
        return journal

    @classmethod
    def load(cls, directory) -> CheckpointState:
        """Scan a journal, keeping every record up to the first bad one."""
        path = Path(directory) / JOURNAL_NAME
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(
                f"no checkpoint journal at {path} — was the interrupted "
                "mine started with a checkpoint directory?"
            ) from None
        if data[: len(_MAGIC)] != _MAGIC:
            raise CheckpointError(
                f"{path} is not a repro checkpoint journal (bad magic)"
            )
        pos = valid = len(_MAGIC)
        records: List[Dict[str, Any]] = []
        while pos + _FRAME.size <= len(data):
            length, crc = _FRAME.unpack_from(data, pos)
            start = pos + _FRAME.size
            end = start + length
            if end > len(data):
                break  # torn frame: the payload never finished writing
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break  # torn or corrupt payload
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break
            records.append(record)
            pos = valid = end
        if not records or records[0].get("type") != "meta":
            raise CheckpointError(
                f"{path} holds no valid meta record — the journal is "
                "unusable"
            )
        passes = [r for r in records[1:] if r.get("type") == "pass"]
        expected_k = 1
        for record in passes:
            if record["k"] != expected_k:
                raise CheckpointError(
                    f"{path} is not contiguous: expected pass {expected_k}, "
                    f"found pass {record['k']}"
                )
            expected_k += 1
        phase1: Optional[Dict[int, List[tuple]]] = None
        for record in records[1:]:
            if record.get("type") == "son-phase1":
                phase1 = {
                    int(k): [tuple(itemset) for itemset in itemsets]
                    for k, itemsets in record["candidates"]
                }
        return CheckpointState(
            meta=records[0], passes=passes, valid_bytes=valid, phase1=phase1
        )

    @classmethod
    def resume(cls, directory) -> Tuple["CheckpointJournal", CheckpointState]:
        """Load a journal, truncate any torn tail, position for append."""
        state = cls.load(directory)
        path = Path(directory) / JOURNAL_NAME
        handle = open(path, "r+b")
        handle.truncate(state.valid_bytes)
        handle.seek(state.valid_bytes)
        return cls(path, handle), state

    # ------------------------------------------------------------------
    # Append / close
    # ------------------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        payload = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        self._handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
        self._handle.write(payload)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_pass(
        self,
        k: int,
        num_candidates: int,
        frequent_k: Dict[tuple, int],
        refusals_used: int = 0,
    ) -> None:
        """Durably record one completed pass (flush + fsync)."""
        from .data.serialize import frequent_to_payload

        itemsets, counts = frequent_to_payload(frequent_k)
        self._append(
            {
                "type": "pass",
                "k": k,
                "num_candidates": num_candidates,
                "itemsets": itemsets,
                "counts": counts,
                "cursor": {"refusals_used": refusals_used},
            }
        )

    def append_phase1(
        self, candidates_by_k: Dict[int, List[tuple]]
    ) -> None:
        """Durably record a SON phase-1 candidate superset.

        Written once per two-phase mine, right after phase 1 completes
        and before the first phase-2 counting pass — a coordinator
        killed anywhere in phase 2 resumes with the *same* superset
        instead of re-mining the partitions (pre-phase-1 readers ignore
        the record type, so journals stay backward-readable).
        """
        self._append(
            {
                "type": "son-phase1",
                "candidates": [
                    [k, [list(itemset) for itemset in candidates_by_k[k]]]
                    for k in sorted(candidates_by_k)
                ],
            }
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def restore_result(
    state: CheckpointState, result
) -> Tuple[List[tuple], int]:
    """Fold journaled passes into ``result``; return ``(frequent_prev, next_k)``.

    ``result`` is a fresh :class:`~repro.core.apriori.AprioriResult`;
    after this it looks exactly as if the journaled passes had just been
    mined: ``frequent`` holds their item-sets and ``passes`` their
    traces.  ``frequent_prev`` is the sorted F_{last_k} seed for
    candidate generation and ``next_k`` the first pass still to mine.
    """
    from .core.apriori import PassTrace
    from .data.serialize import frequent_from_payload

    frequent_prev: List[tuple] = []
    for record in state.passes:
        frequent_k = frequent_from_payload(
            record["itemsets"], record["counts"]
        )
        result.frequent.update(frequent_k)
        result.passes.append(
            PassTrace(
                k=record["k"],
                num_candidates=record["num_candidates"],
                num_frequent=len(frequent_k),
            )
        )
        frequent_prev = sorted(frequent_k)
    return frequent_prev, state.last_k + 1


class CheckpointSession:
    """One ``mine()`` invocation's view of the checkpoint journal.

    Created by the native miners when ``checkpoint_dir`` is set.
    :meth:`start` either opens a fresh journal or (``resume=True``)
    loads the existing one, validates it against this run's meta, folds
    the journaled passes into the result, and reports where to pick up.
    :meth:`record` appends one completed pass durably before the miner
    moves on.
    """

    def __init__(self, directory, resume: bool, meta: Dict[str, Any]):
        self.directory = directory
        self.resume = resume
        self.meta = meta
        self.journal: Optional[CheckpointJournal] = None
        self.prior_refusals = 0
        #: Restored SON phase-1 superset (two-phase resume), else None.
        self.phase1: Optional[Dict[int, List[tuple]]] = None

    def start(self, result) -> Tuple[List[tuple], int]:
        """Open the journal; return ``(frequent_prev, next_k)``."""
        if self.resume:
            journal, state = CheckpointJournal.resume(self.directory)
            try:
                validate_meta(state.meta, self.meta)
            except CheckpointError:
                journal.close()
                raise
            self.journal = journal
            self.prior_refusals = state.refusals_used
            self.phase1 = state.phase1
            return restore_result(state, result)
        self.journal = CheckpointJournal.create(self.directory, self.meta)
        return [], 1

    def record(
        self,
        k: int,
        num_candidates: int,
        frequent_k: Dict[tuple, int],
        refusals_consumed: int = 0,
    ) -> None:
        assert self.journal is not None, "record() before start()"
        self.journal.append_pass(
            k,
            num_candidates,
            frequent_k,
            self.prior_refusals + refusals_consumed,
        )

    def record_phase1(
        self, candidates_by_k: Dict[int, List[tuple]]
    ) -> None:
        """Journal a completed SON phase 1 and cache it on the session."""
        assert self.journal is not None, "record_phase1() before start()"
        self.journal.append_phase1(candidates_by_k)
        self.phase1 = candidates_by_k

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()


def fire_coordinator_kill(faults, k: int) -> None:
    """SIGKILL this process if ``faults`` schedules a coord-kill at pass ``k``.

    The miners call this right after pass ``k``'s checkpoint record is
    durable — the deterministic whole-process analogue of the worker
    kill events, and the chaos suite's crash point.
    """
    if faults is not None and k in faults.coordinator_kills():
        os.kill(os.getpid(), signal.SIGKILL)
