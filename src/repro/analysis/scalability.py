"""Scalability metrics (Section IV preliminaries).

The paper adopts the standard definitions from Kumar et al.: speedup
S = T_serial / T_P, efficiency E = S / P, and calls an algorithm
*scalable* when efficiency can be held constant while processors and
problem size grow together.  These helpers turn (P, time) series from
the experiments into the speedup/efficiency curves of Figure 13 and the
scaleup readings of Figure 10.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = [
    "speedup",
    "efficiency",
    "speedup_series",
    "scaleup_degradation",
]


def speedup(serial_time: float, parallel_time: float) -> float:
    """S = T_serial / T_P."""
    if serial_time <= 0 or parallel_time <= 0:
        raise ValueError("times must be positive")
    return serial_time / parallel_time


def efficiency(
    serial_time: float, parallel_time: float, num_processors: int
) -> float:
    """E = T_serial / (P * T_P)."""
    if num_processors < 1:
        raise ValueError(f"num_processors must be >= 1, got {num_processors}")
    return speedup(serial_time, parallel_time) / num_processors


def speedup_series(
    serial_time: float, timings: Sequence[Tuple[int, float]]
) -> List[Tuple[int, float]]:
    """Map (P, T_P) pairs to (P, speedup) pairs (Figure 13's y-axis)."""
    return [(p, speedup(serial_time, t)) for p, t in timings]


def scaleup_degradation(
    timings: Sequence[Tuple[int, float]]
) -> Dict[int, float]:
    """Normalize a scaleup series by its smallest-P reading.

    In a scaleup experiment (fixed work *per processor*, Figure 10) an
    ideally scalable algorithm holds a flat 1.0; values above 1.0
    quantify degradation relative to the smallest configuration.
    """
    if not timings:
        raise ValueError("timings must not be empty")
    ordered = sorted(timings)
    base_time = ordered[0][1]
    if base_time <= 0:
        raise ValueError("baseline time must be positive")
    return {p: t / base_time for p, t in ordered}
