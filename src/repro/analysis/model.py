"""Analytical runtime model (Section IV, Equations 3-7).

These closed-form predictions mirror the paper's per-pass cost analysis
and are checked against the simulator in tests: the *model* and the
*measured simulation* must agree on orderings and crossover directions,
which is precisely the claim Section IV makes about the real machine.

Symbols follow Table III: N transactions, P processors, M candidates,
G candidate partitions (HD), I average transaction length, C = (I choose
k) potential candidates per transaction, S candidates per leaf, and
L = M/S leaves in the serial tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.machine import MachineSpec
from .leafvisits import expected_leaf_visits

__all__ = ["PassModel", "hd_beneficial_range"]


@dataclass(frozen=True)
class PassModel:
    """One Apriori pass, parameterized as in Table III.

    Attributes:
        num_transactions: N.
        num_candidates: M.
        avg_transaction_length: I.
        k: pass number (candidate size).
        leaf_size: S, average candidates per leaf.
        avg_transaction_bytes: wire size of one transaction (for the
            O(N) data-movement terms).
    """

    num_transactions: float
    num_candidates: float
    avg_transaction_length: float
    k: int
    leaf_size: float = 16.0
    avg_transaction_bytes: float = 64.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if min(
            self.num_transactions,
            self.num_candidates,
            self.avg_transaction_length,
            self.leaf_size,
        ) <= 0:
            raise ValueError("all model parameters must be positive")

    @property
    def potential_candidates(self) -> float:
        """C = (I choose k), potential candidates per transaction."""
        length = self.avg_transaction_length
        if length < self.k:
            return 0.0
        return float(math.comb(round(length), self.k))

    @property
    def num_leaves(self) -> float:
        """L = M / S, leaves of the full (serial/CD) hash tree."""
        return max(1.0, self.num_candidates / self.leaf_size)

    # ------------------------------------------------------------------
    # Equation 3: serial Apriori
    # ------------------------------------------------------------------

    def serial_time(self, spec: MachineSpec) -> float:
        """T_serial = N*C*t_travers + N*V(C,L)*t_check + O(M)."""
        c = self.potential_candidates
        visits = expected_leaf_visits(c, self.num_leaves)
        return (
            self.num_transactions * c * spec.t_travers
            + self.num_transactions * visits * self.leaf_size * spec.t_check
            + self.num_candidates * spec.t_insert
        )

    # ------------------------------------------------------------------
    # Equation 4: Count Distribution
    # ------------------------------------------------------------------

    def cd_time(self, spec: MachineSpec, num_processors: int) -> float:
        """T_CD: subset work over N/P, full tree build, global reduction."""
        _check_p(num_processors)
        c = self.potential_candidates
        visits = expected_leaf_visits(c, self.num_leaves)
        per_processor_transactions = self.num_transactions / num_processors
        subset = per_processor_transactions * (
            c * spec.t_travers + visits * self.leaf_size * spec.t_check
        )
        build = self.num_candidates * spec.t_insert
        reduction = _reduction_time(self.num_candidates, num_processors, spec)
        return subset + build + reduction

    # ------------------------------------------------------------------
    # Equation 5: Data Distribution
    # ------------------------------------------------------------------

    def dd_time(self, spec: MachineSpec, num_processors: int) -> float:
        """T_DD: all N transactions against an M/P tree, plus O(N) movement."""
        _check_p(num_processors)
        c = self.potential_candidates
        local_leaves = self.num_leaves / num_processors
        visits = expected_leaf_visits(c, local_leaves)
        subset = self.num_transactions * (
            c * spec.t_travers + visits * self.leaf_size * spec.t_check
        )
        build = (self.num_candidates / num_processors) * spec.t_insert
        movement = self._data_movement_time(spec, num_processors)
        return subset + build + movement

    # ------------------------------------------------------------------
    # Equation 6: Intelligent Data Distribution
    # ------------------------------------------------------------------

    def idd_time(self, spec: MachineSpec, num_processors: int) -> float:
        """T_IDD: C/P traversals per transaction against an M/P tree."""
        _check_p(num_processors)
        c = self.potential_candidates / num_processors
        local_leaves = self.num_leaves / num_processors
        visits = expected_leaf_visits(c, local_leaves)
        subset = self.num_transactions * (
            c * spec.t_travers + visits * self.leaf_size * spec.t_check
        )
        build = (self.num_candidates / num_processors) * spec.t_insert
        movement = self._data_movement_time(spec, num_processors)
        return subset + build + movement

    # ------------------------------------------------------------------
    # Equation 7: Hybrid Distribution
    # ------------------------------------------------------------------

    def hd_time(
        self, spec: MachineSpec, num_processors: int, num_groups: int
    ) -> float:
        """T_HD on a (num_groups) x (P / num_groups) grid."""
        _check_p(num_processors)
        if num_groups < 1 or num_processors % num_groups != 0:
            raise ValueError(
                f"num_groups={num_groups} must divide P={num_processors}"
            )
        c = self.potential_candidates / num_groups
        local_leaves = self.num_leaves / num_groups
        visits = expected_leaf_visits(c, local_leaves)
        transactions_seen = (
            num_groups * self.num_transactions / num_processors
        )
        subset = transactions_seen * (
            c * spec.t_travers + visits * self.leaf_size * spec.t_check
        )
        build = (self.num_candidates / num_groups) * spec.t_insert
        movement = (
            transactions_seen * self.avg_transaction_bytes * spec.t_byte
        )
        reduction = _reduction_time(
            self.num_candidates / num_groups,
            num_processors // num_groups,
            spec,
        )
        return subset + build + movement + reduction

    # ------------------------------------------------------------------

    def _data_movement_time(
        self, spec: MachineSpec, num_processors: int
    ) -> float:
        """O(N) ring-shift cost: every processor sees ~N transactions."""
        if num_processors == 1:
            return 0.0
        return self.num_transactions * self.avg_transaction_bytes * spec.t_byte


def _reduction_time(
    num_candidates: float, num_processors: int, spec: MachineSpec
) -> float:
    """Recursive-doubling all-reduce of a count vector, comm + combine."""
    if num_processors <= 1:
        return 0.0
    steps = math.ceil(math.log2(num_processors))
    per_step = (
        spec.t_startup
        + num_candidates * spec.bytes_per_count * spec.t_byte
        + num_candidates * spec.t_reduce_op
    )
    return steps * per_step


def hd_beneficial_range(
    num_transactions: float, num_candidates: float, num_processors: int
) -> tuple[float, float]:
    """Equation 8: the G range in which HD beats CD.

    HD's summarized runtime O(G*N/P) + O(M/G) undercuts CD's
    O(N/P) + O(M) for 1 < G < O(M*P/N).  Returns the open interval
    bounds ``(1, M*P/N)``; an upper bound <= 1 means CD cannot be beaten
    (N dominates M) and HD should set G = 1, degenerating to CD.
    """
    _check_p(num_processors)
    if num_transactions <= 0 or num_candidates <= 0:
        raise ValueError("N and M must be positive")
    return 1.0, num_candidates * num_processors / num_transactions


def _check_p(num_processors: int) -> None:
    if num_processors < 1:
        raise ValueError(f"num_processors must be >= 1, got {num_processors}")
