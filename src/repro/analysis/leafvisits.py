"""Expected distinct-leaf-visit model (Section IV, Equations 1-2).

During the subset operation, a transaction with ``i`` potential
candidates probes the hash tree ``i`` times; distinct probes can land in
the same leaf, and the leaf-check cost is paid only once per distinct
leaf.  Under the paper's uniform-probe assumption, the expected number of
distinct leaves visited in a tree with ``j`` leaves is

    V(i, j) = (j^i - (j-1)^i) / j^(i-1)
            = j * (1 - (1 - 1/j)^i)

with ``V(i, j) -> i`` as ``j -> infinity`` (Equation 2): when the tree is
much larger than the probe count, every probe hits a fresh leaf.

This is the quantity that explains DD's redundant work: a processor's
tree shrinks to L/P leaves, but V(C, L/P) shrinks far slower than
V(C, L)/P, so checking work is *not* reduced by a factor of P.  IDD also
divides the probe count C by P, so V(C/P, L/P) ~ V(C, L)/P.
"""

from __future__ import annotations

import math
import random
from typing import Optional

__all__ = [
    "expected_leaf_visits",
    "expected_leaf_visits_limit",
    "monte_carlo_leaf_visits",
    "dd_checking_ratio",
]


def expected_leaf_visits(num_probes: float, num_leaves: float) -> float:
    """Evaluate V(i, j): expected distinct leaves hit by ``i`` uniform probes.

    Accepts fractional arguments (the model plugs in averages like
    C/P).  Probe counts below zero are invalid; zero probes visit zero
    leaves; fewer than one leaf is clamped to one (a tree always has a
    root leaf).
    """
    if num_probes < 0:
        raise ValueError(f"num_probes must be non-negative, got {num_probes}")
    if num_probes == 0:
        return 0.0
    j = max(1.0, float(num_leaves))
    if j == 1.0:
        return 1.0
    # j * (1 - (1 - 1/j)^i) via expm1/log1p, numerically stable for
    # very large j (where the naive power underflows to 1.0).
    return j * -math.expm1(float(num_probes) * math.log1p(-1.0 / j))


def expected_leaf_visits_limit(num_probes: float) -> float:
    """The j -> infinity limit of V(i, j), which is simply i (Equation 2)."""
    return float(num_probes)


def monte_carlo_leaf_visits(
    num_probes: int,
    num_leaves: int,
    trials: int = 2000,
    seed: Optional[int] = 0,
) -> float:
    """Estimate V(i, j) by simulation (validates the closed form in tests)."""
    if num_probes < 0 or num_leaves < 1:
        raise ValueError("need num_probes >= 0 and num_leaves >= 1")
    if trials < 1:
        raise ValueError("trials must be positive")
    rng = random.Random(seed)
    total = 0
    for _ in range(trials):
        seen = set()
        for _ in range(num_probes):
            seen.add(rng.randrange(num_leaves))
        total += len(seen)
    return total / trials


def dd_checking_ratio(num_probes: float, num_leaves: float, num_processors: int) -> float:
    """How far DD falls short of perfect checking-work reduction.

    Returns ``V(C, L/P) / (V(C, L) / P)`` — the factor by which DD's
    aggregate leaf-checking work exceeds the serial algorithm's (1.0
    would mean no redundancy; Section IV shows it approaches P when L is
    large).
    """
    if num_processors < 1:
        raise ValueError("num_processors must be >= 1")
    per_processor = expected_leaf_visits(
        num_probes, num_leaves / num_processors
    )
    ideal = expected_leaf_visits(num_probes, num_leaves) / num_processors
    if ideal == 0:
        return 1.0
    return per_processor / ideal
