"""Section IV performance model and scalability metrics."""

from .leafvisits import (
    dd_checking_ratio,
    expected_leaf_visits,
    expected_leaf_visits_limit,
    monte_carlo_leaf_visits,
)
from .model import PassModel, hd_beneficial_range
from .validation import ValidationReport, validate_pass_model
from .scalability import (
    efficiency,
    scaleup_degradation,
    speedup,
    speedup_series,
)

__all__ = [
    "PassModel",
    "ValidationReport",
    "dd_checking_ratio",
    "efficiency",
    "expected_leaf_visits",
    "expected_leaf_visits_limit",
    "hd_beneficial_range",
    "monte_carlo_leaf_visits",
    "scaleup_degradation",
    "speedup",
    "speedup_series",
    "validate_pass_model",
]
