"""Model-vs-simulation validation (closing the Section IV loop).

Section IV derives closed-form pass costs for CD, DD, IDD and HD
(Equations 4-7) from workload parameters; Section V then measures the
real machine.  This module plays both roles against each other inside
the reproduction: it runs one pass of every formulation on the
simulated cluster (measured work) and evaluates the analytical model on
the same workload parameters, then reports whether the model predicts
the measured *ordering* of the algorithms — which is precisely the use
the paper puts the model to (deciding who wins where, e.g. Equation 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..core.transaction import TransactionDB
from ..parallel.hybrid import choose_grid
from ..parallel.runner import mine_parallel
from .model import PassModel

__all__ = ["ValidationReport", "validate_pass_model"]


@dataclass
class ValidationReport:
    """Measured vs predicted pass times for the four formulations.

    Attributes:
        k: the validated pass.
        num_processors: P.
        timings: algorithm → (measured seconds, predicted seconds).
        workload: the PassModel parameters used for prediction.
    """

    k: int
    num_processors: int
    timings: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    workload: PassModel | None = None

    def measured_order(self) -> List[str]:
        """Algorithms fastest-first by measured time."""
        return sorted(self.timings, key=lambda a: self.timings[a][0])

    def predicted_order(self) -> List[str]:
        """Algorithms fastest-first by predicted time."""
        return sorted(self.timings, key=lambda a: self.timings[a][1])

    def orders_agree(self) -> bool:
        """True when the model ranks the algorithms as measured."""
        return self.measured_order() == self.predicted_order()

    def agreement_pairs(self) -> float:
        """Fraction of algorithm pairs ranked consistently (Kendall-style)."""
        names = list(self.timings)
        total = 0
        agree = 0
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                total += 1
                measured = self.timings[a][0] - self.timings[b][0]
                predicted = self.timings[a][1] - self.timings[b][1]
                if measured * predicted > 0:
                    agree += 1
        return agree / total if total else 1.0

    def to_table(self) -> str:
        """Render the report as an aligned text table."""
        lines = [
            f"model validation: pass {self.k}, P={self.num_processors}"
        ]
        lines.append(
            f"{'algorithm':>10s} | {'measured':>10s} | {'predicted':>10s}"
        )
        lines.append("-" * 38)
        for algorithm, (measured, predicted) in self.timings.items():
            lines.append(
                f"{algorithm:>10s} | {measured:10.4f} | {predicted:10.4f}"
            )
        lines.append(
            f"measured order:  {' < '.join(self.measured_order())}"
        )
        lines.append(
            f"predicted order: {' < '.join(self.predicted_order())}"
        )
        lines.append(f"pairwise agreement: {self.agreement_pairs():.0%}")
        return "\n".join(lines)


def validate_pass_model(
    db: TransactionDB,
    min_support: float,
    k: int = 3,
    num_processors: int = 16,
    machine: MachineSpec = CRAY_T3E,
    switch_threshold: int = 2000,
    leaf_size: float = 16.0,
) -> ValidationReport:
    """Run one pass through simulation and model; compare rankings.

    Args:
        db: workload.
        min_support: fractional support.
        k: the pass to validate (the paper validates on pass 3).
        num_processors: P.
        machine: cost model shared by both sides.
        switch_threshold: HD's m.
        leaf_size: the model's S parameter.

    Returns:
        A :class:`ValidationReport`; ``orders_agree()`` is the headline.
    """
    report = ValidationReport(k=k, num_processors=num_processors)

    runs = {}
    for algorithm in ("CD", "DD", "IDD", "HD"):
        kwargs = {"max_k": k}
        if algorithm == "HD":
            kwargs["switch_threshold"] = switch_threshold
        runs[algorithm] = mine_parallel(
            algorithm, db, min_support, num_processors,
            machine=machine, **kwargs,
        )

    reference = runs["CD"]
    pass_stats = next(p for p in reference.passes if p.k == k)
    stats = db.stats()
    workload = PassModel(
        num_transactions=len(db),
        num_candidates=pass_stats.num_candidates,
        avg_transaction_length=stats.avg_length,
        k=k,
        leaf_size=leaf_size,
        avg_transaction_bytes=machine.transaction_bytes(
            round(stats.avg_length)
        ),
    )
    report.workload = workload

    hd_groups = choose_grid(
        pass_stats.num_candidates, switch_threshold, num_processors
    )
    predictions = {
        "CD": workload.cd_time(machine, num_processors),
        "DD": workload.dd_time(machine, num_processors),
        "IDD": workload.idd_time(machine, num_processors),
        "HD": workload.hd_time(machine, num_processors, hd_groups),
    }
    for algorithm, run in runs.items():
        report.timings[algorithm] = (
            run.pass_time(k),
            predictions[algorithm],
        )
    return report
