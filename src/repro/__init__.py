"""repro — reproduction of "Scalable Parallel Data Mining for Association Rules".

Han, Karypis & Kumar (SIGMOD 1997 / IEEE TKDE 1999).  The package
provides serial Apriori with the candidate hash tree, the CD / DD / IDD /
HD parallel formulations executed on a simulated message-passing
machine, the IBM Quest-style synthetic data generator, the Section IV
analytical model, and an experiment harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import Apriori, generate_rules
    from repro.data import supermarket

    db = supermarket()
    result = Apriori(min_support=0.4).mine(db)
    rules = generate_rules(result.frequent, len(db), min_confidence=0.6)

Parallel mining on the simulated Cray T3E::

    from repro.parallel import mine_parallel

    hd = mine_parallel("HD", db, min_support=0.4, num_processors=8,
                       switch_threshold=100)
"""

from .core import (
    Apriori,
    AprioriResult,
    AssociationRule,
    HashTree,
    TransactionDB,
    generate_rules,
    rules_from_result,
)
from .parallel import MiningResult, mine_parallel
from .reporting import format_report

__version__ = "1.0.0"

__all__ = [
    "Apriori",
    "AprioriResult",
    "AssociationRule",
    "HashTree",
    "MiningResult",
    "TransactionDB",
    "__version__",
    "format_report",
    "generate_rules",
    "mine_parallel",
    "rules_from_result",
]
