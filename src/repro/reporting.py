"""Human-readable run reports for serial and parallel mining results.

``repro-mine mine ... --report`` and library users get a per-pass table
(candidates, frequent counts, grids, scans) plus a runtime decomposition
for parallel runs — the same information the paper's prose quotes when
discussing its figures ("for 64 processors, these overheads are 24.8%
and 31.0%").
"""

from __future__ import annotations

from typing import List, Union

from .core.apriori import AprioriResult
from .core.summaries import support_histogram
from .parallel.base import MiningResult

__all__ = ["format_report"]

_CATEGORY_ORDER = (
    "subset",
    "tree_build",
    "candgen",
    "comm",
    "reduce",
    "io",
    "idle",
    "recover",
)


def format_report(result: Union[AprioriResult, MiningResult]) -> str:
    """Render a mining result as a multi-section text report."""
    if isinstance(result, MiningResult):
        return _format_parallel(result)
    return _format_serial(result)


def _header(result: Union[AprioriResult, MiningResult]) -> List[str]:
    histogram = support_histogram(result.frequent)
    sizes = ", ".join(
        f"|F{k}|={histogram[k]}" for k in sorted(histogram)
    )
    return [
        f"transactions: {result.num_transactions}   "
        f"min support: {result.min_support:.4g} "
        f"(count >= {result.min_count})",
        f"frequent item-sets: {len(result.frequent)}"
        + (f"   ({sizes})" if sizes else ""),
    ]


def _format_serial(result: AprioriResult) -> str:
    lines = ["=== serial Apriori run ==="]
    lines.extend(_header(result))
    lines.append("")
    lines.append(
        f"{'pass':>5s} {'candidates':>11s} {'frequent':>9s} "
        f"{'leaves':>8s} {'visits/tx':>10s}"
    )
    for trace in result.passes:
        leaves = (
            str(trace.tree_shape.num_leaves) if trace.tree_shape else "-"
        )
        visits = (
            f"{trace.tree_stats.avg_leaf_visits_per_transaction:.1f}"
            if trace.tree_stats
            else "-"
        )
        lines.append(
            f"{trace.k:>5d} {trace.num_candidates:>11d} "
            f"{trace.num_frequent:>9d} {leaves:>8s} {visits:>10s}"
        )
    return "\n".join(lines)


def _format_parallel(result: MiningResult) -> str:
    lines = [
        f"=== {result.algorithm} run on {result.num_processors} "
        "simulated processors ==="
    ]
    lines.extend(_header(result))
    lines.append(
        f"response time: {result.total_time:.6f}s (simulated)"
    )
    lines.append("")
    lines.append(
        f"{'pass':>5s} {'candidates':>11s} {'frequent':>9s} "
        f"{'grid':>8s} {'scans':>6s} {'imbal':>7s} {'time':>10s}"
    )
    for pass_stats in result.passes:
        grid = f"{pass_stats.grid[0]}x{pass_stats.grid[1]}"
        lines.append(
            f"{pass_stats.k:>5d} {pass_stats.num_candidates:>11d} "
            f"{pass_stats.num_frequent:>9d} {grid:>8s} "
            f"{pass_stats.tree_partitions:>6d} "
            f"{pass_stats.candidate_imbalance:>7.1%} "
            f"{result.pass_time(pass_stats.k):>10.6f}"
        )
    lines.append("")
    lines.append("runtime decomposition (mean seconds per processor):")
    for category in _CATEGORY_ORDER:
        seconds = result.breakdown.get(category, 0.0)
        if seconds <= 0:
            continue
        lines.append(
            f"  {category:>10s}: {seconds:10.6f} "
            f"({result.overhead_fraction(category):.1%} of response time)"
        )
    return "\n".join(lines)
