"""Hash-tree memory pressure: CD's multiple database scans.

When the candidate hash tree does not fit in a processor's main memory,
CD "has to partition the hash tree and compute the counts by scanning
the database multiple times, once for each partition of the hash tree"
(Section III-A).  The per-processor capacity lives on the
:class:`~repro.cluster.machine.MachineSpec`; this module turns it into
the candidate-set chunking and the extra scan count the cost model
charges in Figures 12 and 15.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..core.items import Itemset

__all__ = ["num_tree_partitions", "partition_for_memory", "tree_fits"]


def num_tree_partitions(num_candidates: int, capacity: Optional[int]) -> int:
    """Number of hash-tree partitions (and database scans) required.

    Args:
        num_candidates: M for the pass.
        capacity: per-processor tree capacity in candidates; ``None`` or
            a capacity >= M means a single partition.
    """
    if num_candidates < 0:
        raise ValueError("num_candidates must be non-negative")
    if capacity is None or num_candidates == 0:
        return 1
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return max(1, math.ceil(num_candidates / capacity))


def tree_fits(num_candidates: int, capacity: Optional[int]) -> bool:
    """True when the whole candidate set fits one in-memory tree."""
    return num_tree_partitions(num_candidates, capacity) == 1


def partition_for_memory(
    candidates: Sequence[Itemset], capacity: Optional[int]
) -> List[Sequence[Itemset]]:
    """Split a candidate list into in-memory-sized contiguous chunks."""
    parts = num_tree_partitions(len(candidates), capacity)
    if parts == 1:
        return [candidates]
    chunk = math.ceil(len(candidates) / parts)
    return [candidates[i : i + chunk] for i in range(0, len(candidates), chunk)]
