"""Machine model: the parameters of the simulated parallel computer.

The paper evaluates on a 128-processor Cray T3E (600 MHz Alpha EV5,
3-D torus, 303 MB/s measured MPI bandwidth, 16 us startup) and a
16-processor IBM SP2 (66.7 MHz Power2, ~35 MB/s effective switch
bandwidth).  We cannot run those machines, so :class:`MachineSpec`
captures exactly the cost coefficients the paper's own Section IV
analysis uses:

* ``t_startup`` / ``t_byte`` — the classic (ts, tw) message cost pair of
  Kumar et al., *Introduction to Parallel Computing* (the book the paper
  cites for all its collective-communication costs);
* ``t_travers`` / ``t_check`` — the per-potential-candidate traversal and
  per-leaf checking costs of the paper's Table III;
* hash-tree build, candidate generation, reduction-combine, and raw
  item-scan unit costs;
* I/O bandwidth and the per-processor hash-tree memory capacity that
  forces CD into multiple database scans (Figures 12 and 15);
* ``async_overlap`` — whether communication overlaps computation
  (Section III-C: IDD's non-blocking ring pipeline benefits only on
  hardware with asynchronous communication support);
* ``contention_per_processor`` — the network-contention penalty of DD's
  unstructured all-to-all page scattering on sparse networks
  (Section III-B: "this communication pattern will take significantly
  more than O(N) time because of contention");
* ``t_detect`` / ``t_respawn`` — the per-processor failure hooks: how
  long the group takes to notice a dead processor (a poll/heartbeat
  timeout) and how long restarting one costs before its transaction
  block is re-shipped.  The paper assumes processors never fail; these
  coefficients extend the model so the fault-injection layer
  (:mod:`repro.faults`) can charge recovery time without touching any
  published figure (they are only consulted when faults are injected).

All coefficients are in seconds (per unit of work).  Absolute values are
calibrated to be *plausible* for the paper's hardware; the reproduction
claims concern relative behaviour, which depends on the ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["MachineSpec", "CRAY_T3E", "IBM_SP2", "subset_time"]


@dataclass(frozen=True)
class MachineSpec:
    """Cost coefficients of one simulated message-passing machine.

    Attributes:
        name: label used in reports.
        t_startup: message startup latency, seconds (ts).
        t_byte: per-byte transfer time, seconds (tw).
        t_travers: one hash tree child descent (Table III t_travers).
        t_check: one candidate containment test at a leaf.
        t_leaf_visit: fixed overhead per distinct leaf visited
            (Table III prices t_check per reached leaf with S candidates;
            we split it into per-visit plus per-candidate parts).
        t_item: touching one transaction item during root-level scans and
            pass-1 counting.
        t_insert: inserting one candidate into the hash tree (the "hash
            tree construction" cost CD fails to parallelize).
        t_candgen: generating one candidate in apriori_gen (performed
            redundantly on every processor in all formulations).
        t_reduce_op: combining one candidate count during a reduction
            step or frequent-set filter.
        bytes_per_item: wire size of one item id.
        bytes_per_count: wire size of one candidate count in reductions.
        bytes_per_transaction_header: framing per transaction on the wire.
        io_bandwidth: local-disk scan bandwidth, bytes/second.
        memory_candidates: hash tree capacity per processor in
            candidates; ``None`` means unbounded (the T3E runs where the
            whole tree fits).  When bounded, CD splits its candidate set
            into ``ceil(M / memory_candidates)`` partitions and re-scans
            the database for each (Section III-A).
        async_overlap: communication/computation overlap supported.
        contention_per_processor: extra serialization per peer for DD's
            naive all-to-all; effective cost is multiplied by
            ``1 + contention_per_processor * (P - 1)``.
        t_detect: seconds until a dead processor is detected (the
            heartbeat / recv-poll timeout of the failure hooks).
        t_respawn: seconds to restart a failed processor before its
            block is re-shipped; see :meth:`recovery_time`.
    """

    name: str
    t_startup: float
    t_byte: float
    t_travers: float
    t_check: float
    t_leaf_visit: float
    t_item: float
    t_insert: float
    t_candgen: float
    t_reduce_op: float
    bytes_per_item: int = 4
    bytes_per_count: int = 8
    bytes_per_transaction_header: int = 4
    io_bandwidth: float = 50e6
    memory_candidates: Optional[int] = None
    async_overlap: bool = True
    contention_per_processor: float = 0.25
    t_detect: float = 0.05
    t_respawn: float = 0.5

    def recovery_time(self, block_bytes: float = 0.0) -> float:
        """Seconds to bring a failed processor's block back online.

        Restart cost plus the point-to-point transfer of the block to
        the respawned (or adopting) processor.  Consulted only by the
        fault hooks — fault-free runs never pay it.
        """
        if block_bytes < 0:
            raise ValueError(f"block_bytes must be >= 0, got {block_bytes}")
        transfer = self.message_time(block_bytes) if block_bytes > 0 else 0.0
        return self.t_respawn + transfer

    def with_memory(self, memory_candidates: Optional[int]) -> "MachineSpec":
        """Copy of this machine with a different hash-tree capacity."""
        return replace(self, memory_candidates=memory_candidates)

    def with_overlap(self, async_overlap: bool) -> "MachineSpec":
        """Copy of this machine with overlap support toggled."""
        return replace(self, async_overlap=async_overlap)

    def transaction_bytes(self, num_items: int) -> int:
        """Wire/disk size of one transaction with ``num_items`` items."""
        return self.bytes_per_transaction_header + self.bytes_per_item * num_items

    def message_time(self, nbytes: float) -> float:
        """Point-to-point transfer time: ts + n * tw."""
        return self.t_startup + nbytes * self.t_byte


# Cray T3E: 600 MHz Alpha EV5; measured 303 MB/s bandwidth and 16 us
# effective startup for 16 KB messages (paper Section V).  Compute unit
# costs are calibrated so that, at the paper's N/M ratios, CD's hash tree
# construction is ~3% of runtime on 4 processors and ~25% on 64
# (Figure 13 discussion), which fixes t_insert and t_reduce_op relative
# to t_travers/t_check.
CRAY_T3E = MachineSpec(
    name="Cray T3E",
    t_startup=16e-6,
    t_byte=1.0 / 303e6,
    t_travers=1.0e-7,
    t_check=2.0e-7,
    t_leaf_visit=1.0e-7,
    t_item=5.0e-8,
    t_insert=9.0e-7,
    t_candgen=3.0e-7,
    t_reduce_op=2.0e-7,
    io_bandwidth=50e6,
    memory_candidates=None,
    async_overlap=True,
    contention_per_processor=1.0,
)

# IBM SP2: 66.7 MHz Power2 (roughly 4x slower per operation than the
# T3E's Alpha on this pointer-chasing workload), HPS switch with
# ~35 MB/s effective bandwidth and higher startup; "scalable and fast"
# parallel I/O (Section V), modeled at 20 MB/s per node.
IBM_SP2 = MachineSpec(
    name="IBM SP2",
    t_startup=40e-6,
    t_byte=1.0 / 35e6,
    t_travers=4.0e-7,
    t_check=8.0e-7,
    t_leaf_visit=4.0e-7,
    t_item=2.0e-7,
    t_insert=3.6e-6,
    t_candgen=1.2e-6,
    t_reduce_op=8.0e-7,
    io_bandwidth=20e6,
    memory_candidates=None,
    async_overlap=True,
    contention_per_processor=1.0,
)


def subset_time(stats, spec: MachineSpec) -> float:
    """Convert measured hash-tree work counters into seconds.

    ``stats`` is a :class:`repro.core.hashtree.HashTreeStats` (duck-typed
    to avoid a circular import).  This is the only bridge between the
    executed algorithm and the virtual clock: every term is a *measured*
    counter priced at a machine coefficient, mirroring Table III.
    """
    return (
        stats.root_items_scanned * spec.t_item
        + stats.hash_steps * spec.t_travers
        + stats.leaf_visits * spec.t_leaf_visit
        + stats.candidates_checked * spec.t_check
    )
