"""The virtual message-passing cluster.

:class:`VirtualCluster` plays the role of the Cray T3E in this
reproduction.  Each virtual processor carries a clock; the parallel
algorithms *actually execute* their per-processor work (on that
processor's data partition, with that processor's candidate partition)
and charge the measured work to the clock through the machine's cost
coefficients.  Synchronization points (collectives, ring-step barriers)
align clocks and book the difference as **idle time** — which is exactly
how load imbalance becomes visible in the experiments, without any
modeling assumptions about where imbalance comes from.

Accounting is per-processor and per-category (``subset``, ``tree_build``,
``candgen``, ``comm``, ``reduce``, ``io``, ``idle``) so experiments can
report the same runtime decompositions the paper quotes (e.g. "for 64
processors these overheads are 24.8% and 31.0%").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from . import collectives
from .machine import MachineSpec

__all__ = ["VirtualCluster"]


class VirtualCluster:
    """P virtual processors with clocks, cost accounting and collectives.

    Args:
        num_processors: P.
        spec: the machine cost model.
        trace: optional :class:`~repro.cluster.trace.TimelineTrace`; when
            given, every charged interval (including idle waits) is
            recorded for Gantt rendering.
        faults: optional :class:`~repro.faults.FaultSpec`; its ``kill``
            events drive the per-processor failure hooks
            (:meth:`apply_pass_faults`).  ``None`` (the default) keeps
            the paper's failure-free machine — no run is perturbed.
    """

    def __init__(
        self, num_processors: int, spec: MachineSpec, trace=None, faults=None
    ):
        if num_processors < 1:
            raise ValueError(
                f"num_processors must be >= 1, got {num_processors}"
            )
        self.num_processors = num_processors
        self.spec = spec
        self.trace = trace
        self.faults = faults
        self._clock: List[float] = [0.0] * num_processors
        self._by_category: List[Dict[str, float]] = [
            defaultdict(float) for _ in range(num_processors)
        ]

    # ------------------------------------------------------------------
    # Clock primitives
    # ------------------------------------------------------------------

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.num_processors:
            raise ValueError(
                f"processor id {pid} out of range [0, {self.num_processors})"
            )

    def clock(self, pid: int) -> float:
        """Current virtual time of processor ``pid``."""
        self._check_pid(pid)
        return self._clock[pid]

    def advance(self, pid: int, seconds: float, category: str) -> None:
        """Charge ``seconds`` of ``category`` work to processor ``pid``."""
        self._check_pid(pid)
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time: {seconds}")
        start = self._clock[pid]
        self._clock[pid] = start + seconds
        self._by_category[pid][category] += seconds
        if self.trace is not None:
            self.trace.record(pid, start, start + seconds, category)

    def synchronize(self, pids: Optional[Sequence[int]] = None) -> float:
        """Barrier across ``pids`` (default: all); returns the sync time.

        Every participant's clock jumps to the group maximum and the wait
        is booked as ``idle``.
        """
        group = self._group(pids)
        latest = max(self._clock[p] for p in group)
        for p in group:
            wait = latest - self._clock[p]
            if wait > 0:
                if self.trace is not None:
                    self.trace.record(p, self._clock[p], latest, "idle")
                self._clock[p] = latest
                self._by_category[p]["idle"] += wait
        return latest

    def _group(self, pids: Optional[Sequence[int]]) -> Sequence[int]:
        if pids is None:
            return range(self.num_processors)
        if not pids:
            raise ValueError("processor group must not be empty")
        for p in pids:
            self._check_pid(p)
        return pids

    # ------------------------------------------------------------------
    # Per-processor failure hooks
    # ------------------------------------------------------------------

    def apply_pass_faults(self, k: int, block_bytes: float = 0.0) -> List[int]:
        """Fail-and-recover processors the fault plan kills at pass ``k``.

        For each processor with a ``kill`` event at this pass, the hook
        marks the death on the timeline and charges detection
        (``t_detect``) plus :meth:`~repro.cluster.machine.MachineSpec.
        recovery_time` of the processor's ``block_bytes`` to its clock
        as ``recover`` time.  The counting work itself is unaffected —
        recovery re-runs it on the respawned processor, so mined results
        stay bit-identical; the cost shows up as response time (and as
        idle time on the survivors at the next barrier), exactly like
        the native pool's real recovery.

        Returns the processor ids that failed (empty without a plan).
        """
        if self.faults is None:
            return []
        failed = [
            pid
            for pid in self.faults.failing_at(k)
            if 0 <= pid < self.num_processors
        ]
        for pid in failed:
            if self.trace is not None:
                self.trace.mark_fault(pid, self._clock[pid], "kill")
            self.advance(
                pid,
                self.spec.t_detect + self.spec.recovery_time(block_bytes),
                "recover",
            )
        return failed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def elapsed(self) -> float:
        """Parallel response time so far: the latest processor clock."""
        return max(self._clock)

    def clocks(self) -> List[float]:
        """Copy of all processor clocks."""
        return list(self._clock)

    def breakdown(self, pid: int) -> Dict[str, float]:
        """Per-category seconds charged to one processor (a copy)."""
        self._check_pid(pid)
        return dict(self._by_category[pid])

    def breakdown_mean(self) -> Dict[str, float]:
        """Per-category seconds averaged over processors.

        The averages sum to (approximately) the mean clock; dividing a
        category by :meth:`elapsed` gives the "% of runtime" decomposition
        the paper reports.
        """
        totals: Dict[str, float] = defaultdict(float)
        for per_proc in self._by_category:
            for category, seconds in per_proc.items():
                totals[category] += seconds
        return {
            category: seconds / self.num_processors
            for category, seconds in totals.items()
        }

    def category_total(self, category: str) -> float:
        """Sum of one category across all processors."""
        return sum(per_proc.get(category, 0.0) for per_proc in self._by_category)

    # ------------------------------------------------------------------
    # Collectives (each synchronizes the group, then charges the cost)
    # ------------------------------------------------------------------

    def all_reduce(
        self,
        nbytes: float,
        pids: Optional[Sequence[int]] = None,
        combine_ops: int = 0,
        category: str = "reduce",
    ) -> None:
        """Recursive-doubling all-reduce within a group.

        Args:
            nbytes: vector size per processor.
            pids: participating processors (default all).
            combine_ops: element-combine operations performed per
                reduction step (typically the candidate count), charged
                at ``t_reduce_op`` per step.
            category: accounting bucket for the communication time.
        """
        group = self._group(pids)
        self.synchronize(group)
        comm = collectives.all_reduce_time(len(group), nbytes, self.spec)
        steps = max(0, (len(group) - 1).bit_length())
        compute = steps * combine_ops * self.spec.t_reduce_op
        for p in group:
            self.advance(p, comm, category)
            if compute:
                self.advance(p, compute, "reduce")

    def all_to_all_broadcast(
        self,
        nbytes: float,
        pids: Optional[Sequence[int]] = None,
        naive: bool = False,
        category: str = "comm",
    ) -> None:
        """All-to-all broadcast of ``nbytes`` per processor within a group.

        ``naive=True`` selects DD's contended pattern; the default is the
        ring pattern IDD/HD use.
        """
        group = self._group(pids)
        self.synchronize(group)
        if naive:
            cost = collectives.all_to_all_broadcast_naive_time(
                len(group), nbytes, self.spec
            )
        else:
            cost = collectives.all_to_all_broadcast_ring_time(
                len(group), nbytes, self.spec
            )
        for p in group:
            self.advance(p, cost, category)

    def overlapped_step(
        self,
        compute_seconds: Dict[int, float],
        comm_bytes: float,
        compute_category: str = "subset",
        synchronize: bool = True,
    ) -> None:
        """One pipeline step: per-processor compute overlapped with a shift.

        Models IDD's non-blocking send/receive (Figure 6): on machines
        with ``async_overlap`` the step costs ``max(compute, comm)`` per
        processor; otherwise compute and communication serialize.  The
        compute part is charged to ``compute_category``; any exposed
        communication time to ``comm``.  A barrier (booked as idle)
        follows by default, since the next step needs every neighbor's
        buffer delivered.

        Args:
            compute_seconds: processor id → seconds of computation during
                this step; the keys define the participating group.
            comm_bytes: bytes shifted by each processor this step (0 for
                the final, communication-free step).
        """
        if not compute_seconds:
            raise ValueError("compute_seconds must not be empty")
        group = list(compute_seconds)
        comm = (
            collectives.ring_shift_step_time(comm_bytes, self.spec)
            if comm_bytes > 0
            else 0.0
        )
        for p in group:
            compute = compute_seconds[p]
            self.advance(p, compute, compute_category)
            if comm <= 0:
                continue
            if self.spec.async_overlap:
                exposed = max(0.0, comm - compute)
            else:
                exposed = comm
            if exposed > 0:
                self.advance(p, exposed, "comm")
        if synchronize:
            self.synchronize(group)

    def blocking_exchange(
        self,
        compute_seconds: Dict[int, float],
        comm_seconds: float,
        compute_category: str = "subset",
    ) -> None:
        """DD-style blocking round: communication never overlaps compute."""
        if not compute_seconds:
            raise ValueError("compute_seconds must not be empty")
        group = list(compute_seconds)
        for p in group:
            self.advance(p, compute_seconds[p], compute_category)
            if comm_seconds > 0:
                self.advance(p, comm_seconds, "comm")
        self.synchronize(group)

    def charge_io(self, pid: int, nbytes: float) -> None:
        """Charge a local-disk scan of ``nbytes`` to one processor."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        self.advance(pid, nbytes / self.spec.io_bandwidth, "io")
