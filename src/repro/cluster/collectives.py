"""Collective-communication cost formulas.

The paper prices every communication step through the models of Kumar,
Grama, Gupta & Karypis, *Introduction to Parallel Computing* (its
reference [9]).  With ``ts`` the message startup time, ``tw`` the
per-byte transfer time, ``P`` the group size and ``m`` the message size
in bytes:

* **ring shift step** (IDD's pipeline, Figure 6): one neighbor
  exchange — ``ts + m*tw``;
* **ring all-to-all broadcast** (frequent-set exchange): ``(P-1) *
  (ts + m*tw)`` — "does not suffer from the contention problems of the
  DD algorithm and takes O(N) time on any parallel architecture that can
  be embedded in a ring" (Section III-C);
* **naive all-to-all scatter** (DD's page broadcasting, Section III-B):
  each processor issues ``P-1`` independent sends; on realistic sparse
  networks contention inflates this beyond O(N).  We model the inflation
  with a per-peer contention coefficient:
  ``(P-1) * (ts + m*tw) * (1 + alpha*(P-1))``;
* **recursive-doubling all-reduce** (CD's count reduction, HD's row
  reduction): ``ceil(log2 P) * (ts + m*tw)``;
* **one-to-all broadcast**: ``ceil(log2 P) * (ts + m*tw)``.

All functions return seconds of *wall-clock* time experienced by each
participating processor; they are pure so they can be unit-tested
against hand-computed values.
"""

from __future__ import annotations

import math

from .machine import MachineSpec

__all__ = [
    "ring_shift_step_time",
    "all_to_all_broadcast_ring_time",
    "all_to_all_broadcast_naive_time",
    "all_to_all_personalized_time",
    "all_reduce_time",
    "broadcast_time",
]


def _check_group(num_processors: int) -> None:
    if num_processors < 1:
        raise ValueError(
            f"group size must be >= 1, got {num_processors}"
        )


def ring_shift_step_time(nbytes: float, spec: MachineSpec) -> float:
    """One simultaneous neighbor exchange of ``nbytes`` around a ring."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return spec.message_time(nbytes)


def all_to_all_broadcast_ring_time(
    num_processors: int, nbytes: float, spec: MachineSpec
) -> float:
    """Ring-based all-to-all broadcast of ``nbytes`` per processor."""
    _check_group(num_processors)
    if num_processors == 1:
        return 0.0
    return (num_processors - 1) * spec.message_time(nbytes)


def all_to_all_broadcast_naive_time(
    num_processors: int, nbytes: float, spec: MachineSpec
) -> float:
    """DD's contended all-to-all: P-1 point-to-point sends per processor.

    The ``contention_per_processor`` coefficient of the machine inflates
    the cost to reflect link contention when every processor sprays
    pages at every other processor simultaneously over a sparse network.
    With the coefficient at 0 this degrades gracefully to the ring cost.
    """
    _check_group(num_processors)
    if num_processors == 1:
        return 0.0
    contention = 1.0 + spec.contention_per_processor * (num_processors - 1)
    return (num_processors - 1) * spec.message_time(nbytes) * contention


def all_to_all_personalized_time(
    num_processors: int, nbytes_per_pair: float, spec: MachineSpec
) -> float:
    """All-to-all personalized exchange (each pair trades distinct data).

    Used by HPA's potential-candidate routing: every processor sends a
    different ``nbytes_per_pair`` message to every other processor.  On
    a ring this costs ``(P-1) * (ts + (P/2) * m * tw)`` in the Kumar et
    al. model; we use the conservative hypercube variant
    ``(P-1) * (ts + m*tw)`` messages fully serialized per processor,
    which is what store-and-forward MPI gives without topology tricks.
    """
    _check_group(num_processors)
    if num_processors == 1:
        return 0.0
    return (num_processors - 1) * spec.message_time(nbytes_per_pair)


def all_reduce_time(
    num_processors: int, nbytes: float, spec: MachineSpec
) -> float:
    """Recursive-doubling all-reduce of an ``nbytes`` vector."""
    _check_group(num_processors)
    if num_processors == 1:
        return 0.0
    steps = math.ceil(math.log2(num_processors))
    return steps * spec.message_time(nbytes)


def broadcast_time(num_processors: int, nbytes: float, spec: MachineSpec) -> float:
    """One-to-all broadcast of ``nbytes`` over a binomial tree."""
    _check_group(num_processors)
    if num_processors == 1:
        return 0.0
    steps = math.ceil(math.log2(num_processors))
    return steps * spec.message_time(nbytes)
