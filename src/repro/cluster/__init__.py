"""Simulated message-passing machine (the Cray T3E / IBM SP2 stand-in)."""

from .cluster import VirtualCluster
from .collectives import (
    all_reduce_time,
    all_to_all_broadcast_naive_time,
    all_to_all_broadcast_ring_time,
    broadcast_time,
    ring_shift_step_time,
)
from .machine import CRAY_T3E, IBM_SP2, MachineSpec, subset_time
from .memory import num_tree_partitions, partition_for_memory, tree_fits
from .trace import CATEGORY_GLYPHS, TimelineTrace, TraceSegment

__all__ = [
    "CRAY_T3E",
    "IBM_SP2",
    "CATEGORY_GLYPHS",
    "MachineSpec",
    "TimelineTrace",
    "TraceSegment",
    "VirtualCluster",
    "all_reduce_time",
    "all_to_all_broadcast_naive_time",
    "all_to_all_broadcast_ring_time",
    "broadcast_time",
    "num_tree_partitions",
    "partition_for_memory",
    "ring_shift_step_time",
    "subset_time",
    "tree_fits",
]
