"""Execution timeline tracing for the virtual cluster.

Attaching a :class:`TimelineTrace` to a :class:`~repro.cluster.cluster.
VirtualCluster` records every charged interval as a (processor, start,
end, category) segment.  The trace renders as an ASCII Gantt chart —
one row per processor, one character per time bucket, letters keyed by
category — which makes the algorithms' structure visible: CD's wide
tree-build bands, DD's communication stripes, IDD's idle tails on the
under-loaded processors, HD's per-column phases.

Fault events from the failure hooks (see
:meth:`~repro.cluster.cluster.VirtualCluster.apply_pass_faults`) are
point marks rather than intervals: :meth:`TimelineTrace.mark_fault`
records the instant a processor died, rendered as a ``!`` overlay on the
Gantt chart; the recovery interval that follows is a normal ``recover``
segment.

Tracing is opt-in and adds no cost when absent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "TraceSegment",
    "FaultMark",
    "TimelineTrace",
    "CATEGORY_GLYPHS",
    "FAULT_GLYPH",
]

CATEGORY_GLYPHS: Dict[str, str] = {
    "subset": "s",
    "tree_build": "b",
    "candgen": "g",
    "comm": "c",
    "reduce": "r",
    "io": "i",
    "idle": ".",
    "rulegen": "u",
    "recover": "R",
}
_UNKNOWN_GLYPH = "?"
FAULT_GLYPH = "!"


@dataclass(frozen=True)
class TraceSegment:
    """One charged interval on one processor's timeline."""

    pid: int
    start: float
    end: float
    category: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FaultMark:
    """One point-in-time fault event on one processor's timeline."""

    pid: int
    time: float
    kind: str


class TimelineTrace:
    """Recorder of per-processor time segments and fault marks."""

    def __init__(self) -> None:
        self._segments: List[TraceSegment] = []
        self._faults: List[FaultMark] = []

    def record(self, pid: int, start: float, end: float, category: str) -> None:
        """Append one segment (zero-length segments are dropped)."""
        if end < start:
            raise ValueError(
                f"segment ends before it starts: [{start}, {end}]"
            )
        if end > start:
            self._segments.append(TraceSegment(pid, start, end, category))

    def mark_fault(self, pid: int, time: float, kind: str) -> None:
        """Record a point-in-time fault event (a processor death)."""
        if time < 0:
            raise ValueError(f"fault time must be >= 0, got {time}")
        self._faults.append(FaultMark(pid, time, kind))

    @property
    def segments(self) -> List[TraceSegment]:
        """All recorded segments, in recording order."""
        return list(self._segments)

    @property
    def faults(self) -> List[FaultMark]:
        """All recorded fault marks, in recording order."""
        return list(self._faults)

    def for_processor(self, pid: int) -> List[TraceSegment]:
        """Segments of one processor, ordered by start time."""
        return sorted(
            (s for s in self._segments if s.pid == pid),
            key=lambda s: s.start,
        )

    def end_time(self) -> float:
        """Latest segment end across all processors (0 when empty)."""
        return max((s.end for s in self._segments), default=0.0)

    def busy_fraction(self, pid: int, category: Optional[str] = None) -> float:
        """Fraction of the trace span a processor spends non-idle.

        With ``category`` given, the fraction spent in that category.
        """
        span = self.end_time()
        if span <= 0:
            return 0.0
        if category is None:
            busy = sum(
                s.duration
                for s in self._segments
                if s.pid == pid and s.category != "idle"
            )
        else:
            busy = sum(
                s.duration
                for s in self._segments
                if s.pid == pid and s.category == category
            )
        return busy / span

    def render_gantt(self, num_processors: int, width: int = 72) -> str:
        """Render the trace as an ASCII Gantt chart.

        Each row is one processor; each column a time bucket whose glyph
        is the category occupying most of that bucket.

        Args:
            num_processors: rows to draw (processors without segments
                render blank).
            width: chart width in characters.
        """
        if width < 8:
            raise ValueError("gantt width must be at least 8")
        span = self.end_time()
        lines = [f"timeline ({span:.6f}s simulated, {width} buckets)"]
        if span <= 0:
            lines.append("(no recorded segments)")
            return "\n".join(lines)
        bucket = span / width
        for pid in range(num_processors):
            row = [" "] * width
            weights: List[Dict[str, float]] = [dict() for _ in range(width)]
            for segment in self.for_processor(pid):
                first = min(width - 1, int(segment.start / bucket))
                last = min(width - 1, int(max(segment.start, segment.end - 1e-15) / bucket))
                for index in range(first, last + 1):
                    bucket_start = index * bucket
                    bucket_end = bucket_start + bucket
                    overlap = min(segment.end, bucket_end) - max(
                        segment.start, bucket_start
                    )
                    if overlap > 0:
                        weights[index][segment.category] = (
                            weights[index].get(segment.category, 0.0) + overlap
                        )
            for index, candidates in enumerate(weights):
                if candidates:
                    category = max(candidates, key=candidates.get)
                    row[index] = CATEGORY_GLYPHS.get(category, _UNKNOWN_GLYPH)
            for mark in self._faults:
                if mark.pid == pid:
                    row[min(width - 1, int(mark.time / bucket))] = FAULT_GLYPH
            lines.append(f"P{pid:03d} |{''.join(row)}|")
        legend = "  ".join(
            f"{glyph}={category}" for category, glyph in CATEGORY_GLYPHS.items()
        )
        lines.append(f"legend: {legend}  {FAULT_GLYPH}=fault")
        return "\n".join(lines)
