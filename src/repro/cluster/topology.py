"""Interconnect topologies and their all-to-all contention bounds.

Section III-B grounds DD's communication problem in network structure:
"On all realistic parallel computers, the processors are connected via
a sparser networks (such as 2D, 3D or hypercube) and a processor can
receive data from (or send data to) only one other processor at a time.
On such machines, this communication pattern will take significantly
more than O(N) time because of contention."

This module quantifies that argument with the standard bisection-width
bound: an unstructured all-to-all moves ~P²m/4 bytes across the network
bisection, so relative to an uncontended ring broadcast its slowdown is
at least ``P / (2 * bisection_width)``.  The factors below feed the
topology ablation experiment; the machine presets use a flat *effective*
coefficient instead (calibrated to include per-page startups and buffer
stalls the pure bandwidth bound ignores — see
:class:`~repro.cluster.machine.MachineSpec`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "Topology",
    "RING",
    "MESH_2D",
    "TORUS_3D",
    "HYPERCUBE",
    "FULLY_CONNECTED",
    "ALL_TOPOLOGIES",
]


@dataclass(frozen=True)
class Topology:
    """One interconnect family.

    Attributes:
        name: label ("ring", "3d-torus", ...).
        _bisection: function P → bisection width in links.
    """

    name: str
    _bisection: Callable[[int], float]

    def bisection_width(self, num_processors: int) -> float:
        """Links crossing the network bisection at size P."""
        if num_processors < 1:
            raise ValueError(
                f"num_processors must be >= 1, got {num_processors}"
            )
        if num_processors == 1:
            return 1.0
        return max(1.0, self._bisection(num_processors))

    def contention_factor(self, num_processors: int) -> float:
        """Slowdown of an unstructured all-to-all vs a ring broadcast.

        The bisection bound ``P / (2 * B)``, floored at 1 (a network
        cannot make the pattern faster than the uncontended cost).
        """
        if num_processors == 1:
            return 1.0
        return max(
            1.0, num_processors / (2.0 * self.bisection_width(num_processors))
        )


RING = Topology("ring", lambda p: 2.0)
MESH_2D = Topology("2d-mesh", lambda p: math.sqrt(p))
TORUS_3D = Topology("3d-torus", lambda p: 2.0 * p ** (2.0 / 3.0))
HYPERCUBE = Topology("hypercube", lambda p: p / 2.0)
FULLY_CONNECTED = Topology("fully-connected", lambda p: p * p / 4.0)

ALL_TOPOLOGIES = (RING, MESH_2D, TORUS_3D, HYPERCUBE, FULLY_CONNECTED)
