"""Typed client for the rule-serving daemon.

:class:`RuleClient` speaks the line-JSON protocol of
:mod:`repro.serve.server` over one persistent TCP connection and maps
replies onto typed results (:class:`QueryReply`, :class:`StatsReply`).

Reconnect policy — deliberately minimal and testable: when a request
fails because the connection dropped (server restarted, connection
reset, stale keep-alive), the client reconnects and retries the request
**exactly once**.  A second failure propagates to the caller; queries
are idempotent reads, so one transparent retry is safe, while retry
loops would mask a down server.  :attr:`last_retries` reports how many
retries the most recent request used (0 or 1), which the concurrency
tests assert on.
"""

from __future__ import annotations

import json
import socket
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from .model import Suggestion

__all__ = ["QueryReply", "RuleClient", "ServerError", "StatsReply"]


class ServerError(RuntimeError):
    """The daemon answered with ``status: error`` (or ``busy``)."""


@dataclass(frozen=True)
class QueryReply:
    """One basket query's answer.

    Attributes:
        generation: model generation that answered (all suggestions in
            one reply come from this single snapshot).
        basket: the canonicalized basket echoed back.
        suggestions: recommended items, best rule first.
    """

    generation: int
    basket: list[int]
    suggestions: list[Suggestion] = field(default_factory=list)

    @property
    def items(self) -> list[int]:
        """Just the suggested item ids, in rank order."""
        return [s.item for s in self.suggestions]


@dataclass(frozen=True)
class StatsReply:
    """The daemon's observability snapshot."""

    generation: int
    queries: int
    failed_queries: int
    query_p50_ms: float
    query_p99_ms: float
    remines: int
    remine_failures: int
    last_remine_error: str | None
    remine_in_progress: bool
    uptime_seconds: float
    model: dict[str, Any]


class RuleClient:
    """Line-JSON client over one persistent, lazily opened connection."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 10.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._reader = None
        #: Retries used by the most recent request (0 or 1).
        self.last_retries = 0

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------

    def _connect(self) -> None:
        self.close()
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self) -> None:
        """Drop the connection (the next request reopens it)."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> RuleClient:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _roundtrip_once(self, request: dict[str, Any]) -> dict[str, Any]:
        if self._sock is None:
            self._connect()
        assert self._sock is not None and self._reader is not None
        payload = json.dumps(request, separators=(",", ":")).encode("utf-8")
        self._sock.sendall(payload + b"\n")
        line = self._reader.readline()
        if not line:
            # The server closed the connection without answering — the
            # restart window; surface it as a reset so the retry fires.
            raise ConnectionResetError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Send one request; reconnect and retry exactly once on reset."""
        self.last_retries = 0
        try:
            return self._roundtrip_once(request)
        except OSError:
            # Covers connection reset/refused, broken pipe, timeouts —
            # every way a bounced daemon can drop the connection.
            self.close()
        self.last_retries = 1
        try:
            self._connect()
            return self._roundtrip_once(request)
        except OSError:
            self.close()
            raise

    def _checked(self, request: dict[str, Any]) -> dict[str, Any]:
        reply = self.request(request)
        if reply.get("status") != "ok":
            raise ServerError(
                reply.get("error") or f"server replied {reply.get('status')!r}"
            )
        return reply

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------

    def ping(self) -> int:
        """Round-trip a ping; returns the serving model generation."""
        return int(self._checked({"op": "ping"})["generation"])

    def query(
        self, basket: Sequence[int], top: int | None = None
    ) -> QueryReply:
        """Ask for suggestions for ``basket``."""
        request: dict[str, Any] = {"op": "query", "basket": list(basket)}
        if top is not None:
            request["top"] = top
        reply = self._checked(request)
        return QueryReply(
            generation=int(reply["generation"]),
            basket=list(reply["basket"]),
            suggestions=[
                Suggestion.from_dict(s) for s in reply["suggestions"]
            ],
        )

    def stats(self) -> StatsReply:
        """Fetch the daemon's stats snapshot."""
        reply = self._checked({"op": "stats"})
        return StatsReply(
            generation=int(reply["generation"]),
            queries=int(reply["queries"]),
            failed_queries=int(reply["failed_queries"]),
            query_p50_ms=float(reply["query_p50_ms"]),
            query_p99_ms=float(reply["query_p99_ms"]),
            remines=int(reply["remines"]),
            remine_failures=int(reply["remine_failures"]),
            last_remine_error=reply.get("last_remine_error"),
            remine_in_progress=bool(reply.get("remine_in_progress", False)),
            uptime_seconds=float(reply["uptime_seconds"]),
            model=dict(reply.get("model", {})),
        )

    def remine(self, wait: bool = False) -> dict[str, Any]:
        """Trigger a background re-mine (``wait=True`` blocks for it).

        Returns the raw reply; ``status`` is ``"busy"`` when a re-mine
        was already running and ``wait`` was false.
        """
        return self.request({"op": "remine", "wait": wait})

    def shutdown(self) -> int:
        """Ask the daemon to exit; returns its final generation."""
        reply = self._checked({"op": "shutdown"})
        self.close()
        return int(reply["generation"])
