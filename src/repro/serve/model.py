"""In-memory rule model: the serving daemon's read path.

A :class:`RuleIndex` is an immutable snapshot of the rules derived from
one mined :class:`~repro.core.apriori.AprioriResult`, organized for the
one query the daemon answers at traffic rates: *given a basket, which
items do the rules suggest?*

The index is keyed by rule antecedent (a canonical sorted item-set) and
carries a **prefix set** — every proper prefix of every antecedent.  A
basket query then runs a depth-first *subset enumeration over the
index*: starting from the empty prefix, it extends only with basket
items that keep the prefix inside the index's prefix set, touching the
rule table exactly at the antecedents that are subsets of the basket.
A basket of b items over an index of R rules costs O(matched prefixes)
instead of the O(R · b) scan of checking every rule's antecedent
against the basket — the same sorted-item-set trick the paper's hash
tree uses for the subset operation, applied to serving.

Indexes are immutable after construction and tagged with a
``generation`` number, so the server can swap a freshly re-mined index
in atomically (one attribute assignment) while in-flight queries keep
reading the snapshot they started with — no locks on the query path.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from ..core.apriori import AprioriResult
from ..core.items import Itemset
from ..core.rules import AssociationRule, generate_rules

__all__ = ["RuleIndex", "Suggestion"]


@dataclass(frozen=True)
class Suggestion:
    """One recommended item for a basket.

    Attributes:
        item: the suggested item (never already in the basket).
        confidence: confidence of the best rule suggesting it.
        support: support of that rule.
        antecedent: that rule's antecedent (a subset of the basket).
    """

    item: int
    confidence: float
    support: float
    antecedent: Itemset

    def to_dict(self) -> dict[str, object]:
        return {
            "item": self.item,
            "confidence": self.confidence,
            "support": self.support,
            "antecedent": list(self.antecedent),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> Suggestion:
        return cls(
            item=int(payload["item"]),
            confidence=float(payload["confidence"]),
            support=float(payload["support"]),
            antecedent=tuple(payload["antecedent"]),
        )


class RuleIndex:
    """Immutable antecedent-indexed rule model with prefix enumeration.

    Args:
        rules: association rules (as produced by
            :func:`~repro.core.rules.generate_rules`).
        generation: monotonically increasing model version; the server
            bumps it on every successful re-mine.
        min_confidence: threshold the rules were derived at (stats
            surface it).
        source: human-readable description of where the model came from.
    """

    def __init__(
        self,
        rules: Sequence[AssociationRule],
        generation: int = 1,
        min_confidence: float = 0.0,
        source: str = "",
    ):
        self.generation = generation
        self.min_confidence = min_confidence
        self.source = source
        self.built_at = time.time()
        self.num_rules = len(rules)

        by_antecedent: dict[Itemset, list[AssociationRule]] = {}
        for rule in rules:
            by_antecedent.setdefault(rule.antecedent, []).append(rule)
        # Rules per antecedent in best-first order, so enumeration can
        # take the first rule suggesting an item as the best one.
        for bucket in by_antecedent.values():
            bucket.sort(key=lambda r: (-r.confidence, -r.support, r.consequent))
        self._by_antecedent = by_antecedent

        prefixes: set = set()
        for antecedent in by_antecedent:
            for end in range(1, len(antecedent) + 1):
                prefixes.add(antecedent[:end])
        self._prefixes: frozenset[Itemset] = frozenset(prefixes)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_result(
        cls,
        result: AprioriResult,
        min_confidence: float,
        generation: int = 1,
        source: str = "",
    ) -> RuleIndex:
        """Derive rules from a mined result and index them.

        A result holding only singleton item-sets (or nothing) yields a
        valid, empty index — queries answer ``[]``, they don't raise.
        """
        rules = generate_rules(
            result.frequent, result.num_transactions, min_confidence
        )
        return cls(
            rules,
            generation=generation,
            min_confidence=min_confidence,
            source=source,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def matching_rules(
        self, basket: Sequence[int]
    ) -> Iterator[AssociationRule]:
        """Yield every rule whose antecedent is a subset of ``basket``.

        The enumeration walks sorted basket items depth-first, extending
        a prefix only while it stays inside the index's prefix set — the
        subset test never touches antecedents outside the basket's
        closure.
        """
        items = sorted(set(basket))
        stack: list[tuple[Itemset, int]] = [((), 0)]
        while stack:
            prefix, start = stack.pop()
            for i in range(start, len(items)):
                extended = prefix + (items[i],)
                if extended not in self._prefixes:
                    continue
                bucket = self._by_antecedent.get(extended)
                if bucket is not None:
                    yield from bucket
                stack.append((extended, i + 1))

    def query(
        self, basket: Sequence[int], top: int | None = None
    ) -> list[Suggestion]:
        """Suggest items for ``basket``, best rule first.

        Items already in the basket are never suggested; an item reachable
        through several rules is suggested once, via its most confident
        (then highest-support) rule.  ``top`` caps the list.
        """
        in_basket = set(basket)
        best: dict[int, AssociationRule] = {}
        for rule in self.matching_rules(basket):
            for item in rule.consequent:
                if item in in_basket:
                    continue
                held = best.get(item)
                if held is None or (
                    (-rule.confidence, -rule.support)
                    < (-held.confidence, -held.support)
                ):
                    best[item] = rule
        ranked = sorted(
            (
                Suggestion(
                    item=item,
                    confidence=rule.confidence,
                    support=rule.support,
                    antecedent=rule.antecedent,
                )
                for item, rule in best.items()
            ),
            key=lambda s: (-s.confidence, -s.support, s.item),
        )
        if top is not None:
            ranked = ranked[:top]
        return ranked

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def age_seconds(self) -> float:
        """Seconds since this index was built."""
        return max(0.0, time.time() - self.built_at)

    def describe(self) -> dict[str, object]:
        """The stats-endpoint view of this model snapshot."""
        return {
            "generation": self.generation,
            "num_rules": self.num_rules,
            "num_antecedents": len(self._by_antecedent),
            "min_confidence": self.min_confidence,
            "built_at": self.built_at,
            "age_seconds": self.age_seconds,
            "source": self.source,
        }

    def __len__(self) -> int:
        return self.num_rules
