"""Always-on rule serving: mine once, serve millions.

The serving layer turns a mined :class:`~repro.core.apriori.
AprioriResult` into a long-lived daemon answering "basket → suggested
items" queries:

* :mod:`repro.serve.model` — the immutable, prefix-indexed
  antecedent → consequents structure a query reads.
* :mod:`repro.serve.sources` — where fresh models come from (a
  ``.dat`` file, an attached packed store mined by the native pool, a
  streaming source, a checkpoint journal).
* :mod:`repro.serve.server` — the threaded listener with atomic
  generation-swapped background re-mining.
* :mod:`repro.serve.client` — the typed line-JSON client.

CLI: ``repro-mine serve`` starts the daemon, ``repro-mine query`` talks
to it.
"""

from .client import QueryReply, RuleClient, ServerError, StatsReply
from .model import RuleIndex, Suggestion
from .server import RuleServer, ServerStats
from .sources import (
    CallableSource,
    DatFileSource,
    JournalSource,
    ModelSource,
    StoreSource,
    StreamingSource,
)

__all__ = [
    "CallableSource",
    "DatFileSource",
    "JournalSource",
    "ModelSource",
    "QueryReply",
    "RuleClient",
    "RuleIndex",
    "RuleServer",
    "ServerError",
    "ServerStats",
    "StoreSource",
    "StreamingSource",
    "Suggestion",
]
