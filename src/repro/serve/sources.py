"""Model sources: where the serving daemon's rules come from.

The daemon separates *what to serve* (the :class:`~repro.serve.model.
RuleIndex`) from *how to produce a fresh result* (a
:class:`ModelSource`).  A source is any object with a ``mine()`` method
returning an :class:`~repro.core.apriori.AprioriResult` and a
``describe()`` string; the server calls ``mine()`` once at startup and
again on every background re-mine, always off the query path, on a
shadow copy of whatever the source reads.

Concrete sources cover the repo's mining surfaces:

* :class:`DatFileSource` — re-read a ``.dat`` file and mine it with
  serial :class:`~repro.core.apriori.Apriori` (tiny models, CI).
* :class:`StoreSource` — attach a packed store file read-only
  (:class:`~repro.core.mmapdb.MmapPackedDB`) and run one of the
  *native* miners against it; each re-mine attaches its own mapping,
  so the serving model and the miner never share mutable state.
* :class:`StreamingSource` — run :class:`~repro.core.streaming.
  StreamingApriori` over a re-scannable transaction source (the
  incremental-update feed).
* :class:`JournalSource` — restore the result recorded in a
  checkpoint journal (:mod:`repro.checkpoint`) without mining at all;
  serving can start from the artifact a crashed or finished mine left
  behind.
* :class:`CallableSource` — wrap any ``() -> AprioriResult`` callable
  (tests, benchmarks, custom pipelines).
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from ..core.apriori import Apriori, AprioriResult
from ..core.streaming import StreamingApriori, TransactionSource

__all__ = [
    "CallableSource",
    "DatFileSource",
    "JournalSource",
    "ModelSource",
    "StoreSource",
    "StreamingSource",
]

PathLike = str | Path


class ModelSource:
    """Interface: produce a fresh mining result for the serving model."""

    def mine(self) -> AprioriResult:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class CallableSource(ModelSource):
    """Wrap any zero-argument callable returning an ``AprioriResult``."""

    def __init__(self, fn: Callable[[], AprioriResult], label: str = "callable"):
        self._fn = fn
        self._label = label

    def mine(self) -> AprioriResult:
        return self._fn()

    def describe(self) -> str:
        return self._label


class DatFileSource(ModelSource):
    """Serial Apriori over a ``.dat`` transaction file, re-read per mine."""

    def __init__(
        self,
        path: PathLike,
        min_support: float,
        max_k: int | None = None,
        kernel: str | None = None,
    ):
        self.path = Path(path)
        self.min_support = min_support
        self.max_k = max_k
        self.kernel = kernel

    def mine(self) -> AprioriResult:
        from ..data.io import read_dat

        db = read_dat(self.path)
        kwargs = {} if self.kernel is None else {"kernel": self.kernel}
        return Apriori(self.min_support, max_k=self.max_k, **kwargs).mine(db)

    def describe(self) -> str:
        return f"dat:{self.path}"


class StoreSource(ModelSource):
    """A native miner over an attached packed store file.

    Every ``mine()`` attaches its own read-only mapping of the store and
    closes it afterwards — the re-mine works on a shadow view, never on
    anything a concurrently serving model references.
    """

    _MINERS = ("native-cd", "native-idd", "native-hd")

    def __init__(
        self,
        store_path: PathLike,
        min_support: float,
        processors: int = 2,
        algorithm: str = "native-cd",
        max_k: int | None = None,
        kernel: str | None = None,
        two_phase: bool = False,
        block_budget: int | None = None,
    ):
        if algorithm == "native":
            algorithm = "native-cd"
        if algorithm not in self._MINERS:
            raise ValueError(
                f"StoreSource algorithm must be one of {self._MINERS}, "
                f"got {algorithm!r}"
            )
        self.store_path = Path(store_path)
        self.min_support = min_support
        self.processors = processors
        self.algorithm = algorithm
        self.max_k = max_k
        self.kernel = kernel
        self.two_phase = two_phase
        self.block_budget = block_budget

    def mine(self) -> AprioriResult:
        from ..core.mmapdb import MmapPackedDB
        from ..parallel.native import NativeCountDistribution
        from ..parallel.native_idd import (
            NativeHybridDistribution,
            NativeIntelligentDistribution,
        )

        miner_class = {
            "native-cd": NativeCountDistribution,
            "native-idd": NativeIntelligentDistribution,
            "native-hd": NativeHybridDistribution,
        }[self.algorithm]
        kwargs = {} if self.kernel is None else {"kernel": self.kernel}
        if self.two_phase:
            kwargs["two_phase"] = True
        with MmapPackedDB.attach(self.store_path) as db:
            miner = miner_class(
                self.min_support,
                self.processors,
                max_k=self.max_k,
                data_plane="mmap",
                block_budget=self.block_budget,
                **kwargs,
            )
            return miner.mine(db)

    def describe(self) -> str:
        return f"store:{self.store_path} ({self.algorithm})"


class StreamingSource(ModelSource):
    """Disk-resident Apriori over a re-scannable transaction source."""

    def __init__(
        self,
        source: TransactionSource,
        min_support: float,
        max_k: int | None = None,
        label: str = "stream",
    ):
        self.source = source
        self.min_support = min_support
        self.max_k = max_k
        self._label = label

    def mine(self) -> AprioriResult:
        return StreamingApriori(self.min_support, max_k=self.max_k).mine(
            self.source
        )

    def describe(self) -> str:
        return f"stream:{self._label}"


class JournalSource(ModelSource):
    """Restore the result a checkpoint journal recorded — no mining.

    The journal must hold at least its meta record; the restored result
    covers exactly the journaled passes (a journal cut short by a crash
    restores the passes that completed, which is the same degraded-but-
    consistent view a resumed mine would start from).
    """

    def __init__(self, checkpoint_dir: PathLike):
        self.checkpoint_dir = Path(checkpoint_dir)

    def mine(self) -> AprioriResult:
        from ..checkpoint import CheckpointJournal, restore_result

        state = CheckpointJournal.load(self.checkpoint_dir)
        result = AprioriResult(
            frequent={},
            min_support=state.meta["min_support"],
            min_count=state.meta["min_count"],
            num_transactions=state.meta["num_transactions"],
        )
        restore_result(state, result)
        return result

    def describe(self) -> str:
        return f"journal:{self.checkpoint_dir}"
