"""The rule-serving daemon: threaded listener + atomic model swap.

:class:`RuleServer` is the long-lived process the ROADMAP's "mine once,
serve millions" item asks for.  It owns exactly one mutable reference —
``self._index``, the current :class:`~repro.serve.model.RuleIndex` —
and two kinds of threads:

* **query threads** (one per connection, via
  ``socketserver.ThreadingTCPServer``) read the reference *once* per
  request and answer from that snapshot.  Because an index is immutable
  and the reference assignment is a single atomic store, a query never
  observes a half-built model: it sees the old generation or the new
  one, never a mix.
* **one re-mine worker** (at most) runs the model source's ``mine()``
  on a shadow copy — an attached store gets its own read-only mapping,
  a ``.dat`` file is re-read, a streaming source is re-scanned — then
  builds a fresh index at ``generation + 1`` and swaps it in.  A
  re-mine that raises leaves the serving index untouched: queries keep
  answering from the old generation and the failure is surfaced in the
  ``stats`` reply (``remine_failures``, ``last_remine_error``).

Wire protocol: one JSON object per line, one JSON reply per line, over
a plain TCP socket; connections are persistent (a client can pipeline
many requests).  Requests are ``{"op": ...}`` with op-specific fields —
``ping``, ``query`` (``basket``, optional ``top``), ``stats``,
``remine`` (optional ``wait``), ``shutdown``.  For curl-ability the
listener also speaks a minimal read-only HTTP/1.0 dialect: ``GET
/ping``, ``GET /stats`` and ``GET /query?basket=3,5&top=4`` return the
same JSON as the line ops, one response per connection.

Every reply carries ``"generation"`` so clients (and the swap drills in
CI) can watch a background re-mine land without a single failed query.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
from collections import deque
from typing import Any
from urllib.parse import parse_qs, urlparse

from .model import RuleIndex
from .sources import ModelSource

__all__ = ["RuleServer", "ServerStats"]

#: Latency samples kept for the p50/p99 figures (a bounded reservoir —
#: the daemon's memory footprint must not grow with queries served).
LATENCY_WINDOW = 8192


class ServerStats:
    """Thread-safe counters + latency reservoir behind the stats reply."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.queries = 0
        self.failed_queries = 0
        self.remines = 0
        self.remine_failures = 0
        self.last_remine_error: str | None = None
        self.last_remine_s: float | None = None
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)

    def record_query(self, seconds: float) -> None:
        with self._lock:
            self.queries += 1
            self._latencies.append(seconds)

    def record_failed_query(self) -> None:
        with self._lock:
            self.failed_queries += 1

    def record_remine(self, seconds: float) -> None:
        with self._lock:
            self.remines += 1
            self.last_remine_s = seconds

    def record_remine_failure(self, error: str) -> None:
        with self._lock:
            self.remine_failures += 1
            self.last_remine_error = error

    def percentiles(self) -> tuple[float, float]:
        """Return (p50, p99) query latency in seconds over the window."""
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return 0.0, 0.0

        def at(q: float) -> float:
            index = min(len(samples) - 1, int(q * (len(samples) - 1) + 0.5))
            return samples[index]
        return at(0.50), at(0.99)

    def snapshot(self) -> dict[str, Any]:
        p50, p99 = self.percentiles()
        with self._lock:
            return {
                "uptime_seconds": time.time() - self.started_at,
                "queries": self.queries,
                "failed_queries": self.failed_queries,
                "query_p50_ms": p50 * 1e3,
                "query_p99_ms": p99 * 1e3,
                "remines": self.remines,
                "remine_failures": self.remine_failures,
                "last_remine_error": self.last_remine_error,
                "last_remine_s": self.last_remine_s,
            }


class _Listener(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, handler, rule_server: RuleServer):
        self.rule_server = rule_server
        super().__init__(address, handler)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a line-JSON session or a single HTTP GET."""

    def handle(self) -> None:
        server: RuleServer = self.server.rule_server  # type: ignore[attr-defined]
        server.track_connection(self.connection)
        try:
            self._serve_lines(server)
        finally:
            server.untrack_connection(self.connection)

    def _serve_lines(self, server: RuleServer) -> None:
        while True:
            try:
                raw = self.rfile.readline()
            except OSError:
                return
            if not raw:
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            if line.startswith(("GET ", "HEAD ")):
                self._handle_http(server, line)
                return
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                self._reply({"status": "error", "error": f"bad request: {exc}"})
                continue
            reply, keep_open = server.dispatch(request)
            self._reply(reply)
            if not keep_open:
                return

    def _reply(self, payload: dict[str, Any]) -> None:
        try:
            self.wfile.write(_encode(payload) + b"\n")
            self.wfile.flush()
        except OSError:
            pass

    def _handle_http(self, server: RuleServer, request_line: str) -> None:
        # Drain the headers; the dialect is read-only, bodies are ignored.
        while True:
            raw = self.rfile.readline()
            if not raw or raw in (b"\r\n", b"\n"):
                break
        parts = request_line.split()
        target = parts[1] if len(parts) > 1 else "/"
        parsed = urlparse(target)
        query = parse_qs(parsed.query)
        if parsed.path == "/ping":
            payload, status = server.dispatch({"op": "ping"})[0], 200
        elif parsed.path == "/stats":
            payload, status = server.dispatch({"op": "stats"})[0], 200
        elif parsed.path == "/query":
            try:
                basket = [
                    int(item)
                    for chunk in query.get("basket", [])
                    for item in chunk.split(",")
                    if item
                ]
                top = (
                    int(query["top"][0]) if "top" in query else None
                )
            except ValueError:
                payload, status = {
                    "status": "error",
                    "error": "basket and top must be integers",
                }, 400
            else:
                request = {"op": "query", "basket": basket}
                if top is not None:
                    request["top"] = top
                payload = server.dispatch(request)[0]
                status = 200 if payload.get("status") == "ok" else 400
        else:
            payload, status = {
                "status": "error",
                "error": f"no such endpoint: {parsed.path}",
            }, 404
        body = _encode(payload) + b"\n"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}[status]
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            self.wfile.write(head + body)
            self.wfile.flush()
        except OSError:
            pass


def _encode(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


class RuleServer:
    """Long-lived rule-serving daemon with background re-mining.

    Args:
        source: where models come from; ``mine()`` runs once at
            :meth:`start` (the cold build) and once per re-mine.
        min_confidence: rule-derivation threshold for every generation.
        host / port: listen address; port 0 binds an ephemeral port
            (read the real one from :attr:`address` after ``start()``).
        remine_every: optional seconds between automatic background
            re-mines (the drift story); ``None`` re-mines only on demand.
    """

    def __init__(
        self,
        source: ModelSource,
        min_confidence: float = 0.5,
        host: str = "127.0.0.1",
        port: int = 0,
        remine_every: float | None = None,
    ):
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must be in (0, 1], got {min_confidence}"
            )
        if remine_every is not None and remine_every <= 0:
            raise ValueError(
                f"remine_every must be positive, got {remine_every}"
            )
        self.source = source
        self.min_confidence = min_confidence
        self.stats = ServerStats()
        self._host = host
        self._port = port
        self._remine_every = remine_every
        self._index: RuleIndex | None = None
        self._listener: _Listener | None = None
        self._listener_thread: threading.Thread | None = None
        self._remine_lock = threading.Lock()
        self._remine_thread: threading.Thread | None = None
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        self._timer_stop = threading.Event()
        self._timer_thread: threading.Thread | None = None
        self._shutdown_requested = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — valid after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.server_address[:2]

    @property
    def index(self) -> RuleIndex:
        """The currently serving model snapshot."""
        if self._index is None:
            raise RuntimeError("server has no model (not started?)")
        return self._index

    def start(self) -> RuleServer:
        """Cold-build the first model, then start listening."""
        if self._listener is not None:
            raise RuntimeError("server is already started")
        result = self.source.mine()
        self._index = RuleIndex.from_result(
            result,
            self.min_confidence,
            generation=1,
            source=self.source.describe(),
        )
        self._listener = _Listener((self._host, self._port), _Handler, self)
        self._listener_thread = threading.Thread(
            target=self._listener.serve_forever,
            name="repro-serve-listener",
            daemon=True,
        )
        self._listener_thread.start()
        if self._remine_every is not None:
            self._timer_thread = threading.Thread(
                target=self._timer_loop, name="repro-serve-timer", daemon=True
            )
            self._timer_thread.start()
        return self

    def track_connection(self, connection) -> None:
        with self._connections_lock:
            self._connections.add(connection)

    def untrack_connection(self, connection) -> None:
        with self._connections_lock:
            self._connections.discard(connection)

    def stop(self) -> None:
        """Stop listening and wait for background work to finish.

        Established connections are severed too — a stopped daemon must
        look exactly like a dead one to its clients (whose retry-once
        policy then kicks in against a restarted instance).
        """
        self._timer_stop.set()
        if self._listener is not None:
            self._listener.shutdown()
            self._listener.server_close()
            self._listener = None
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(2)  # SHUT_RDWR
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        if self._listener_thread is not None:
            self._listener_thread.join(timeout=10.0)
            self._listener_thread = None
        remine = self._remine_thread
        if remine is not None:
            remine.join(timeout=60.0)
        if self._timer_thread is not None:
            self._timer_thread.join(timeout=10.0)
            self._timer_thread = None

    def __enter__(self) -> RuleServer:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (signal handlers, shutdown op)."""
        self._shutdown_requested.set()

    def wait_for_shutdown_request(self, poll_seconds: float = 0.2) -> None:
        """Block until a client's ``shutdown`` op (or :meth:`stop`)."""
        while not self._shutdown_requested.wait(poll_seconds):
            if self._listener is None:
                return

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def dispatch(
        self, request: dict[str, Any]
    ) -> tuple[dict[str, Any], bool]:
        """Answer one request; return ``(reply, keep_connection_open)``."""
        op = request.get("op")
        if op == "ping":
            return {
                "status": "ok",
                "op": "ping",
                "generation": self.index.generation,
            }, True
        if op == "query":
            return self._op_query(request), True
        if op == "stats":
            return self._op_stats(), True
        if op == "remine":
            return self._op_remine(request), True
        if op == "shutdown":
            self._shutdown_requested.set()
            return {
                "status": "ok",
                "op": "shutdown",
                "generation": self.index.generation,
            }, False
        self.stats.record_failed_query()
        return {
            "status": "error",
            "error": f"unknown op: {op!r}",
        }, True

    def _op_query(self, request: dict[str, Any]) -> dict[str, Any]:
        start = time.perf_counter()
        basket = request.get("basket")
        top = request.get("top")
        if (
            not isinstance(basket, list)
            or not basket
            or not all(isinstance(item, int) for item in basket)
        ):
            self.stats.record_failed_query()
            return {
                "status": "error",
                "error": "query needs a non-empty integer 'basket' list",
            }
        if top is not None and (not isinstance(top, int) or top < 1):
            self.stats.record_failed_query()
            return {"status": "error", "error": "'top' must be a positive int"}
        # One atomic read: everything below sees this snapshot only.
        index = self.index
        suggestions = index.query(basket, top=top)
        self.stats.record_query(time.perf_counter() - start)
        return {
            "status": "ok",
            "op": "query",
            "generation": index.generation,
            "basket": sorted(set(basket)),
            "suggestions": [s.to_dict() for s in suggestions],
        }

    def _op_stats(self) -> dict[str, Any]:
        index = self.index
        payload = self.stats.snapshot()
        payload.update(
            {
                "status": "ok",
                "op": "stats",
                "generation": index.generation,
                "model": index.describe(),
                "remine_in_progress": self._remine_lock.locked(),
            }
        )
        return payload

    def _op_remine(self, request: dict[str, Any]) -> dict[str, Any]:
        wait = bool(request.get("wait", False))
        started = self.trigger_remine()
        if not started and not wait:
            return {
                "status": "busy",
                "op": "remine",
                "generation": self.index.generation,
            }
        if wait:
            thread = self._remine_thread
            if thread is not None:
                thread.join()
        snapshot = self.stats.snapshot()
        return {
            "status": "ok",
            "op": "remine",
            "started": started,
            "waited": wait,
            "generation": self.index.generation,
            "remines": snapshot["remines"],
            "remine_failures": snapshot["remine_failures"],
            "last_remine_error": snapshot["last_remine_error"],
        }

    # ------------------------------------------------------------------
    # Background re-mine
    # ------------------------------------------------------------------

    def trigger_remine(self) -> bool:
        """Start a background re-mine; ``False`` if one is running."""
        if not self._remine_lock.acquire(blocking=False):
            return False
        thread = threading.Thread(
            target=self._remine_worker, name="repro-serve-remine", daemon=True
        )
        self._remine_thread = thread
        thread.start()
        return True

    def _remine_worker(self) -> None:
        # The lock is held from trigger_remine; released when the swap
        # (or the failure bookkeeping) is done.
        try:
            old = self.index
            start = time.perf_counter()
            result = self.source.mine()
            fresh = RuleIndex.from_result(
                result,
                self.min_confidence,
                generation=old.generation + 1,
                source=self.source.describe(),
            )
            self._index = fresh  # the atomic swap
            self.stats.record_remine(time.perf_counter() - start)
        except Exception as exc:  # noqa: BLE001 — degrade, don't die
            self.stats.record_remine_failure(f"{type(exc).__name__}: {exc}")
        finally:
            self._remine_lock.release()

    def _timer_loop(self) -> None:
        assert self._remine_every is not None
        while not self._timer_stop.wait(self._remine_every):
            self.trigger_remine()
