"""Command-line interface.

Subcommands:

* ``mine`` — mine frequent item-sets / rules from a ``.dat`` file
  (serial by default; ``--algorithm`` selects a parallel formulation on
  the simulated cluster).
* ``generate`` — emit a synthetic Quest-style database to a ``.dat``
  file.
* ``experiment`` — run one of the paper's table/figure reproductions
  and print its table.
* ``serve`` — start the always-on rule-serving daemon (mine once,
  answer basket queries forever, re-mine in the background).
* ``query`` — talk to a running daemon: basket queries, stats,
  re-mine triggers, shutdown.

Examples::

    repro-mine generate --transactions 1000 --out db.dat
    repro-mine mine db.dat --min-support 0.01 --min-confidence 0.8
    repro-mine mine db.dat --algorithm HD --processors 16
    repro-mine experiment table2

Serving rules (mine → serve → query → live re-mine)::

    repro-mine serve db.dat --min-support 0.01 --min-confidence 0.6 \\
        --port 7911 &
    repro-mine query --port 7911 3 17 42        # basket -> suggestions
    repro-mine query --port 7911 --remine --wait  # atomic model swap
    repro-mine query --port 7911 --stats          # QPS, p50/p99, generation
    repro-mine query --port 7911 --shutdown

Scaling to millions of transactions (generate once, mine many times)::

    repro-mine generate --transactions 1000000 --generate-to big.packed
    repro-mine mine --attach big.packed --algorithm native-cd \\
        --two-phase --block-budget 2000000 --checkpoint-dir ckpt
    repro-mine mine --attach big.packed --algorithm native-cd \\
        --two-phase --block-budget 2000000 --checkpoint-dir ckpt --resume
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cluster.machine import CRAY_T3E, IBM_SP2
from .core.apriori import Apriori
from .core.rules import generate_rules
from .data.corpus import t15_i6
from .data.io import read_dat, write_dat
from .data.quest import generate
from .experiments.registry import EXPERIMENTS, run_experiment
from .core.kernels import validate_kernel
from .faults import FaultSpec
from .parallel.native import validate_data_plane
from .parallel.runner import ALGORITHMS, mine_parallel

__all__ = ["main", "build_parser"]

_MACHINES = {"t3e": CRAY_T3E, "sp2": IBM_SP2}


def _fault_spec_arg(text: str) -> FaultSpec:
    """argparse ``type=`` callback: parse --fault-spec at the CLI edge.

    A malformed spec becomes an argparse usage error instead of a raw
    ValueError traceback from deep inside miner construction.
    """
    try:
        return FaultSpec.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _kernel_arg(text: str) -> str:
    """argparse ``type=`` callback: validate --kernel at the CLI edge."""
    try:
        return validate_kernel(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _data_plane_arg(text: str) -> str:
    """argparse ``type=`` callback: validate --data-plane at the CLI edge."""
    try:
        return validate_data_plane(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _positive_int(text: str) -> int:
    """argparse ``type=`` callback: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description=(
            "Association-rule mining: serial Apriori and the CD/DD/IDD/HD "
            "parallel formulations on a simulated message-passing machine."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", help="mine a .dat transaction file")
    mine.add_argument(
        "database",
        nargs="?",
        default=None,
        help=(
            "path to a .dat transaction file (omit when mining a packed "
            "store with --attach)"
        ),
    )
    mine.add_argument(
        "--attach",
        default=None,
        metavar="STORE",
        help=(
            "mine a packed store file (written by 'generate "
            "--generate-to') by mapping it read-only instead of loading "
            "a .dat file into RAM; native algorithms on a zero-copy "
            "data plane only — with --data-plane mmap (the default "
            "here) the workers map the attached file directly, so the "
            "database is never copied"
        ),
    )
    mine.add_argument("--min-support", type=float, default=0.01)
    mine.add_argument(
        "--min-confidence",
        type=float,
        default=None,
        help="also derive rules at this confidence",
    )
    mine.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default=None,
        help=(
            "parallel formulation (omit for serial Apriori; the "
            "'native-cd'/'native-idd'/'native-hd' modes run real worker "
            "processes instead of the simulated machine; 'native' is an "
            "alias for 'native-cd')"
        ),
    )
    mine.add_argument("--processors", type=int, default=4)
    mine.add_argument(
        "--machine", choices=sorted(_MACHINES), default="t3e"
    )
    mine.add_argument("--max-k", type=int, default=None)
    mine.add_argument(
        "--kernel",
        type=_kernel_arg,
        default=None,
        metavar="{reference,fast,fast-np,vertical}",
        help=(
            "counting kernel: 'reference' (instrumented object hash "
            "tree), 'fast' (flat-array tree + triangular pass-2 "
            "counter), 'fast-np' (numpy-vectorized packed counting; "
            "falls back to 'vertical' without numpy), or 'vertical' "
            "(TID-bitmap intersections); 'fast-np' and 'vertical' are "
            "serial Apriori and native-* only; counts are bit-identical "
            "— omit to keep each algorithm's default"
        ),
    )
    mine.add_argument(
        "--data-plane",
        type=_data_plane_arg,
        default=None,
        metavar="{pickle,shared,mmap}",
        help=(
            "native pool only: 'shared' (default; packed transactions "
            "in shared memory, binary candidate broadcast, shared "
            "count vectors), 'mmap' (the packed store written once to "
            "a file and mapped read-only by every worker — the "
            "out-of-core plane) or 'pickle' (serialize everything over "
            "the worker pipes); results are identical"
        ),
    )
    mine.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help=(
            "native pool, mmap plane only: directory the packed store "
            "file is written to (default: the system temp directory)"
        ),
    )
    mine.add_argument(
        "--block-budget",
        type=_positive_int,
        default=None,
        metavar="ITEMS",
        help=(
            "native pool, zero-copy planes only: stream each worker's "
            "store range through counting in blocks of at most this "
            "many items (out-of-core passes over databases larger "
            "than RAM)"
        ),
    )
    mine.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "native pool only: journal every completed pass durably to "
            "this directory so a killed coordinator can be rerun with "
            "--resume"
        ),
    )
    mine.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted mine from --checkpoint-dir's "
            "journal; the output is bit-identical to an uninterrupted "
            "run"
        ),
    )
    mine.add_argument(
        "--two-phase",
        action="store_true",
        help=(
            "native-cd only: SON/partition two-phase counting — each "
            "worker first mines its own blocks at locally-scaled "
            "support (phase 1), then the pool counts only the union of "
            "those locally-frequent sets exactly (phase 2); results "
            "are bit-identical to single-phase Apriori, but no pass "
            "ever materializes the full candidate set, which bounds "
            "candidate memory on huge databases; requires a zero-copy "
            "data plane"
        ),
    )
    mine.add_argument(
        "--switch-threshold",
        type=int,
        default=None,
        metavar="M",
        help=(
            "HD / native-hd only: the paper's m — minimum candidates "
            "worth one more grid row (default 50000)"
        ),
    )
    mine.add_argument(
        "--fault-spec",
        type=_fault_spec_arg,
        default=None,
        metavar="SPEC",
        help=(
            "inject deterministic failures, e.g. "
            "'kill@0:k2,delay@1:k3:0.5,refuse-spawn:2' — real worker "
            "failures under the native algorithms, simulated processor "
            "failures (kill events) under the other formulations"
        ),
    )
    mine.add_argument(
        "--recv-timeout",
        type=float,
        default=30.0,
        help="native pool: seconds before a silent worker is declared dead",
    )
    mine.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="native pool: respawn attempts per failed worker",
    )
    mine.add_argument(
        "--top", type=int, default=20, help="item-sets/rules to print"
    )
    mine.add_argument(
        "--report",
        action="store_true",
        help="print a per-pass run report instead of raw item-sets",
    )

    gen = sub.add_parser("generate", help="generate a synthetic database")
    gen.add_argument("--transactions", type=int, required=True)
    gen.add_argument("--items", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", default=None, help="output .dat path")
    gen.add_argument(
        "--generate-to",
        default=None,
        metavar="STORE",
        help=(
            "stream the database straight into a packed store file "
            "with constant RAM (never materializing the transactions "
            "in memory); the file is byte-identical to packing the "
            "in-memory database and is minable with 'mine --attach'"
        ),
    )
    gen.add_argument(
        "--progress-every",
        type=_positive_int,
        default=100_000,
        metavar="N",
        help=(
            "with --generate-to: print a progress line every N "
            "generated transactions (default 100000)"
        ),
    )

    serve = sub.add_parser(
        "serve", help="start the always-on rule-serving daemon"
    )
    serve.add_argument(
        "database",
        nargs="?",
        default=None,
        help=(
            "path to a .dat transaction file to mine and serve (omit "
            "when serving a packed store via --attach or a checkpoint "
            "journal via --from-journal)"
        ),
    )
    serve.add_argument(
        "--attach",
        default=None,
        metavar="STORE",
        help=(
            "serve a packed store file: every (re-)mine attaches it "
            "read-only and runs the native pool against it on the mmap "
            "plane"
        ),
    )
    serve.add_argument(
        "--from-journal",
        default=None,
        metavar="DIR",
        help=(
            "serve the result recorded in a checkpoint journal "
            "(written by 'mine --checkpoint-dir') without mining at all"
        ),
    )
    serve.add_argument("--min-support", type=float, default=0.01)
    serve.add_argument(
        "--min-confidence",
        type=float,
        default=0.5,
        help="rule-derivation threshold for every model generation",
    )
    serve.add_argument("--max-k", type=int, default=None)
    serve.add_argument(
        "--kernel",
        type=_kernel_arg,
        default=None,
        metavar="{reference,fast,fast-np,vertical}",
        help="counting kernel for the (re-)mines",
    )
    serve.add_argument(
        "--algorithm",
        choices=("native-cd", "native-idd", "native-hd", "native"),
        default="native-cd",
        help=(
            "with --attach: the native formulation each re-mine runs "
            "(default native-cd)"
        ),
    )
    serve.add_argument(
        "--processors",
        type=_positive_int,
        default=2,
        help="with --attach: worker processes per re-mine",
    )
    serve.add_argument(
        "--two-phase",
        action="store_true",
        help="with --attach: SON two-phase counting for the re-mines",
    )
    serve.add_argument(
        "--block-budget",
        type=_positive_int,
        default=None,
        metavar="ITEMS",
        help="with --attach: stream counting passes in blocks",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=7911,
        help="listen port (0 binds an ephemeral port; it is printed)",
    )
    serve.add_argument(
        "--remine-every",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "re-mine the source and swap the model in atomically every "
            "SECONDS seconds (omit to re-mine only on 'query --remine')"
        ),
    )

    query = sub.add_parser(
        "query", help="query a running rule-serving daemon"
    )
    query.add_argument(
        "basket",
        nargs="*",
        type=int,
        help="basket items to get suggestions for",
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7911)
    query.add_argument(
        "--top", type=_positive_int, default=10, help="suggestions to print"
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print the daemon's stats snapshot instead of querying",
    )
    query.add_argument(
        "--remine",
        action="store_true",
        help="trigger a background re-mine (atomic model swap)",
    )
    query.add_argument(
        "--wait",
        action="store_true",
        help="with --remine: block until the swap (or failure) happened",
    )
    query.add_argument(
        "--ping",
        action="store_true",
        help="round-trip a ping and print the model generation",
    )
    query.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the daemon to exit cleanly",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="socket timeout in seconds",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.add_argument(
        "--chart",
        action="store_true",
        help="render an ASCII chart in addition to the table",
    )
    exp.add_argument(
        "--logx",
        action="store_true",
        help="log-scale the chart x axis (for processor sweeps)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "mine":
        native = args.algorithm is not None and args.algorithm.startswith(
            "native"
        )
        if (args.database is None) == (args.attach is None):
            parser.error(
                "exactly one input is required: a .dat database path, "
                "or --attach STORE for a packed store file"
            )
        if args.attach is not None and not native:
            parser.error(
                "--attach requires a native algorithm (native-cd, "
                "native-idd or native-hd): only the native pool can "
                "mine a mapped packed store in place"
            )
        if args.attach is not None and (
            args.data_plane or "mmap"
        ) == "pickle":
            parser.error(
                "--attach requires a zero-copy data plane ('shared' or "
                "'mmap'); the pickle plane would copy the mapped store "
                "into every worker"
            )
        if args.two_phase and args.algorithm not in ("native", "native-cd"):
            parser.error(
                "--two-phase only applies to --algorithm native-cd "
                "(SON phase 1 runs on the count-distribution pool)"
            )
        if args.two_phase and (args.data_plane or "shared") == "pickle":
            parser.error(
                "--two-phase requires a zero-copy data plane ('shared' "
                "or 'mmap'); SON phase 1 mines packed store ranges in "
                "place"
            )
        if args.data_plane is not None and not native:
            parser.error(
                "--data-plane only applies to the native algorithms "
                "(the simulated formulations have no worker processes)"
            )
        if args.store_dir is not None and (
            not native or (args.data_plane or "shared") != "mmap"
        ):
            parser.error(
                "--store-dir only applies to the native algorithms on "
                "--data-plane mmap (no other plane writes a store file)"
            )
        if args.block_budget is not None and not native:
            parser.error(
                "--block-budget only applies to the native algorithms "
                "(the simulated formulations have no packed store to "
                "stream)"
            )
        if args.block_budget is not None and (
            args.data_plane or "shared"
        ) == "pickle":
            parser.error(
                "--block-budget requires a zero-copy data plane "
                "('shared' or 'mmap')"
            )
        if args.checkpoint_dir is not None and not native:
            parser.error(
                "--checkpoint-dir only applies to the native algorithms "
                "(the simulated formulations complete in-process)"
            )
        if args.resume and args.checkpoint_dir is None:
            parser.error(
                "--resume requires --checkpoint-dir (there is no "
                "journal to resume from)"
            )
        if args.switch_threshold is not None and args.algorithm not in (
            "HD", "native-hd",
        ):
            parser.error(
                "--switch-threshold only applies to --algorithm HD or "
                "native-hd (the other formulations have no grid to size)"
            )
        return _cmd_mine(args)
    if args.command == "generate":
        if args.out is None and args.generate_to is None:
            parser.error(
                "at least one destination is required: --out FILE.dat "
                "(plain text) and/or --generate-to STORE (packed store "
                "file, streamed with constant RAM)"
            )
        return _cmd_generate(args)
    if args.command == "serve":
        inputs = [args.database, args.attach, args.from_journal]
        if sum(value is not None for value in inputs) != 1:
            parser.error(
                "exactly one model source is required: a .dat database "
                "path, --attach STORE, or --from-journal DIR"
            )
        if not 0.0 < args.min_confidence <= 1.0:
            parser.error(
                f"--min-confidence must be in (0, 1], got "
                f"{args.min_confidence}"
            )
        if args.remine_every is not None and args.remine_every <= 0:
            parser.error("--remine-every must be positive")
        if args.attach is None and (
            args.two_phase or args.block_budget is not None
        ):
            parser.error(
                "--two-phase and --block-budget only apply with "
                "--attach (they configure the native re-mines)"
            )
        return _cmd_serve(args)
    if args.command == "query":
        actions = sum(
            (
                bool(args.basket),
                args.stats,
                args.remine,
                args.ping,
                args.shutdown,
            )
        )
        if actions != 1:
            parser.error(
                "exactly one action is required: basket items to query, "
                "--stats, --remine, --ping, or --shutdown"
            )
        if args.wait and not args.remine:
            parser.error("--wait only applies with --remine")
        return _cmd_query(args)
    return _cmd_experiment(args)


def _cmd_mine(args: argparse.Namespace) -> int:
    store = None
    if args.attach is not None:
        from .core.mmapdb import MmapPackedDB

        try:
            store = MmapPackedDB.attach(args.attach)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        db = store
        print(
            f"attached {len(db)} transactions "
            f"({db.total_items} items) from {args.attach}"
        )
    else:
        db = read_dat(args.database)
        print(f"loaded {len(db)} transactions from {args.database}")
    kernel_kwargs = {} if args.kernel is None else {"kernel": args.kernel}
    if args.algorithm is None:
        result = Apriori(
            args.min_support, max_k=args.max_k, **kernel_kwargs
        ).mine(db)
        frequent = result.frequent
        num_transactions = result.num_transactions
        print(f"serial Apriori: {len(frequent)} frequent item-sets")
        if args.report:
            from .reporting import format_report

            print(format_report(result))
            return 0
    elif args.algorithm.startswith("native"):
        from .parallel.native import NativeCountDistribution
        from .parallel.native_idd import (
            NativeHybridDistribution,
            NativeIntelligentDistribution,
        )

        native_classes = {
            "native": (NativeCountDistribution, "CD"),
            "native-cd": (NativeCountDistribution, "CD"),
            "native-idd": (NativeIntelligentDistribution, "IDD"),
            "native-hd": (NativeHybridDistribution, "HD"),
        }
        miner_class, label = native_classes[args.algorithm]
        extra_kwargs = dict(kernel_kwargs)
        if args.switch_threshold is not None:
            extra_kwargs["switch_threshold"] = args.switch_threshold
        if args.two_phase:
            extra_kwargs["two_phase"] = True
            extra_kwargs["progress"] = print
        # An attached store defaults to the mmap plane: the workers
        # then map the store file itself instead of copying it.
        default_plane = "mmap" if store is not None else "shared"
        miner = miner_class(
            args.min_support,
            args.processors,
            max_k=args.max_k,
            recv_timeout=args.recv_timeout,
            max_retries=args.max_retries,
            faults=args.fault_spec,
            data_plane=args.data_plane or default_plane,
            store_dir=args.store_dir,
            block_budget=args.block_budget,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            **extra_kwargs,
        )
        try:
            result = miner.mine(db)
        finally:
            if store is not None:
                store.close()
        frequent = result.frequent
        num_transactions = result.num_transactions
        if args.resume and miner.last_resume_k:
            print(
                f"resumed from checkpoint after pass {miner.last_resume_k}"
            )
        print(
            f"native {label} on "
            f"{miner.last_pool_size or args.processors} worker "
            f"processes ({miner.data_plane} data plane): "
            f"{len(frequent)} frequent item-sets"
        )
        for record in miner.fault_log:
            print(
                f"  pass {record.k}: worker {record.worker} "
                f"{record.failure} -> {record.action} "
                f"({record.attempts} spawn attempt(s))"
            )
        if args.report:
            from .reporting import format_report

            print(format_report(result))
            return 0
    else:
        sim_kwargs = {}
        if args.switch_threshold is not None:
            sim_kwargs["switch_threshold"] = args.switch_threshold
        result = mine_parallel(
            args.algorithm,
            db,
            args.min_support,
            args.processors,
            machine=_MACHINES[args.machine],
            max_k=args.max_k,
            faults=args.fault_spec,
            kernel=args.kernel,
            **sim_kwargs,
        )
        frequent = result.frequent
        num_transactions = result.num_transactions
        print(
            f"{args.algorithm} on {args.processors} simulated processors "
            f"({_MACHINES[args.machine].name}): {len(frequent)} frequent "
            f"item-sets, response time {result.total_time:.4f}s (simulated)"
        )
        if args.report:
            from .reporting import format_report

            print(format_report(result))
            return 0
    ranked = sorted(frequent.items(), key=lambda kv: (-kv[1], kv[0]))
    for itemset, count in ranked[: args.top]:
        support = count / max(1, num_transactions)
        print(f"  {itemset}  count={count}  support={support:.4f}")
    if args.min_confidence is not None:
        rules = generate_rules(frequent, num_transactions, args.min_confidence)
        print(f"{len(rules)} rules at confidence >= {args.min_confidence}")
        for rule in rules[: args.top]:
            print(f"  {rule}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    config = t15_i6(args.transactions, seed=args.seed, num_items=args.items)
    if args.generate_to is not None:
        from .data.quest import generate_to_file

        def _progress(written: int, total: int) -> None:
            print(
                f"generated {written}/{total} transactions "
                f"({100.0 * written / max(1, total):.0f}%)"
            )

        path = generate_to_file(
            config,
            args.generate_to,
            progress=_progress,
            progress_every=args.progress_every,
        )
        size = path.stat().st_size
        print(
            f"wrote packed store {path} "
            f"({size} bytes, {args.transactions} transactions) — "
            f"mine it with: repro-mine mine --attach {path} "
            f"--algorithm native-cd"
        )
        if args.out is None:
            return 0
    db = generate(config)
    write_dat(db, args.out)
    stats = db.stats()
    print(
        f"wrote {stats.num_transactions} transactions "
        f"({stats.num_items} distinct items, avg length "
        f"{stats.avg_length:.1f}) to {args.out}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .serve import DatFileSource, JournalSource, RuleServer, StoreSource

    if args.attach is not None:
        source = StoreSource(
            args.attach,
            args.min_support,
            processors=args.processors,
            algorithm=args.algorithm,
            max_k=args.max_k,
            kernel=args.kernel,
            two_phase=args.two_phase,
            block_budget=args.block_budget,
        )
    elif args.from_journal is not None:
        source = JournalSource(args.from_journal)
    else:
        source = DatFileSource(
            args.database,
            args.min_support,
            max_k=args.max_k,
            kernel=args.kernel,
        )
    server = RuleServer(
        source,
        min_confidence=args.min_confidence,
        host=args.host,
        port=args.port,
        remine_every=args.remine_every,
    )
    try:
        server.start()
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def _terminate(signum, frame) -> None:
        # SIGTERM/SIGINT: unblock the wait loop; the finally below does
        # the orderly stop (drain listener, join the re-mine worker).
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    host, port = server.address
    print(
        f"serving rules on {host}:{port} "
        f"(generation {server.index.generation}, "
        f"{server.index.num_rules} rules from {source.describe()}; "
        f"min_confidence={args.min_confidence})",
        flush=True,
    )
    try:
        server.wait_for_shutdown_request()
    finally:
        server.stop()
        snapshot = server.stats.snapshot()
        print(
            f"shut down cleanly after {snapshot['queries']} queries "
            f"({snapshot['failed_queries']} failed), "
            f"generation {server.index.generation}",
            flush=True,
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .serve import RuleClient, ServerError

    client = RuleClient(args.host, args.port, timeout=args.timeout)
    try:
        with client:
            if args.ping:
                generation = client.ping()
                print(f"ok (generation {generation})")
            elif args.stats:
                stats = client.stats()
                print(f"generation:         {stats.generation}")
                print(f"model:              {stats.model}")
                print(f"uptime_seconds:     {stats.uptime_seconds:.1f}")
                print(f"queries:            {stats.queries}")
                print(f"failed_queries:     {stats.failed_queries}")
                print(f"query_p50_ms:       {stats.query_p50_ms:.3f}")
                print(f"query_p99_ms:       {stats.query_p99_ms:.3f}")
                print(f"remines:            {stats.remines}")
                print(f"remine_failures:    {stats.remine_failures}")
                print(f"remine_in_progress: {stats.remine_in_progress}")
                print(f"last_remine_error:  {stats.last_remine_error}")
            elif args.remine:
                reply = client.remine(wait=args.wait)
                if reply.get("status") == "busy":
                    print("re-mine already in progress")
                elif reply.get("last_remine_error") and args.wait:
                    print(
                        f"re-mine failed (still serving generation "
                        f"{reply['generation']}): "
                        f"{reply['last_remine_error']}"
                    )
                else:
                    print(
                        f"re-mine {'done' if args.wait else 'started'} "
                        f"(generation {reply['generation']})"
                    )
            elif args.shutdown:
                generation = client.shutdown()
                print(f"daemon shut down (generation {generation})")
            else:
                reply = client.query(args.basket, top=args.top)
                print(
                    f"generation {reply.generation}: "
                    f"{len(reply.suggestions)} suggestion(s) for basket "
                    f"{reply.basket}"
                )
                for s in reply.suggestions:
                    print(
                        f"  {s.item}  confidence={s.confidence:.3f} "
                        f"support={s.support:.3f} "
                        f"via {{{', '.join(map(str, s.antecedent))}}}"
                    )
    except ServerError as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"cannot reach daemon at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.name)
    print(result.to_table())
    if args.chart:
        from .experiments.plotting import render_chart

        print()
        print(render_chart(result, logx=args.logx))
    return 0


if __name__ == "__main__":
    sys.exit(main())
