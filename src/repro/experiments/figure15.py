"""Figure 15 — runtime vs number of candidates on the Cray T3E.

Paper setting: P = 64, N = 1.3M, M swept from 0.7M to 8.0M by lowering
the minimum support; pass-3 time only.  The T3E's memory held exactly
0.7M candidates, so CD partitions its hash tree and repeats the subset
computation beyond that (no I/O charged — the T3E runs simulated I/O).
HD's grids went 8x8 → 16x4 → 32x2 → 64x1 across the sweep, collapsing
onto IDD once G = P.

Expected shape: CD grows ~O(M) and its gap to HD widens with M; IDD
starts *worse* than CD at small M (too little work per processor) and
overtakes it as M grows; HD tracks the better of the two everywhere and
equals IDD exactly at the largest M values.
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.runner import mine_parallel
from .common import ExperimentResult, check_all_equal

__all__ = ["run_figure15"]


def run_figure15(
    num_transactions: int = 3200,
    support_sweep: Sequence[float] = (0.012, 0.008, 0.006, 0.004, 0.003),
    num_processors: int = 64,
    memory_candidates: int = 2000,
    switch_threshold: int = 250,
    machine: MachineSpec = CRAY_T3E,
    num_items: int = 1000,
    seed: int = 13,
) -> ExperimentResult:
    """Reproduce the Figure 15 candidate-count sweep (pass-3 time only).

    Args:
        num_transactions: N, fixed (paper: 1.3M).
        support_sweep: descending supports; lowering support grows the
            pass-3 candidate set (the x-axis).
        num_processors: P (paper: 64).
        memory_candidates: per-processor tree capacity, sized so the
            smallest sweep point fits and larger ones force CD to
            partition (paper: 0.7M).
        switch_threshold: HD's m, sized so the HD grid walks from a
            CD-leaning configuration to G = P across the sweep.
        machine: cost model (I/O free, as in the paper's T3E runs).
        num_items: synthetic item universe.
        seed: workload seed.
    """
    spec = machine.with_memory(memory_candidates)
    db = generate(
        t15_i6(num_transactions, seed=seed, num_items=num_items)
    )
    result = ExperimentResult(
        name="figure15",
        title=(
            f"Runtime (pass 3) vs pass-3 candidates, P={num_processors}, "
            f"N={num_transactions}, {machine.name}"
        ),
        x_label="pass-3 candidates",
        y_label="pass-3 response time (simulated seconds)",
        notes=[
            "paper: M=0.7M..8.0M with N=1.3M, P=64, memory=0.7M "
            f"candidates; here capacity={memory_candidates} per processor",
            "HD grid per sweep point recorded in extras "
            "(collapses onto IDD once G = P)",
        ],
    )
    for min_support in support_sweep:
        runs = []
        pass3_candidates = None
        for algorithm in ("CD", "IDD", "HD"):
            kwargs = {"max_k": 3}
            if algorithm == "HD":
                kwargs["switch_threshold"] = switch_threshold
            run = mine_parallel(
                algorithm,
                db,
                min_support,
                num_processors,
                machine=spec,
                **kwargs,
            )
            runs.append(run)
            pass3 = next(p for p in run.passes if p.k == 3)
            if pass3_candidates is None:
                pass3_candidates = pass3.num_candidates
            result.add_point(
                algorithm, pass3_candidates, run.pass_time(3)
            )
            result.extras[(algorithm, pass3_candidates, "grid_rows")] = (
                pass3.grid[0]
            )
            result.extras[(algorithm, pass3_candidates, "scans")] = (
                pass3.tree_partitions
            )
        check_all_equal(runs, context=f"figure15 support={min_support}")
    return result
