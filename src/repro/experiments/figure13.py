"""Figure 13 — speedup of CD, IDD and HD on the Cray T3E.

Paper setting: N = 1.3M transactions, M = 0.7M candidates, P swept 4..64,
timing "size 3 frequent item sets only" (pass 3 took > 55% of the total
run time).  HD used processor grids 8x2 / 8x4 / 8x8 at 16 / 32 / 64
processors.

Expected shape: HD achieves the best speedup, and its margin grows with
P.  CD's speedup flattens because hash-tree construction and the global
reduction are serial bottlenecks (3.1% + 1.6% of runtime at P = 4
growing to ~25% + ~31% at P = 64 in the paper).  IDD's speedup flattens
because of load imbalance (6.3% overhead at 4 processors vs 49.6% at 64
in the paper) plus data-movement cost.
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.runner import mine_parallel
from .common import ExperimentResult, check_all_equal

__all__ = ["run_figure13"]


def run_figure13(
    num_transactions: int = 6400,
    min_support: float = 0.004,
    processor_counts: Sequence[int] = (4, 8, 16, 32, 64),
    switch_threshold: int = 8000,
    machine: MachineSpec = CRAY_T3E,
    num_items: int = 1000,
    seed: int = 13,
) -> ExperimentResult:
    """Reproduce the Figure 13 speedup experiment (pass-3 time only).

    Args:
        num_transactions: N, fixed across the sweep (paper: 1.3M).
        min_support: chosen so the pass-3 candidate set is large
            relative to N (paper: M = 0.7M ≈ N/2).
        processor_counts: P sweep (paper: 4..64).
        switch_threshold: HD's m.
        machine: cost model.
        num_items: synthetic item universe.
        seed: workload seed.
    """
    db = generate(
        t15_i6(num_transactions, seed=seed, num_items=num_items)
    )

    baseline = mine_parallel(
        "CD", db, min_support, 1, machine=machine, max_k=3
    )
    serial_pass3 = baseline.pass_time(3)
    pass3_candidates = next(
        p.num_candidates for p in baseline.passes if p.k == 3
    )

    result = ExperimentResult(
        name="figure13",
        title=(
            f"Speedup (pass 3 only): N={num_transactions}, "
            f"M3={pass3_candidates} candidates, {machine.name}"
        ),
        x_label="processors",
        y_label="speedup over 1 processor (pass 3)",
        notes=[
            "paper: N=1.3M, M=0.7M, size-3 pass only; here "
            f"N={num_transactions}, M3={pass3_candidates}",
            f"serial (P=1) pass-3 time: {serial_pass3:.4f} simulated s",
        ],
    )
    for num_processors in processor_counts:
        runs = []
        for algorithm in ("CD", "IDD", "HD"):
            kwargs = {"max_k": 3}
            if algorithm == "HD":
                kwargs["switch_threshold"] = switch_threshold
            run = mine_parallel(
                algorithm,
                db,
                min_support,
                num_processors,
                machine=machine,
                **kwargs,
            )
            runs.append(run)
            result.add_point(
                algorithm,
                num_processors,
                serial_pass3 / run.pass_time(3),
            )
        runs.append(baseline)
        check_all_equal(runs, context=f"figure13 P={num_processors}")
    return result
