"""Registry mapping experiment ids to runner functions.

Used by the CLI (``python -m repro experiment <id>``) and by the
benchmark harness, which iterates the full set.
"""

from __future__ import annotations

from typing import Callable, Dict

from .ablations import (
    run_ablation_bitmap,
    run_ablation_candgen,
    run_ablation_hashtree,
    run_ablation_hd_threshold,
    run_ablation_overlap,
    run_ablation_partition,
)
from .common import ExperimentResult
from .figure10 import run_figure10
from .figure11 import run_figure11
from .figure12 import run_figure12
from .figure13 import run_figure13
from .figure14 import run_figure14
from .figure15 import run_figure15
from .hpa_comm import run_hpa_comm
from .imbalance import run_imbalance
from .table2 import run_table2
from .topology import run_topology

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "figure10": run_figure10,
    "figure11": run_figure11,
    "figure12": run_figure12,
    "figure13": run_figure13,
    "figure14": run_figure14,
    "figure15": run_figure15,
    "table2": run_table2,
    "imbalance": run_imbalance,
    "hpa_comm": run_hpa_comm,
    "ablation_hashtree": run_ablation_hashtree,
    "ablation_partition": run_ablation_partition,
    "ablation_bitmap": run_ablation_bitmap,
    "ablation_hd_threshold": run_ablation_hd_threshold,
    "ablation_overlap": run_ablation_overlap,
    "ablation_candgen": run_ablation_candgen,
    "topology": run_topology,
}


def run_experiment(name: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id; ``kwargs`` override its parameters.

    Raises:
        KeyError: for an unknown experiment id.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {name!r}; expected one of: {known}"
        ) from None
    return runner(**kwargs)
