"""Ablation studies for the design choices DESIGN.md calls out.

These are not experiments from the paper; they isolate the contribution
of individual design decisions the paper asserts but does not measure
separately:

* **hash-tree geometry** — branching factor and leaf capacity trade
  traversal work against leaf-checking work (Section IV discusses tuning
  S "by adjusting the branching factor");
* **IDD partitioning strategy** — bin-packing vs the naive contiguous
  first-item ranges Section III-C warns against, with and without
  second-item refinement;
* **IDD bitmap filter** — the root-level pruning on/off, isolating the
  "intelligent" part from the communication fix;
* **HD switch threshold** — sensitivity of HD to its m parameter;
* **communication overlap** — IDD on a machine with and without
  asynchronous communication support (Section III-D: the lack of overlap
  "will be an even more serious problem in a system that cannot perform
  asynchronous communication").
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..core.apriori import Apriori
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.hybrid import HybridDistribution
from ..parallel.intelligent_dd import IntelligentDataDistribution
from .common import ExperimentResult, check_all_equal

__all__ = [
    "run_ablation_hashtree",
    "run_ablation_partition",
    "run_ablation_bitmap",
    "run_ablation_hd_threshold",
    "run_ablation_overlap",
    "run_ablation_candgen",
]


def _workload(num_transactions: int, seed: int, num_items: int = 1000):
    return generate(t15_i6(num_transactions, seed=seed, num_items=num_items))


def run_ablation_hashtree(
    num_transactions: int = 1200,
    min_support: float = 0.01,
    branchings: Sequence[int] = (4, 16, 64, 256),
    leaf_capacities: Sequence[int] = (4, 16, 64),
    seed: int = 21,
) -> ExperimentResult:
    """Serial Apriori work profile across hash-tree geometries.

    Reports, per (branching, leaf capacity) pair, the total traversal
    steps and leaf-candidate checks — the two quantities the geometry
    trades against each other.
    """
    db = _workload(num_transactions, seed)
    result = ExperimentResult(
        name="ablation_hashtree",
        title="Hash tree geometry: traversal vs checking work (serial)",
        x_label="branching",
        y_label="work units (millions)",
        notes=[
            "series are labeled <counter>@S=<leaf capacity>",
            "larger branching cuts checking work, raising tree overhead; "
            "the counts are identical for every geometry",
        ],
    )
    reference = None
    for branching in branchings:
        for capacity in leaf_capacities:
            # The geometry ablation reads the work counters, so it must
            # run on the instrumented reference kernel.
            run = Apriori(
                min_support,
                branching=branching,
                leaf_capacity=capacity,
                kernel="reference",
            ).mine(db)
            if reference is None:
                reference = run.frequent
            elif run.frequent != reference:
                raise AssertionError(
                    "hash-tree geometry changed the mining result"
                )
            steps = sum(
                p.tree_stats.hash_steps
                for p in run.passes
                if p.tree_stats is not None
            )
            checks = sum(
                p.tree_stats.candidates_checked
                for p in run.passes
                if p.tree_stats is not None
            )
            result.add_point(f"traversals@S={capacity}", branching, steps / 1e6)
            result.add_point(f"checks@S={capacity}", branching, checks / 1e6)
    return result


def run_ablation_partition(
    tx_per_processor: int = 150,
    min_support: float = 0.008,
    processor_counts: Sequence[int] = (8, 16, 32),
    machine: MachineSpec = CRAY_T3E,
    seed: int = 22,
) -> ExperimentResult:
    """IDD partitioner comparison: bin-packing vs contiguous vs refined.

    Expected: contiguous ranges load-imbalance badly (Section III-C's
    1-to-50 example); bin-packing fixes it; second-item refinement helps
    further once per-processor candidate counts get small.
    """
    result = ExperimentResult(
        name="ablation_partition",
        title="IDD candidate partitioning strategies (response time)",
        x_label="processors",
        y_label="response time (simulated seconds)",
        notes=["refined = bin-packing with second-item splitting of heavy items"],
    )
    strategies = (
        ("contiguous", {"partition_strategy": "contiguous"}),
        ("bin_pack", {}),
        ("refined", {"refine_threshold": 64}),
    )
    for num_processors in processor_counts:
        db = _workload(tx_per_processor * num_processors, seed)
        runs = []
        for label, kwargs in strategies:
            miner = IntelligentDataDistribution(
                min_support, num_processors, machine=machine, **kwargs
            )
            run = miner.mine(db)
            runs.append(run)
            result.add_point(label, num_processors, run.total_time)
            result.extras[(label, num_processors, "idle")] = (
                run.breakdown.get("idle", 0.0)
            )
        check_all_equal(runs, context=f"ablation_partition P={num_processors}")
    return result


def run_ablation_bitmap(
    tx_per_processor: int = 150,
    min_support: float = 0.008,
    processor_counts: Sequence[int] = (4, 8, 16),
    machine: MachineSpec = CRAY_T3E,
    seed: int = 23,
) -> ExperimentResult:
    """IDD with and without the root-level bitmap filter.

    Isolates the "intelligent" part of IDD: without the bitmap the
    partitioning still balances memory, but every transaction fans out
    all of its items at every processor's root, as in DD.
    """
    result = ExperimentResult(
        name="ablation_bitmap",
        title="IDD root bitmap filter on/off (response time)",
        x_label="processors",
        y_label="response time (simulated seconds)",
    )
    for num_processors in processor_counts:
        db = _workload(tx_per_processor * num_processors, seed)
        runs = []
        for label, use_bitmap in (("bitmap", True), ("no_bitmap", False)):
            run = IntelligentDataDistribution(
                min_support,
                num_processors,
                machine=machine,
                use_bitmap=use_bitmap,
            ).mine(db)
            runs.append(run)
            result.add_point(label, num_processors, run.total_time)
        check_all_equal(runs, context=f"ablation_bitmap P={num_processors}")
    return result


def run_ablation_hd_threshold(
    num_transactions: int = 2400,
    min_support: float = 0.008,
    num_processors: int = 16,
    thresholds: Sequence[int] = (1, 100, 1000, 10_000, 10**9),
    machine: MachineSpec = CRAY_T3E,
    seed: int = 24,
) -> ExperimentResult:
    """HD's sensitivity to the switch threshold m.

    m -> infinity degenerates HD to CD, m -> 1 to IDD; intermediate
    values should dominate both ends (Equation 8's open interval).
    """
    db = _workload(num_transactions, seed)
    result = ExperimentResult(
        name="ablation_hd_threshold",
        title=f"HD switch-threshold sweep (P={num_processors})",
        x_label="threshold m",
        y_label="response time (simulated seconds)",
        notes=["m=1 is IDD, m=1e9 is CD"],
    )
    runs = []
    for threshold in thresholds:
        run = HybridDistribution(
            min_support,
            num_processors,
            machine=machine,
            switch_threshold=threshold,
        ).mine(db)
        runs.append(run)
        result.add_point("HD", threshold, run.total_time)
    check_all_equal(runs, context="ablation_hd_threshold")
    return result


def run_ablation_overlap(
    tx_per_processor: int = 150,
    min_support: float = 0.008,
    processor_counts: Sequence[int] = (4, 8, 16),
    machine: MachineSpec = CRAY_T3E,
    seed: int = 25,
) -> ExperimentResult:
    """IDD on machines with and without communication/computation overlap."""
    result = ExperimentResult(
        name="ablation_overlap",
        title="IDD with vs without asynchronous-communication overlap",
        x_label="processors",
        y_label="response time (simulated seconds)",
    )
    for num_processors in processor_counts:
        db = _workload(tx_per_processor * num_processors, seed)
        runs = []
        for label, overlap in (("async", True), ("blocking", False)):
            run = IntelligentDataDistribution(
                min_support,
                num_processors,
                machine=machine.with_overlap(overlap),
            ).mine(db)
            runs.append(run)
            result.add_point(label, num_processors, run.total_time)
        check_all_equal(runs, context=f"ablation_overlap P={num_processors}")
    return result


def run_ablation_candgen(
    num_transactions: int = 2400,
    min_support: float = 0.006,
    processor_counts: Sequence[int] = (4, 16, 64),
    machine: MachineSpec = CRAY_T3E,
    seed: int = 26,
) -> ExperimentResult:
    """Serial vs parallelized apriori_gen (an extension beyond the paper).

    All four published formulations regenerate the candidate set on
    every processor; splitting the join by prefix group turns the
    O(|Ck|) per-processor cost into O(|Ck|/P) plus an exchange.  The
    gain should grow with P and with the candidate count — measured
    here on CD, where candidate-proportional costs dominate at scale.
    """
    from ..parallel.count_distribution import CountDistribution

    db = _workload(num_transactions, seed)
    result = ExperimentResult(
        name="ablation_candgen",
        title="apriori_gen: redundant (paper) vs parallelized (extension)",
        x_label="processors",
        y_label="candgen time, mean seconds/processor",
        notes=["run on CD; mining output identical in all cells"],
    )
    for num_processors in processor_counts:
        runs = []
        for label, flag in (("redundant", False), ("parallel", True)):
            run = CountDistribution(
                min_support,
                num_processors,
                machine=machine,
                parallel_candgen=flag,
            ).mine(db)
            runs.append(run)
            result.add_point(
                label, num_processors, run.breakdown.get("candgen", 0.0)
            )
            result.extras[(label, num_processors, "total")] = run.total_time
        check_all_equal(runs, context=f"ablation_candgen P={num_processors}")
    return result
