"""Shared experiment plumbing: result containers and table rendering.

Every experiment module returns an :class:`ExperimentResult` — a set of
named series over a common x-axis plus free-form notes — which renders
as the aligned text table the benchmark harness prints.  Experiments are
deterministic (seeded workloads, simulated clocks), so the tables are
bit-reproducible across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["ExperimentResult", "check_all_equal"]


@dataclass
class ExperimentResult:
    """A reproduced table/figure.

    Attributes:
        name: experiment id, e.g. ``"figure10"``.
        title: one-line description echoing the paper's caption.
        x_label: meaning of the x values.
        y_label: meaning of the series values.
        x_values: shared x-axis points, in order.
        series: series name → (x → y) mapping; missing x means the paper
            did not run that configuration either (e.g. DD beyond 32
            processors).
        notes: provenance lines (scale factors, parameter substitutions).
        extras: auxiliary measured values, keyed by (series, x, field).
    """

    name: str
    title: str
    x_label: str
    y_label: str
    x_values: List[float] = field(default_factory=list)
    series: Dict[str, Dict[float, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    extras: Dict[Tuple[str, float, str], float] = field(default_factory=dict)

    def add_point(self, series_name: str, x: float, y: float) -> None:
        """Record one measurement, registering the x value if new."""
        if x not in self.x_values:
            self.x_values.append(x)
        self.series.setdefault(series_name, {})[x] = y

    def get(self, series_name: str, x: float) -> float:
        """Look up one measurement; raises ``KeyError`` when absent."""
        return self.series[series_name][x]

    def ratio(self, numerator: str, denominator: str, x: float) -> float:
        """y ratio of two series at one x (for who-wins-by-what checks)."""
        return self.get(numerator, x) / self.get(denominator, x)

    def to_table(self, y_format: str = "{:10.4f}") -> str:
        """Render the result as an aligned text table."""
        lines = [f"{self.name}: {self.title}"]
        header = f"{self.x_label:>16s} | " + " | ".join(
            f"{name:>10s}" for name in self.series
        )
        lines.append(header)
        lines.append("-" * len(header))
        for x in self.x_values:
            cells = []
            for name in self.series:
                value = self.series[name].get(x)
                cells.append(
                    y_format.format(value) if value is not None else " " * 10
                )
            x_text = f"{x:g}"
            lines.append(f"{x_text:>16s} | " + " | ".join(cells))
        lines.append(f"(y = {self.y_label})")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def check_all_equal(results: Sequence, context: str = "") -> None:
    """Assert that several mining results found identical frequent sets.

    The experiments run the same workload through multiple formulations;
    any divergence is an implementation bug, so timings are only reported
    after this cross-check passes.

    Args:
        results: mining results (serial or parallel; anything with a
            ``frequent`` mapping).
        context: label included in the failure message.
    """
    if len(results) < 2:
        return
    reference = results[0].frequent
    for other in results[1:]:
        if other.frequent != reference:
            first_name = getattr(results[0], "algorithm", "serial")
            other_name = getattr(other, "algorithm", "serial")
            raise AssertionError(
                f"{context}: {other_name} disagrees with {first_name} "
                f"({len(other.frequent)} vs {len(reference)} frequent item-sets)"
            )
