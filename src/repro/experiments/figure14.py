"""Figure 14 — runtime vs number of transactions on the Cray T3E.

Paper setting: P = 64, M = 0.7M candidates, N swept from 1.3M to 26.1M,
pass-3 time only; HD on an 8x8 grid.

Expected shape: CD and HD scale linearly (near-parallel straight lines)
with HD below CD; IDD sits above both with a growing absolute gap, its
overhead dominated by load imbalance (the paper measures the data
movement at only 6-7% of IDD's runtime across the sweep).
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.runner import mine_parallel
from .common import ExperimentResult, check_all_equal

__all__ = ["run_figure14"]


def run_figure14(
    transaction_counts: Sequence[int] = (1600, 3200, 6400, 12800, 19200),
    min_support: float = 0.012,
    num_processors: int = 64,
    switch_threshold: int = 500,
    machine: MachineSpec = CRAY_T3E,
    num_items: int = 1000,
    seed: int = 14,
) -> ExperimentResult:
    """Reproduce the Figure 14 transaction-count sweep (pass-3 time only).

    The fractional support is held fixed, which keeps the candidate-set
    size roughly constant as N grows (the paper holds M = 0.7M).

    Args:
        transaction_counts: the N sweep (paper: 1.3M..26.1M).
        min_support: fixed fractional support.
        num_processors: P (paper: 64).
        switch_threshold: HD's m.
        machine: cost model.
        num_items: synthetic item universe.
        seed: workload seed.
    """
    result = ExperimentResult(
        name="figure14",
        title=(
            f"Runtime (pass 3) vs transactions, P={num_processors}, "
            f"{machine.name}"
        ),
        x_label="transactions",
        y_label="pass-3 response time (simulated seconds)",
        notes=[
            "paper: N=1.3M..26.1M with M=0.7M, P=64; here N="
            f"{transaction_counts[0]}..{transaction_counts[-1]} at fixed "
            f"{min_support * 100:.2g}% support",
        ],
    )
    for num_transactions in transaction_counts:
        db = generate(
            t15_i6(num_transactions, seed=seed, num_items=num_items)
        )
        runs = []
        for algorithm in ("CD", "IDD", "HD"):
            kwargs = {"max_k": 3}
            if algorithm == "HD":
                kwargs["switch_threshold"] = switch_threshold
            run = mine_parallel(
                algorithm,
                db,
                min_support,
                num_processors,
                machine=machine,
                **kwargs,
            )
            runs.append(run)
            result.add_point(
                algorithm, num_transactions, run.pass_time(3)
            )
        check_all_equal(runs, context=f"figure14 N={num_transactions}")
    return result
