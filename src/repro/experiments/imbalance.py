"""Section III-C load-balance measurement for IDD.

The paper reports that equal candidate counts translate into only
approximately equal work: "with 4 processors, we were able to obtain
the load imbalance of 1.3% in terms of the number of candidate sets,
and this translated into 5.4% load imbalance in the actual computation
time.  With 8 processors, we had 2.3% ... and this resulted in 9.4%".

This experiment runs IDD at several processor counts and reports both
imbalances: the bin-packing partitioner's candidate-count imbalance
(averaged over passes, weighted by candidates) and the measured
computation-time imbalance across processors.

Expected shape: both imbalances grow with P, and the computation-time
imbalance exceeds the candidate-count imbalance by a small factor —
candidate counts are a good but imperfect proxy for work, exactly the
paper's point.
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.intelligent_dd import IntelligentDataDistribution
from .common import ExperimentResult

__all__ = ["run_imbalance"]


def run_imbalance(
    tx_per_processor: int = 200,
    min_support: float = 0.008,
    processor_counts: Sequence[int] = (4, 8, 16, 32),
    machine: MachineSpec = CRAY_T3E,
    num_items: int = 1000,
    seed: int = 3,
) -> ExperimentResult:
    """Measure IDD's candidate-count vs computation-time imbalance."""
    result = ExperimentResult(
        name="imbalance",
        title="IDD load imbalance: candidate counts vs computation time",
        x_label="processors",
        y_label="relative imbalance (max/mean - 1)",
        notes=[
            "paper (Section III-C): 1.3% candidates -> 5.4% time at P=4; "
            "2.3% -> 9.4% at P=8",
        ],
    )
    for num_processors in processor_counts:
        db = generate(
            t15_i6(
                tx_per_processor * num_processors,
                seed=seed,
                num_items=num_items,
            )
        )
        miner = IntelligentDataDistribution(
            min_support, num_processors, machine=machine
        )
        run = miner.mine(db)

        total_candidates = 0
        weighted_imbalance = 0.0
        for pass_stats in run.passes:
            if pass_stats.k < 2:
                continue
            total_candidates += pass_stats.num_candidates
            weighted_imbalance += (
                pass_stats.candidate_imbalance * pass_stats.num_candidates
            )
        candidate_imbalance = (
            weighted_imbalance / total_candidates if total_candidates else 0.0
        )
        result.add_point("candidates", num_processors, candidate_imbalance)
        result.add_point(
            "compute_time", num_processors, run.compute_imbalance("subset")
        )
    return result
