"""Table II — HD's per-pass processor grid configuration.

Paper setting: 64 processors, m = 50K.  The table lists, for passes
2..7, the grid configuration chosen by HD (G x P/G) and the candidate
count of the pass: 8x8 at 351K candidates, 64x1 (= IDD) at the 4.3M
peak, then 4x16, 2x32, 2x32, and 1x64 (= CD) once the candidate set
falls below m.  All later passes stayed at 1x64.

The reproduction runs HD on a scaled workload and reports the same
(pass, configuration, |Ck|) schedule; the property checked is that the
configuration tracks ceil(M/m) rounded up to a divisor of P, rising to
G = P at the candidate peak and collapsing to G = 1 for the small late
passes.
"""

from __future__ import annotations

from typing import List, Tuple

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.hybrid import HybridDistribution
from .common import ExperimentResult

__all__ = ["run_table2"]


def run_table2(
    num_transactions: int = 3200,
    min_support: float = 0.005,
    num_processors: int = 64,
    switch_threshold: int = 2000,
    machine: MachineSpec = CRAY_T3E,
    num_items: int = 1000,
    seed: int = 2,
) -> ExperimentResult:
    """Reproduce Table II's dynamic grid schedule.

    Args:
        num_transactions: database size (paper: 50K per processor).
        min_support: support low enough to produce a multi-pass run with
            a mid-run candidate peak (paper: 0.1%).
        num_processors: P (paper: 64).
        switch_threshold: HD's m (paper: 50K).
        machine: cost model.
        num_items: synthetic item universe.
        seed: workload seed.
    """
    db = generate(
        t15_i6(num_transactions, seed=seed, num_items=num_items)
    )
    miner = HybridDistribution(
        min_support,
        num_processors,
        machine=machine,
        switch_threshold=switch_threshold,
    )
    run = miner.mine(db)

    result = ExperimentResult(
        name="table2",
        title=(
            f"HD grid configuration per pass (P={num_processors}, "
            f"m={switch_threshold})"
        ),
        x_label="pass",
        y_label="value",
        notes=[
            "paper: P=64, m=50K over 13 passes (8x8, 64x1, 4x16, 2x32, "
            "2x32, 1x64, then 1x64 onwards)",
            "GxC encodes the grid: G=1 is CD, G=P is IDD",
        ],
    )
    schedule: List[Tuple[int, int, int, int]] = []
    for pass_stats in run.passes:
        if pass_stats.k < 2:
            continue
        rows, cols = pass_stats.grid
        schedule.append(
            (pass_stats.k, rows, cols, pass_stats.num_candidates)
        )
        result.add_point("G", pass_stats.k, rows)
        result.add_point("P/G", pass_stats.k, cols)
        result.add_point("candidates", pass_stats.k, pass_stats.num_candidates)
    for k, rows, cols, candidates in schedule:
        result.notes.append(
            f"pass {k}: configuration {rows}x{cols}, {candidates} candidates"
        )
    return result
