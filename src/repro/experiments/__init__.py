"""Experiment harness: one module per table/figure of the paper."""

from .ablations import (
    run_ablation_bitmap,
    run_ablation_candgen,
    run_ablation_hashtree,
    run_ablation_hd_threshold,
    run_ablation_overlap,
    run_ablation_partition,
)
from .common import ExperimentResult, check_all_equal
from .figure10 import run_figure10
from .figure11 import aggregate_leaf_visits, run_figure11
from .figure12 import run_figure12
from .figure13 import run_figure13
from .figure14 import run_figure14
from .figure15 import run_figure15
from .hpa_comm import run_hpa_comm
from .plotting import render_chart
from .imbalance import run_imbalance
from .registry import EXPERIMENTS, run_experiment
from .table2 import run_table2
from .topology import run_topology

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "aggregate_leaf_visits",
    "check_all_equal",
    "run_ablation_bitmap",
    "run_ablation_candgen",
    "run_ablation_hashtree",
    "run_ablation_hd_threshold",
    "run_ablation_overlap",
    "run_ablation_partition",
    "run_experiment",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_figure15",
    "run_hpa_comm",
    "run_imbalance",
    "render_chart",
    "run_table2",
    "run_topology",
]
