"""ASCII rendering of experiment results as line charts.

The paper's evaluation is a set of x-y figures; tables alone make shape
comparisons (crossovers, divergence, flatness) hard to eyeball.  This
module renders an :class:`~repro.experiments.common.ExperimentResult`
as a terminal line chart — one glyph per series, points plotted on a
character grid with axis scales — so `repro-mine experiment figure10
--chart` visually resembles Figure 10.

Rendering is pure string manipulation (no plotting dependencies) and is
deterministic, so charts are testable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .common import ExperimentResult

__all__ = ["render_chart", "SERIES_GLYPHS"]

SERIES_GLYPHS = "*o+x#@%&"


def _scale(
    value: float, low: float, high: float, cells: int
) -> int:
    """Map ``value`` in [low, high] onto a cell index in [0, cells-1]."""
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(cells - 1, max(0, round(fraction * (cells - 1))))


def render_chart(
    result: ExperimentResult,
    width: int = 64,
    height: int = 20,
    logx: bool = False,
    series_names: Optional[Sequence[str]] = None,
) -> str:
    """Render the result's series as an ASCII line chart.

    Args:
        result: the experiment result to draw.
        width: plot-area width in characters.
        height: plot-area height in rows.
        logx: plot x on a log scale (useful for processor-count sweeps).
        series_names: subset/order of series to draw; default all.

    Returns:
        A multi-line string: title, chart with y-axis labels, x-axis
        ticks, and a legend.

    Raises:
        ValueError: if there is nothing to plot or dimensions are tiny.
    """
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4")
    names = list(series_names) if series_names else list(result.series)
    if not names or not result.x_values:
        raise ValueError("result has no plottable series")
    for name in names:
        if name not in result.series:
            raise ValueError(f"unknown series {name!r}")

    points: Dict[str, List[Tuple[float, float]]] = {}
    all_x: List[float] = []
    all_y: List[float] = []
    for name in names:
        series = sorted(result.series[name].items())
        points[name] = series
        all_x.extend(x for x, _ in series)
        all_y.extend(y for _, y in series)

    def x_transform(x: float) -> float:
        return math.log(x) if logx and x > 0 else x

    x_low = min(x_transform(x) for x in all_x)
    x_high = max(x_transform(x) for x in all_x)
    y_low = min(0.0, min(all_y))
    y_high = max(all_y)
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, name in enumerate(names):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        cells: List[Tuple[int, int]] = []
        for x, y in points[name]:
            column = _scale(x_transform(x), x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            cells.append((row, column))
        # Connect consecutive points with interpolated cells so trends
        # read as lines, then overdraw the data points themselves.
        for (r0, c0), (r1, c1) in zip(cells, cells[1:]):
            steps = max(abs(r1 - r0), abs(c1 - c0))
            for step in range(1, steps):
                r = round(r0 + (r1 - r0) * step / steps)
                c = round(c0 + (c1 - c0) * step / steps)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for r, c in cells:
            grid[r][c] = glyph

    lines = [f"{result.name}: {result.title}"]
    label_width = 10
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:9.3g} "
        elif row_index == height - 1:
            label = f"{y_low:9.3g} "
        else:
            label = " " * label_width
        lines.append(label + "|" + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    x_left = f"{min(all_x):g}"
    x_right = f"{max(all_x):g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * (label_width + 1) + x_left + " " * max(1, padding) + x_right
    )
    axis_note = f" ({result.x_label}, log scale)" if logx else f" ({result.x_label})"
    lines.append(" " * (label_width + 1) + axis_note)
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(names)
    )
    lines.append(f"legend: {legend}   (y = {result.y_label})")
    return "\n".join(lines)
