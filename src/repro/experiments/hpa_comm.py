"""Section III-E — HPA vs IDD communication volume per pass.

The paper's qualitative claim: "the number of potential candidates of
size k generated for a transaction containing I items is O((I choose
k)).  Hence, for values of k greater than 2, HPA can have much larger
communication volume than that for DD and IDD.  For small values of k
(e.g., k = 2), it is possible for HPA to incur smaller communication
overhead than IDD."

This experiment measures both volumes on a real workload:

* **IDD** ships every transaction block around the ring once per pass —
  a pass moves (P-1)/P of the database's bytes per processor, the same
  for every k;
* **HPA** routes every generated potential candidate (k items each) to
  its hash owner — growing with (I choose k).

Expected shape: the HPA curve starts near (possibly below) IDD's flat
line at k = 2 and grows explosively with k.
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.hpa import HashPartitionedApriori
from .common import ExperimentResult

__all__ = ["run_hpa_comm"]


def run_hpa_comm(
    num_transactions: int = 2000,
    num_processors: int = 16,
    pass_numbers: Sequence[int] = (2, 3, 4, 5, 6),
    machine: MachineSpec = CRAY_T3E,
    num_items: int = 1000,
    seed: int = 33,
) -> ExperimentResult:
    """Compare per-pass communication volume of HPA and IDD.

    Volumes are computed from the actual workload (transaction lengths
    drive both), independent of the support threshold: IDD ships
    transactions, HPA ships potential candidates.
    """
    db = generate(t15_i6(num_transactions, seed=seed, num_items=num_items))
    hpa = HashPartitionedApriori(0.5, num_processors, machine=machine)

    db_bytes = db.size_in_bytes(machine.bytes_per_item)
    remote_fraction = (num_processors - 1) / num_processors
    idd_bytes = db_bytes * remote_fraction

    result = ExperimentResult(
        name="hpa_comm",
        title=(
            "Per-pass communication volume: HPA's routed potential "
            f"candidates vs IDD's transaction shipping (P={num_processors})"
        ),
        x_label="pass k",
        y_label="bytes moved per pass (MB, per processor source)",
        notes=[
            "IDD's volume is k-independent (the whole block circulates "
            "every pass); HPA's grows with (I choose k)",
            "Section III-E: HPA can beat IDD at k=2 but explodes beyond",
        ],
    )
    for k in pass_numbers:
        hpa_bytes = hpa.communication_bytes_per_pass(db, k)
        result.add_point("IDD", k, idd_bytes / 1e6)
        result.add_point("HPA", k, hpa_bytes / 1e6)
    return result
