"""Figure 11 — distinct leaf visits per transaction: DD vs IDD.

Paper setting: 50K transactions per processor, 0.2% minimum support,
P = 1..32.  The y-axis is the average number of *distinct* hash-tree
leaf nodes visited per transaction at one processor — the measured
V(C, L/P) for DD and V(C/P, L/P) for IDD.

Expected shape: at P = 1 the curves coincide (both are the serial
V(C, L)); IDD's visits fall roughly as 1/P because the bitmap filter
divides the probe count C across processors; DD's fall far more slowly
because only the tree shrinks while every transaction still fans out
all C potential candidates (the redundant-work argument of Sections
III-B/IV).
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..core.hashtree import HashTreeStats
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.base import MiningResult
from ..parallel.runner import mine_parallel
from .common import ExperimentResult, check_all_equal

__all__ = ["run_figure11", "aggregate_leaf_visits"]


def aggregate_leaf_visits(result: MiningResult) -> float:
    """Average distinct leaf visits per (transaction, tree) over all passes.

    Pass 1 has no hash tree and contributes nothing.  Aggregating over
    passes k >= 2 weights each pass by the transactions it processed,
    matching how a whole-run measurement on the real machine would read.
    """
    merged = HashTreeStats()
    for pass_stats in result.passes:
        if pass_stats.k >= 2:
            merged = merged.merged_with(pass_stats.subset_stats)
    return merged.avg_leaf_visits_per_transaction


def run_figure11(
    tx_per_processor: int = 150,
    min_support: float = 0.01,
    processor_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    machine: MachineSpec = CRAY_T3E,
    num_items: int = 1000,
    seed: int = 11,
) -> ExperimentResult:
    """Reproduce the Figure 11 leaf-visit comparison.

    Args mirror :func:`repro.experiments.figure10.run_figure10`; the
    paper uses 0.2% support here (slightly higher than Figure 10), and
    we scale analogously.
    """
    result = ExperimentResult(
        name="figure11",
        title=(
            "Avg distinct leaf nodes visited per transaction, DD vs IDD "
            f"({tx_per_processor} tx/processor)"
        ),
        x_label="processors",
        y_label="avg distinct leaf visits per transaction",
        notes=[
            "paper: 50K tx/processor, 0.2% support; scaled down "
            f"to {tx_per_processor} tx/processor, "
            f"{min_support * 100:.2g}% support",
            "at P=1 the curves nearly coincide (both degenerate to "
            "serial counting; IDD's bitmap additionally prunes root "
            "expansions caused by hash collisions, so it sits slightly "
            "lower even serially)",
        ],
    )
    for num_processors in processor_counts:
        db = generate(
            t15_i6(
                tx_per_processor * num_processors,
                seed=seed,
                num_items=num_items,
            )
        )
        runs = []
        for algorithm in ("DD", "IDD"):
            run = mine_parallel(
                algorithm, db, min_support, num_processors, machine=machine
            )
            runs.append(run)
            result.add_point(
                algorithm, num_processors, aggregate_leaf_visits(run)
            )
        check_all_equal(runs, context=f"figure11 P={num_processors}")
    return result
