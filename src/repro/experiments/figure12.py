"""Figure 12 — response time vs candidate count on the IBM SP2.

Paper setting: 16-processor SP2, 100K transactions, minimum support
swept from 0.1% down to 0.025%, database resident on disk.  CD
partitions its hash tree whenever it exceeds per-processor memory and
re-reads the database once per partition; IDD and HD spread the
candidates over the aggregate memory and keep a single scan per pass.

Expected shape: CD competitive at the smallest candidate counts, then
falling behind IDD and HD as the candidate count grows (the paper
reports penalties of ~8% at 1M candidates up to ~25% at 11M), due to
repeated hash-tree construction, extra I/O, and repeated reduction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..cluster.machine import IBM_SP2, MachineSpec
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.runner import mine_parallel
from .common import ExperimentResult, check_all_equal

__all__ = ["run_figure12"]


def run_figure12(
    num_transactions: int = 6000,
    num_processors: int = 16,
    support_sweep: Sequence[float] = (0.02, 0.012, 0.008, 0.006, 0.004),
    memory_candidates: int = 40_000,
    switch_threshold: int = 4000,
    machine: MachineSpec = IBM_SP2,
    num_items: int = 1000,
    seed: int = 12,
    max_k: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce the Figure 12 candidate-count sweep.

    Args:
        num_transactions: database size (paper: 100K).
        num_processors: P (paper: 16).
        support_sweep: descending support levels (paper: 0.1%..0.025%).
        memory_candidates: per-processor hash-tree capacity; supports
            early in the sweep fit, later ones force CD into multiple
            scans.
        switch_threshold: HD's m.
        machine: cost model (SP2 by default; I/O is charged).
        num_items: synthetic item universe.
        seed: workload seed.
        max_k: optional pass cap for smoke runs.
    """
    spec = machine.with_memory(memory_candidates)
    db = generate(
        t15_i6(num_transactions, seed=seed, num_items=num_items)
    )
    result = ExperimentResult(
        name="figure12",
        title=(
            f"Response time vs total candidates on {machine.name} "
            f"({num_processors} processors, {num_transactions} tx, "
            "disk-resident data)"
        ),
        x_label="total candidates",
        y_label="response time (simulated seconds)",
        notes=[
            "paper: 100K tx, support 0.1%..0.025%, 16-processor SP2; "
            f"here {num_transactions} tx, support "
            f"{support_sweep[0] * 100:.2g}%..{support_sweep[-1] * 100:.2g}%",
            f"CD hash-tree capacity: {memory_candidates} candidates per "
            "processor; I/O charged per database scan",
        ],
    )
    for min_support in support_sweep:
        runs = []
        total_candidates = None
        for algorithm in ("CD", "IDD", "HD"):
            kwargs = {"max_k": max_k, "charge_io": True}
            if algorithm == "HD":
                kwargs["switch_threshold"] = switch_threshold
            run = mine_parallel(
                algorithm,
                db,
                min_support,
                num_processors,
                machine=spec,
                **kwargs,
            )
            runs.append(run)
            if total_candidates is None:
                total_candidates = sum(
                    p.num_candidates for p in run.passes if p.k >= 2
                )
            result.add_point(algorithm, total_candidates, run.total_time)
            scans = max(p.tree_partitions for p in run.passes)
            result.extras[(algorithm, total_candidates, "max_scans")] = scans
        check_all_equal(runs, context=f"figure12 support={min_support}")
    return result
