"""Figure 10 — scaleup on the Cray T3E.

Paper setting: 50K transactions *per processor*, 0.1% minimum support,
P = 4..128; curves for CD, DD, DD+comm, IDD and HD (m = 5K).  DD was too
slow to run beyond 32 processors in the paper's figure, and we cap it
the same way.

Scaled-down setting (defaults): 150 transactions per processor, T15.I6
data over 1000 items, 0.8% support.  Support is raised so that the
candidate-set geometry (a dominant pass-2/3 with tens of thousands of
candidates) stays proportionate to the smaller database; EXPERIMENTS.md
records the paper-vs-measured shapes.

Expected shape: DD worst and diverging with P; DD+comm between DD and
IDD (the communication mechanism accounts for part of IDD's win, the
intelligent partitioning for the rest); IDD rising slowly and crossing
CD at high P (load imbalance); CD nearly flat; HD flat and beating CD,
with the gap growing with P.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.runner import mine_parallel
from .common import ExperimentResult, check_all_equal

__all__ = ["run_figure10"]

_ALGORITHMS = ("CD", "DD", "DD+comm", "IDD", "HD")


def run_figure10(
    tx_per_processor: int = 150,
    min_support: float = 0.008,
    processor_counts: Sequence[int] = (4, 8, 16, 32, 64, 128),
    dd_max_processors: int = 32,
    switch_threshold: int = 20_000,
    machine: MachineSpec = CRAY_T3E,
    num_items: int = 1000,
    seed: int = 7,
    max_k: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce the Figure 10 scaleup experiment.

    Args:
        tx_per_processor: transactions per processor (paper: 50K).
        min_support: fractional support (paper: 0.1%).
        processor_counts: the P sweep (paper: 4..128).
        dd_max_processors: largest P at which the DD variants run
            (paper's figure stops DD around 32).
        switch_threshold: HD's m (paper: 5K at full scale).
        machine: cost model.
        num_items: item universe of the synthetic data.
        seed: workload seed.
        max_k: optional pass cap to shorten smoke runs.
    """
    result = ExperimentResult(
        name="figure10",
        title=(
            "Scaleup: response time vs processors "
            f"({tx_per_processor} tx/processor, "
            f"{min_support * 100:.2g}% support, {machine.name})"
        ),
        x_label="processors",
        y_label="response time (simulated seconds)",
        notes=[
            f"paper: 50K tx/processor, 0.1% support; here "
            f"{tx_per_processor} tx/processor, {min_support * 100:.2g}% "
            "support (proportional scale-down)",
            f"DD variants capped at {dd_max_processors} processors, "
            "as in the paper's figure",
        ],
    )
    for num_processors in processor_counts:
        db = generate(
            t15_i6(
                tx_per_processor * num_processors,
                seed=seed,
                num_items=num_items,
            )
        )
        runs = []
        for algorithm in _ALGORITHMS:
            dd_like = algorithm.startswith("DD")
            if dd_like and num_processors > dd_max_processors:
                continue
            kwargs = {"max_k": max_k}
            if algorithm == "HD":
                kwargs["switch_threshold"] = switch_threshold
            run = mine_parallel(
                algorithm,
                db,
                min_support,
                num_processors,
                machine=machine,
                **kwargs,
            )
            runs.append(run)
            result.add_point(algorithm, num_processors, run.total_time)
            result.extras[(algorithm, num_processors, "idle")] = (
                run.breakdown.get("idle", 0.0)
            )
        check_all_equal(runs, context=f"figure10 P={num_processors}")
    return result
