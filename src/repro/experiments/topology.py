"""Topology ablation — DD's sensitivity to the interconnect.

Section III-B argues DD's page-scattering all-to-all degrades on sparse
networks.  This experiment runs the *same* DD workload with the
machine's contention coefficient set from each topology's bisection
bound and reports the response times: on a fully-connected or hypercube
network DD's communication is tolerable; on a ring it is disastrous —
while IDD (shown as the flat baseline) is topology-insensitive because
its ring pipeline only ever talks to neighbors.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..cluster.machine import CRAY_T3E, MachineSpec
from ..cluster.topology import ALL_TOPOLOGIES, Topology
from ..data.corpus import t15_i6
from ..data.quest import generate
from ..parallel.data_distribution import DataDistribution
from ..parallel.intelligent_dd import IntelligentDataDistribution
from .common import ExperimentResult, check_all_equal

__all__ = ["run_topology"]


def run_topology(
    num_transactions: int = 3200,
    min_support: float = 0.01,
    num_processors: int = 32,
    topologies: Sequence[Topology] = ALL_TOPOLOGIES,
    machine: MachineSpec = CRAY_T3E,
    seed: int = 41,
) -> ExperimentResult:
    """Run DD under each topology's contention bound; IDD as baseline.

    The contention coefficient is set so the naive all-to-all multiplier
    ``1 + alpha * (P-1)`` equals the topology's bisection factor.
    """
    db = generate(t15_i6(num_transactions, seed=seed, num_items=1000))
    result = ExperimentResult(
        name="topology",
        title=(
            f"DD response time vs interconnect topology (P={num_processors})"
        ),
        x_label="topology rank",
        y_label="response time (simulated seconds)",
        notes=[
            "x enumerates topologies sparsest-first: "
            + ", ".join(t.name for t in topologies),
            "IDD is topology-insensitive (neighbor-only ring pipeline)",
        ],
    )
    runs = []
    for rank, topology in enumerate(topologies):
        factor = topology.contention_factor(num_processors)
        alpha = max(0.0, (factor - 1.0) / max(1, num_processors - 1))
        spec = replace(machine, contention_per_processor=alpha)
        dd = DataDistribution(min_support, num_processors, machine=spec)
        run = dd.mine(db)
        runs.append(run)
        result.add_point("DD", rank, run.total_time)
        result.extras[("DD", rank, "contention_factor")] = factor

    idd = IntelligentDataDistribution(
        min_support, num_processors, machine=machine
    ).mine(db)
    runs.append(idd)
    for rank in range(len(topologies)):
        result.add_point("IDD", rank, idd.total_time)
    check_all_equal(runs, context="topology")
    return result
