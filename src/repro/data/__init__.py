"""Synthetic data generation and dataset I/O."""

from .corpus import (
    SUPERMARKET_ITEMS,
    SUPERMARKET_NAMES,
    supermarket,
    t5_i2,
    t10_i4,
    t15_i6,
    t20_i6,
)
from .io import (
    read_dat,
    read_partitioned,
    stream_dat,
    write_dat,
    write_partitioned,
)
from .quest import QuestConfig, QuestGenerator, generate
from .serialize import load_frequent, result_to_dict, save_result

__all__ = [
    "QuestConfig",
    "QuestGenerator",
    "SUPERMARKET_ITEMS",
    "SUPERMARKET_NAMES",
    "generate",
    "load_frequent",
    "read_dat",
    "read_partitioned",
    "result_to_dict",
    "save_result",
    "stream_dat",
    "supermarket",
    "t10_i4",
    "t15_i6",
    "t20_i6",
    "t5_i2",
    "write_dat",
    "write_partitioned",
]
