"""IBM Quest-style synthetic transaction generator.

The paper generates its workloads "using a tool provided by [17] and
described in [2]" — the IBM Quest synthetic data generator of Agrawal &
Srikant (VLDB'94, Section 4.4), with "average transaction length of 15
and average size of frequent item sets of 6" (the classic ``T15.I6``
configuration).  The original tool is no longer distributed, so this
module reimplements its generative process:

1. Draw ``num_patterns`` *maximal potentially frequent item-sets*.  Each
   pattern's size is Poisson with mean ``avg_pattern_length``; a fraction
   of its items (exponentially distributed with mean ``correlation``) is
   reused from the previous pattern so that frequent sets overlap, and
   the rest are picked uniformly.  Patterns receive exponential weights,
   normalized to a probability distribution.
2. Each pattern gets a *corruption level* drawn from a clipped normal
   (mean ``corruption_mean``, sd ``corruption_sd``): when a pattern is
   planted into a transaction, items are individually dropped with that
   probability, so planted patterns appear partially more often than
   fully.
3. Each transaction's length is Poisson with mean
   ``avg_transaction_length``; weighted patterns are planted (corrupted)
   until the length is reached.  A pattern that overflows the remaining
   room is planted anyway in half of the cases and discarded otherwise,
   as in the original generator.

Everything is driven by :class:`random.Random` under a caller-provided
seed, so datasets are exactly reproducible — which the experiment
harness relies on.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, replace
from itertools import accumulate
from pathlib import Path
from typing import Callable, Iterator, List, Optional

from ..core.items import Itemset
from ..core.transaction import TransactionDB

__all__ = ["QuestConfig", "QuestGenerator", "generate", "generate_to_file"]


@dataclass(frozen=True)
class QuestConfig:
    """Knobs of the synthetic generator (names follow the Quest paper).

    Attributes:
        num_transactions: |D|, number of transactions to emit.
        avg_transaction_length: |T|, mean items per transaction (paper: 15).
        avg_pattern_length: |I|, mean size of the potentially frequent
            item-sets (paper: 6).
        num_items: N, size of the item universe.
        num_patterns: |L|, size of the potentially-frequent pool.
        correlation: mean fraction of a pattern inherited from its
            predecessor.
        corruption_mean: mean per-pattern corruption level.
        corruption_sd: spread of the corruption level.
        seed: PRNG seed; equal configs generate equal databases.
    """

    num_transactions: int
    avg_transaction_length: float = 15.0
    avg_pattern_length: float = 6.0
    num_items: int = 1000
    num_patterns: int = 200
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_sd: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_transactions < 0:
            raise ValueError("num_transactions must be non-negative")
        if self.num_items < 1:
            raise ValueError("num_items must be positive")
        if self.num_patterns < 1:
            raise ValueError("num_patterns must be positive")
        if self.avg_transaction_length <= 0:
            raise ValueError("avg_transaction_length must be positive")
        if self.avg_pattern_length <= 0:
            raise ValueError("avg_pattern_length must be positive")

    def with_transactions(self, num_transactions: int) -> "QuestConfig":
        """Copy of this config with a different database size."""
        return replace(self, num_transactions=num_transactions)

    def with_seed(self, seed: int) -> "QuestConfig":
        """Copy of this config with a different seed."""
        return replace(self, seed=seed)


class QuestGenerator:
    """Stateful generator for one :class:`QuestConfig`."""

    def __init__(self, config: QuestConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        self._patterns: List[Itemset] = []
        self._corruption: List[float] = []
        self._cumulative_weights: List[float] = []
        self._build_patterns()

    def _poisson(self, mean: float) -> int:
        """Knuth's Poisson sampler (means here are small: 6-15)."""
        threshold = math.exp(-mean)
        count = 0
        product = self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count

    def _build_patterns(self) -> None:
        rng = self._rng
        config = self.config
        universe = range(config.num_items)
        previous: List[int] = []
        weights: List[float] = []
        for _ in range(config.num_patterns):
            size = max(1, min(config.num_items, self._poisson(config.avg_pattern_length)))
            chosen: set[int] = set()
            if previous:
                # Exponentially distributed fraction of items carried over
                # from the previous pattern, clipped to [0, 1].
                fraction = min(1.0, rng.expovariate(1.0 / config.correlation))
                carry = min(len(previous), int(round(fraction * size)))
                chosen.update(rng.sample(previous, carry))
            while len(chosen) < size:
                chosen.add(rng.randrange(config.num_items))
            pattern = tuple(sorted(chosen))
            self._patterns.append(pattern)
            previous = list(pattern)
            weights.append(rng.expovariate(1.0))
            corruption = rng.normalvariate(
                config.corruption_mean, config.corruption_sd
            )
            self._corruption.append(min(1.0, max(0.0, corruption)))
        total = sum(weights)
        self._cumulative_weights = list(accumulate(w / total for w in weights))
        # Guard against float drift so bisect never falls off the end.
        self._cumulative_weights[-1] = 1.0
        del universe  # documented intent only; range needs no storage

    def _pick_pattern(self) -> int:
        """Sample a pattern index proportionally to its weight."""
        return bisect.bisect_left(self._cumulative_weights, self._rng.random())

    def iter_transactions(self) -> Iterator[Itemset]:
        """Yield the configuration's transactions one at a time.

        This is the streaming spine of the generator: one canonical
        (sorted, deduplicated) tuple per transaction, in the exact
        order — and from the exact PRNG draw sequence — that
        :meth:`generate` materializes.  Nothing beyond the current
        basket is held in memory, so arbitrarily large databases can be
        spilled straight to disk (:func:`generate_to_file`) without
        ever existing in RAM.

        The iterator consumes the generator's single PRNG stream, so it
        is one-shot per :class:`QuestGenerator` instance: build a fresh
        generator (same config, same seed) to replay the identical
        database.
        """
        rng = self._rng
        config = self.config
        for _ in range(config.num_transactions):
            target = max(1, self._poisson(config.avg_transaction_length))
            basket: set[int] = set()
            attempts = 0
            # Plant corrupted patterns until the target length is reached.
            # The attempt cap prevents pathological loops when corruption
            # keeps erasing whole patterns.
            while len(basket) < target and attempts < 8 * target:
                attempts += 1
                index = self._pick_pattern()
                corruption = self._corruption[index]
                planted = [
                    item
                    for item in self._patterns[index]
                    if rng.random() >= corruption
                ]
                if not planted:
                    continue
                if len(basket) + len(planted) > target and basket:
                    # Overflowing pattern: plant anyway half of the time,
                    # otherwise discard (the original generator keeps it
                    # for the next transaction; discarding preserves the
                    # same marginal statistics without cross-transaction
                    # state).
                    if rng.random() < 0.5:
                        basket.update(planted)
                    break
                basket.update(planted)
            if not basket:
                basket.add(rng.randrange(config.num_items))
            yield tuple(sorted(basket))

    def generate(self) -> TransactionDB:
        """Emit the full transaction database for this configuration."""
        return TransactionDB.from_canonical(list(self.iter_transactions()))

    def generate_to_file(
        self,
        path,
        progress: Optional[Callable[[int, int], None]] = None,
        progress_every: int = 100_000,
    ) -> Path:
        """Stream the database straight into a packed store file.

        Transactions flow from :meth:`iter_transactions` into a
        :class:`~repro.core.mmapdb.PackedFileWriter`, so peak RAM is the
        writer's flush buffer plus the offsets table — constant in the
        items dimension regardless of ``num_transactions``.  The
        finished file is byte-identical to
        ``write_packed_file(generator.generate(), path)`` for the same
        config and seed, and is attachable with
        :meth:`~repro.core.mmapdb.MmapPackedDB.attach`.

        Args:
            path: destination store-file path.
            progress: optional callback invoked as ``progress(written,
                total)`` every ``progress_every`` transactions and once
                at the end (the CLI's generation progress line).
            progress_every: callback cadence in transactions.

        Returns:
            The written path.
        """
        from ..core.mmapdb import PackedFileWriter

        total = self.config.num_transactions
        every = max(1, progress_every)
        with PackedFileWriter(path) as writer:
            for written, transaction in enumerate(self.iter_transactions(), 1):
                writer.append(transaction)
                if progress is not None and written % every == 0:
                    progress(written, total)
        if progress is not None:
            progress(total, total)
        return writer.path


def generate(config: QuestConfig) -> TransactionDB:
    """One-shot convenience: build a generator and produce its database."""
    return QuestGenerator(config).generate()


def generate_to_file(
    config: QuestConfig,
    path,
    progress: Optional[Callable[[int, int], None]] = None,
    progress_every: int = 100_000,
) -> Path:
    """One-shot convenience: stream ``config``'s database to a store file."""
    return QuestGenerator(config).generate_to_file(
        path, progress=progress, progress_every=progress_every
    )
