"""Named datasets used throughout the reproduction.

* :func:`supermarket` — the five-transaction worked example of the
  paper's Table I (Bread, Beer, Coke, Diaper, Milk), used by the
  quickstart and by tests that pin the paper's exact support/confidence
  numbers.
* :func:`t15_i6` — the paper's synthetic workload family: "average
  transaction length of 15 and average size of frequent item sets of 6".
* :func:`t5_i2` — a miniature family for fast unit tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.transaction import TransactionDB
from .quest import QuestConfig

__all__ = [
    "SUPERMARKET_ITEMS",
    "SUPERMARKET_NAMES",
    "supermarket",
    "t10_i4",
    "t15_i6",
    "t20_i6",
    "t5_i2",
]

# Item ids assigned alphabetically, matching Table I's item universe
# {Bread, Beer, Coke, Diaper, Milk}.
SUPERMARKET_ITEMS: Dict[str, int] = {
    "Beer": 0,
    "Bread": 1,
    "Coke": 2,
    "Diaper": 3,
    "Milk": 4,
}

SUPERMARKET_NAMES: Dict[int, str] = {v: k for k, v in SUPERMARKET_ITEMS.items()}

_SUPERMARKET_ROWS: Tuple[Tuple[str, ...], ...] = (
    ("Bread", "Coke", "Milk"),
    ("Beer", "Bread"),
    ("Beer", "Coke", "Diaper", "Milk"),
    ("Beer", "Bread", "Diaper", "Milk"),
    ("Coke", "Diaper", "Milk"),
)


def supermarket() -> TransactionDB:
    """The five supermarket transactions of Table I."""
    return TransactionDB(
        sorted(SUPERMARKET_ITEMS[name] for name in row)
        for row in _SUPERMARKET_ROWS
    )


def t15_i6(num_transactions: int, seed: int = 0, num_items: int = 1000) -> QuestConfig:
    """The paper's T15.I6 synthetic workload configuration.

    Args:
        num_transactions: database size (the paper uses 50K transactions
            per processor on the T3E; experiments here scale this down —
            see EXPERIMENTS.md).
        seed: PRNG seed.
        num_items: item universe size; smaller universes raise candidate
            density, which the support sweeps in Figures 12 and 15 exploit.
    """
    return QuestConfig(
        num_transactions=num_transactions,
        avg_transaction_length=15.0,
        avg_pattern_length=6.0,
        num_items=num_items,
        num_patterns=max(20, num_items // 5),
        seed=seed,
    )


def t10_i4(num_transactions: int, seed: int = 0, num_items: int = 1000) -> QuestConfig:
    """The classic T10.I4 workload family (Agrawal & Srikant's T10.I4.D100K)."""
    return QuestConfig(
        num_transactions=num_transactions,
        avg_transaction_length=10.0,
        avg_pattern_length=4.0,
        num_items=num_items,
        num_patterns=max(20, num_items // 5),
        seed=seed,
    )


def t20_i6(num_transactions: int, seed: int = 0, num_items: int = 1000) -> QuestConfig:
    """The heavier T20.I6 workload family (longer baskets, denser passes)."""
    return QuestConfig(
        num_transactions=num_transactions,
        avg_transaction_length=20.0,
        avg_pattern_length=6.0,
        num_items=num_items,
        num_patterns=max(20, num_items // 5),
        seed=seed,
    )


def t5_i2(num_transactions: int, seed: int = 0, num_items: int = 50) -> QuestConfig:
    """A small, fast workload for unit tests (T5.I2 style)."""
    return QuestConfig(
        num_transactions=num_transactions,
        avg_transaction_length=5.0,
        avg_pattern_length=2.0,
        num_items=num_items,
        num_patterns=20,
        seed=seed,
    )
