"""JSON serialization of mining results.

Long experiment campaigns want to persist what a run found and measured;
this module round-trips serial (:class:`~repro.core.apriori.
AprioriResult`) and parallel (:class:`~repro.parallel.base.MiningResult`)
results through a stable JSON representation.  Item-sets are encoded as
lists (JSON has no tuples) and re-canonicalized on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from ..core.apriori import AprioriResult
from ..parallel.base import MiningResult

__all__ = [
    "frequent_to_payload",
    "frequent_from_payload",
    "result_to_dict",
    "save_result",
    "load_frequent",
]

PathLike = Union[str, Path]
Result = Union[AprioriResult, MiningResult]


def frequent_to_payload(
    frequent: Dict[tuple, int]
) -> Tuple[List[List[int]], List[int]]:
    """Encode a frequent table as parallel ``(itemsets, counts)`` lists.

    Item-sets are canonically sorted so the encoding is deterministic —
    the same table always serializes to the same bytes (the checkpoint
    journal's checksums rely on this).
    """
    itemsets = sorted(frequent)
    return [list(s) for s in itemsets], [frequent[s] for s in itemsets]


def frequent_from_payload(
    itemsets: List[List[int]], counts: List[int]
) -> Dict[tuple, int]:
    """Decode parallel ``(itemsets, counts)`` lists back to a table.

    Raises ``ValueError`` when the lists disagree in length.
    """
    if len(itemsets) != len(counts):
        raise ValueError("frequent-table payload lengths differ")
    return {
        tuple(sorted(items)): count
        for items, count in zip(itemsets, counts)
    }


def result_to_dict(result: Result) -> Dict[str, Any]:
    """Convert a mining result to a JSON-compatible dictionary.

    The frequent table is stored as parallel lists (item-sets and
    counts) for compactness; metadata covers everything needed to
    reproduce or compare the run.
    """
    itemsets, counts = frequent_to_payload(result.frequent)
    payload: Dict[str, Any] = {
        "format": "repro.mining-result.v1",
        "min_support": result.min_support,
        "min_count": result.min_count,
        "num_transactions": result.num_transactions,
        "itemsets": itemsets,
        "counts": counts,
    }
    if isinstance(result, MiningResult):
        payload["algorithm"] = result.algorithm
        payload["num_processors"] = result.num_processors
        payload["total_time"] = result.total_time
        payload["breakdown"] = dict(result.breakdown)
        payload["passes"] = [
            {
                "k": p.k,
                "num_candidates": p.num_candidates,
                "num_frequent": p.num_frequent,
                "grid": list(p.grid),
                "tree_partitions": p.tree_partitions,
            }
            for p in result.passes
        ]
    else:
        payload["algorithm"] = "serial"
        payload["passes"] = [
            {
                "k": p.k,
                "num_candidates": p.num_candidates,
                "num_frequent": p.num_frequent,
            }
            for p in result.passes
        ]
    return payload


def save_result(result: Result, path: PathLike) -> None:
    """Write a mining result to a JSON file."""
    payload = result_to_dict(result)
    with Path(path).open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def load_frequent(path: PathLike) -> Dict[tuple, int]:
    """Load the frequent-set table back from a saved result.

    Returns the ``itemset → count`` mapping with canonical tuple keys;
    raises ``ValueError`` for unrecognized files.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro.mining-result.v1":
        raise ValueError(
            f"{path!s} is not a repro mining-result file"
        )
    try:
        return frequent_from_payload(payload["itemsets"], payload["counts"])
    except ValueError:
        raise ValueError(f"{path!s} is corrupt: table lengths differ")
