"""Transaction database file I/O.

Databases are stored in the conventional ``.dat`` market-basket format:
one transaction per line, items as space-separated integers.  This is the
format of the FIMI repository datasets, so real-world benchmark files
(retail, kosarak, ...) drop straight in.

Partitioned writes mirror how a parallel run would lay data out across
processor-local disks (one file per processor), which the examples use to
demonstrate the single-data-source scenario Section VI mentions for IDD.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, List, Union

from ..core.transaction import TransactionDB

__all__ = [
    "write_dat",
    "read_dat",
    "stream_dat",
    "write_partitioned",
    "read_partitioned",
]

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str) -> IO[str]:
    """Open plain or gzip-compressed text based on the file suffix."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return path.open(mode, encoding="ascii")


def write_dat(db: TransactionDB, path: PathLike) -> None:
    """Write a database in ``.dat`` format (one transaction per line).

    A ``.gz`` suffix writes gzip-compressed output (large synthetic
    databases compress ~4x).
    """
    target = Path(path)
    with _open_text(target, "w") as handle:
        for transaction in db:
            handle.write(" ".join(map(str, transaction)))
            handle.write("\n")


def read_dat(path: PathLike) -> TransactionDB:
    """Read a ``.dat`` (or gzip-compressed ``.dat.gz``) file.

    Blank lines are skipped.  Items on each line may appear unsorted or
    duplicated (some published datasets are messy); they are
    canonicalized on load.
    """
    transactions = []
    with _open_text(Path(path), "r") as handle:
        for line in handle:
            fields = line.split()
            if not fields:
                continue
            transactions.append(sorted({int(f) for f in fields}))
    return TransactionDB(transactions)


def stream_dat(path: PathLike):
    """Yield canonical transactions from a ``.dat``/``.dat.gz`` file.

    A generator for disk-resident mining with
    :class:`repro.core.streaming.StreamingApriori`: wrap it in a factory
    (``lambda: stream_dat(path)``) so each pass re-opens the file, and
    only one transaction is in memory at a time.
    """
    with _open_text(Path(path), "r") as handle:
        for line in handle:
            fields = line.split()
            if not fields:
                continue
            yield tuple(sorted({int(f) for f in fields}))


def write_partitioned(
    db: TransactionDB, directory: PathLike, num_parts: int, stem: str = "part"
) -> List[Path]:
    """Write ``db`` as ``num_parts`` block-partitioned ``.dat`` files.

    Returns the file paths in processor order
    (``<stem>-0000.dat``, ``<stem>-0001.dat``, ...).
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for index, part in enumerate(db.partition(num_parts)):
        path = target / f"{stem}-{index:04d}.dat"
        write_dat(part, path)
        paths.append(path)
    return paths


def read_partitioned(directory: PathLike, stem: str = "part") -> TransactionDB:
    """Reassemble a partitioned database written by :func:`write_partitioned`."""
    paths = sorted(Path(directory).glob(f"{stem}-*.dat"))
    if not paths:
        raise FileNotFoundError(
            f"no '{stem}-*.dat' files found in {directory!s}"
        )
    transactions = []
    for path in paths:
        transactions.extend(read_dat(path).transactions)
    return TransactionDB.from_canonical(list(transactions))
