"""Disk-backed packed transaction store — the out-of-core data plane.

:class:`~repro.core.packed.PackedDB` keeps the whole database in one
in-RAM buffer (owned arrays or a ``/dev/shm`` segment), which caps the
minable database at available memory.  This module moves the same flat
int32 layout onto disk:

* :func:`write_packed_file` / :class:`PackedFileWriter` write the store
  to a regular file — byte-identical to the shared-memory layout
  (``<n: int64 LE> <total: int64 LE> <offsets: int32[n + 1]>
  <items: int32[total]>``).  The streaming writer holds only the
  offsets table in RAM (4 bytes per transaction) and spills items to a
  sidecar file in chunks, so databases far larger than memory can be
  written.
* :class:`MmapPackedDB` attaches such a file read-only via :mod:`mmap`.
  It *is* a ``PackedDB`` (the counting kernels and the
  ``offsets``/``items`` invariants are inherited unchanged); the OS
  pages blocks in and out on demand, so a pool of workers mapping the
  same file shares one page-cache copy — the native pool's
  ``data_plane="mmap"`` — and a constrained
  :meth:`~repro.core.packed.PackedDB.block_bounds` budget streams the
  store through a counting pass block by block (SON/partition style)
  instead of touching it all at once.

Mapping semantics worth knowing: the int32 memoryviews pin the mapping,
so :meth:`MmapPackedDB.close` releases the views *before* closing the
``mmap`` (closing first would raise ``BufferError``); and on POSIX the
file may be unlinked while mapped — attached readers keep working, new
attaches fail with a descriptive :class:`FileNotFoundError`.
"""

from __future__ import annotations

import mmap
import os
from array import array
from pathlib import Path
from typing import Iterable, Sequence, Union

from .packed import (
    _I32,
    _STORE_HEADER,
    INT32_MAX,
    PackedDB,
    _as_i32_bytes,
    _extend_checked,
)

__all__ = [
    "MmapPackedDB",
    "PackedFileWriter",
    "attach_packed_file",
    "packed_file_nbytes",
    "write_packed_file",
]

# Copy unit while splicing the items sidecar after the header, and the
# buffered-item threshold before the writer spills to that sidecar.
_COPY_BLOCK = 1 << 20
_FLUSH_ITEMS = 1 << 16


def packed_file_nbytes(num_transactions: int, total_items: int) -> int:
    """File size of a packed store with the given dimensions."""
    return _STORE_HEADER.size + 4 * (num_transactions + 1) + 4 * total_items


class PackedFileWriter:
    """Stream transactions into a packed store file with bounded memory.

    Only the growing offsets table lives in RAM (4 bytes per
    transaction); items are appended to a ``<path>.items.tmp`` sidecar
    in flushed chunks.  :meth:`finalize` writes header + offsets to
    ``path``, splices the sidecar after them in ``_COPY_BLOCK`` chunks,
    fsyncs, and removes the sidecar — so the finished file either has
    the complete store or does not exist.
    """

    def __init__(self, path, flush_items: int = _FLUSH_ITEMS):
        self.path = Path(path)
        self._sidecar = self.path.with_name(self.path.name + ".items.tmp")
        self._offsets = array(_I32, [0])
        self._buffer = array(_I32)
        self._total = 0
        self._flush_items = max(1, flush_items)
        self._handle = open(self._sidecar, "wb")
        self._finalized = False
        self._aborted = False

    @property
    def _done(self) -> bool:
        return self._finalized or self._aborted

    def _state_error(self, verb: str) -> ValueError:
        state = "finalized" if self._finalized else "aborted"
        return ValueError(
            f"cannot {verb} a PackedFileWriter for {self.path} that was "
            f"already {state}"
        )

    def append(self, transaction: Sequence[int]) -> None:
        """Append one transaction (validates the int32 item range).

        Out-of-range items raise exactly the error
        :meth:`~repro.core.packed.PackedDB.pack` raises for the same
        input, so streamed and in-memory packing fail identically.
        """
        if self._done:
            raise self._state_error("append to")
        _extend_checked(self._buffer, transaction)
        self._total += len(transaction)
        if self._total > INT32_MAX:
            raise ValueError(
                f"total item count {self._total} overflows int32 offsets"
            )
        self._offsets.append(self._total)
        if len(self._buffer) >= self._flush_items:
            self._handle.write(self._buffer.tobytes())
            del self._buffer[:]

    def extend(self, transactions: Iterable[Sequence[int]]) -> None:
        for transaction in transactions:
            self.append(transaction)

    def finalize(self) -> Path:
        """Assemble the store file at ``path`` and return its path."""
        if self._done:
            raise self._state_error("finalize")
        self._finalized = True
        self._handle.write(self._buffer.tobytes())
        del self._buffer[:]
        self._handle.close()
        try:
            with open(self.path, "wb") as out:
                out.write(
                    _STORE_HEADER.pack(len(self._offsets) - 1, self._total)
                )
                out.write(self._offsets.tobytes())
                with open(self._sidecar, "rb") as items:
                    while True:
                        chunk = items.read(_COPY_BLOCK)
                        if not chunk:
                            break
                        out.write(chunk)
                out.flush()
                os.fsync(out.fileno())
        except BaseException:
            # A half-spliced store must not survive looking finished:
            # the contract is "complete file or no file".
            self._finalized = False
            self._aborted = True
            self.path.unlink(missing_ok=True)
            raise
        finally:
            self._sidecar.unlink(missing_ok=True)
        return self.path

    def abort(self) -> None:
        """Drop buffered state and any partial files; idempotent.

        The sidecar is always removed.  The store file itself is only
        removed when :meth:`finalize` never completed — aborting after
        a successful finalize is a no-op on the finished store, so a
        belt-and-braces ``abort()`` in caller cleanup can never destroy
        data that was already durably written.
        """
        if not self._handle.closed:
            self._handle.close()
        self._sidecar.unlink(missing_ok=True)
        if not self._finalized:
            self._aborted = True
            self.path.unlink(missing_ok=True)

    def __enter__(self) -> "PackedFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._done:
                self.finalize()
        else:
            self.abort()


def write_packed_file(
    source: Union[PackedDB, Iterable[Sequence[int]]], path
) -> Path:
    """Write a packed store file at ``path`` and return its path.

    ``source`` is either an already-packed :class:`PackedDB` (written in
    three bulk writes) or any iterable of transaction sequences — e.g. a
    ``TransactionDB`` — which is streamed through
    :class:`PackedFileWriter` without materializing the packed buffers.
    """
    path = Path(path)
    if isinstance(source, PackedDB):
        with open(path, "wb") as out:
            out.write(_STORE_HEADER.pack(len(source), source.total_items))
            out.write(_as_i32_bytes(source.offsets))
            out.write(_as_i32_bytes(source.items))
            out.flush()
            os.fsync(out.fileno())
        return path
    with PackedFileWriter(path) as writer:
        writer.extend(source)
    return writer.path


class MmapPackedDB(PackedDB):
    """A :class:`PackedDB` whose buffers are a read-only file mapping.

    Attach with :meth:`attach`; every query, kernel, and codec that
    works on a ``PackedDB`` works here unchanged — the ``offsets`` and
    ``items`` buffers are int32 memoryviews over the mapping, and the
    OS pages the file in on demand.  Close (or use as a context
    manager) when done: the views are released before the mapping, and
    after :meth:`close` the store reads as empty.
    """

    __slots__ = ("path", "_mmap", "_file", "_closed")

    @classmethod
    def attach(cls, path) -> "MmapPackedDB":
        """Map the store file at ``path`` read-only and wrap it."""
        path = Path(path)
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            raise FileNotFoundError(
                f"packed store file {path} does not exist — it was never "
                "written, or its owning coordinator already unlinked it "
                "at pool shutdown"
            ) from None
        try:
            size = os.fstat(handle.fileno()).st_size
            if size < _STORE_HEADER.size:
                raise ValueError(
                    f"{path} is not a packed store file ({size} bytes is "
                    f"smaller than the {_STORE_HEADER.size}-byte header)"
                )
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except Exception:
            handle.close()
            raise
        try:
            n, total = _STORE_HEADER.unpack_from(mapping, 0)
            expected = packed_file_nbytes(n, total) if n >= 0 else -1
            if n < 0 or total < 0 or size < expected:
                raise ValueError(
                    f"{path} is truncated or corrupt: header promises "
                    f"{n} transactions / {total} items ({expected} bytes), "
                    f"the file has {size}"
                )
            view = memoryview(mapping)
            lo = _STORE_HEADER.size
            hi = lo + 4 * (n + 1)
            offsets = view[lo:hi].cast(_I32)
            items = view[hi:hi + 4 * total].cast(_I32)
            view.release()
        except Exception:
            mapping.close()
            handle.close()
            raise
        db = cls.from_buffers(offsets, items)
        db.path = path
        db._mmap = mapping
        db._file = handle
        db._closed = False
        return db

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the views and the mapping; idempotent.

        If a counting-kernel cache still pins one of the views, the
        ``mmap`` close is deferred to that view's death (the fd is
        closed regardless), mirroring the shared-segment teardown
        guards in the native pool.
        """
        if self._closed:
            return
        self._closed = True
        offsets, items = self.offsets, self.items
        self.offsets = array(_I32, [0])
        self.items = array(_I32)
        for view in (offsets, items):
            if isinstance(view, memoryview):
                view.release()
        try:
            self._mmap.close()
        except BufferError:
            pass
        self._file.close()

    def __enter__(self) -> "MmapPackedDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "attached"
        return (
            f"MmapPackedDB(n={len(self)}, total_items={self.total_items}, "
            f"path={str(self.path)!r}, {state})"
        )


def attach_packed_file(path) -> MmapPackedDB:
    """Convenience alias for :meth:`MmapPackedDB.attach`."""
    return MmapPackedDB.attach(path)
